//! Last-level-cache models.
//!
//! The paper's testbed has a 12 MB shared LLC; the effect of that cache is
//! folded into the measured baselines. The simulator needs an explicit
//! model so that "measured" curves include cache behaviour the analytical
//! estimate does not know about — keeping the estimate-accuracy evaluation
//! honest.
//!
//! Two concrete models are provided behind the [`Cache`] trait:
//!
//! * [`ObjectLru`] — object-granular LRU with a byte budget. One hash-map
//!   probe per access; the default for experiment sweeps.
//! * [`SetAssociative`] — classic line-granular set-associative LRU.
//!   Accurate but O(lines touched) per access; used for validation and the
//!   `ablation_cache` bench.
//! * [`NoCache`] — pass-through (every byte misses).

use crate::dense::DenseU64Map;
use crate::num;
use serde::{Deserialize, Serialize};

/// Outcome of pushing one object access through a cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheOutcome {
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes that must be served by the backing tier.
    pub miss_bytes: u64,
}

impl CacheOutcome {
    /// Total bytes of the access.
    pub fn total(&self) -> u64 {
        self.hit_bytes + self.miss_bytes
    }
}

/// A cache model: given an object access, decide how many bytes hit.
pub trait Cache: Send {
    /// Record an access of `bytes` bytes to object `key` and report the
    /// hit/miss split. Writes allocate like reads (write-allocate).
    fn access(&mut self, key: u64, bytes: u64) -> CacheOutcome;

    /// Remove an object's footprint (called on free/migration so stale
    /// entries cannot produce phantom hits).
    fn invalidate(&mut self, key: u64);

    /// Drop all cached state.
    fn clear(&mut self);

    /// Bytes currently cached (for diagnostics; line-granular models
    /// report resident line bytes).
    fn resident_bytes(&self) -> u64;
}

/// Which cache implementation to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheKind {
    /// No cache at all.
    None,
    /// Object-granular LRU (fast; default).
    ObjectLru,
    /// Line-granular set-associative LRU (accurate; slow).
    SetAssociative,
}

/// Configuration of the simulated LLC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Which model to use.
    pub kind: CacheKind,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache line size in bytes (used by the set-associative model and for
    /// rounding in the object model).
    pub line_bytes: u64,
    /// Associativity (set-associative model only).
    pub ways: usize,
    /// Latency of a cache hit in nanoseconds.
    pub hit_latency_ns: f64,
    /// Cache fill/read bandwidth in bytes per nanosecond.
    pub bandwidth_bytes_per_ns: f64,
}

impl CacheConfig {
    /// The paper testbed's 12 MB shared LLC (typical Xeon LLC timing).
    pub fn paper_llc() -> CacheConfig {
        CacheConfig {
            kind: CacheKind::ObjectLru,
            capacity_bytes: 12 << 20,
            line_bytes: 64,
            ways: 16,
            hit_latency_ns: 18.0,
            bandwidth_bytes_per_ns: 64.0,
        }
    }

    /// Same geometry, no cache (for the cache ablation).
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            kind: CacheKind::None,
            ..CacheConfig::paper_llc()
        }
    }

    /// Same geometry, line-granular model.
    pub fn line_granular() -> CacheConfig {
        CacheConfig {
            kind: CacheKind::SetAssociative,
            ..CacheConfig::paper_llc()
        }
    }

    /// Build the configured cache model.
    pub fn build(&self) -> Box<dyn Cache> {
        match self.kind {
            CacheKind::None => Box::new(NoCache),
            CacheKind::ObjectLru => Box::new(ObjectLru::new(self.capacity_bytes)),
            CacheKind::SetAssociative => Box::new(SetAssociative::new(
                self.capacity_bytes,
                self.line_bytes,
                self.ways,
            )),
        }
    }

    /// Nanoseconds to serve `bytes` out of the cache.
    pub fn hit_ns(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.hit_latency_ns + bytes as f64 / self.bandwidth_bytes_per_ns
    }
}

/// Pass-through cache: everything misses.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCache;

impl Cache for NoCache {
    fn access(&mut self, _key: u64, bytes: u64) -> CacheOutcome {
        CacheOutcome {
            hit_bytes: 0,
            miss_bytes: bytes,
        }
    }
    fn invalidate(&mut self, _key: u64) {}
    fn clear(&mut self) {}
    fn resident_bytes(&self) -> u64 {
        0
    }
}

/// Object-granular LRU cache with a byte budget.
///
/// An access to an object either hits fully (object resident) or misses
/// fully (object not resident, gets installed, LRU victims evicted until it
/// fits). Objects larger than the whole cache bypass it. The LRU list is an
/// index-linked doubly linked list over a slab, so each access is O(1) plus
/// amortised evictions.
pub struct ObjectLru {
    capacity: u64,
    used: u64,
    map: DenseU64Map<usize>,
    slab: Vec<Node>,
    free: Vec<usize>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    bytes: u64,
    prev: Option<usize>,
    next: Option<usize>,
}

impl ObjectLru {
    /// Create a cache with the given byte budget.
    pub fn new(capacity: u64) -> ObjectLru {
        ObjectLru {
            capacity,
            used: 0,
            map: DenseU64Map::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            Some(p) => self.slab[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slab[n].prev = prev,
            None => self.tail = prev,
        }
        self.slab[idx].prev = None;
        self.slab[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = None;
        self.slab[idx].next = self.head;
        if let Some(h) = self.head {
            self.slab[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn evict_lru(&mut self) {
        if let Some(t) = self.tail {
            let key = self.slab[t].key;
            let bytes = self.slab[t].bytes;
            self.detach(t);
            self.map.remove(key);
            self.free.push(t);
            self.used -= bytes;
        }
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Is an object resident?
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Mark an object most-recently-used without changing its footprint.
    /// Returns false when the object is not resident.
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.detach(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// Install (or refresh) an object and report which objects were
    /// evicted to make room — the API DRAM-cache simulations need, where
    /// the caller must charge write-back costs for dirty victims.
    /// Oversized objects (bigger than the whole budget) are not admitted
    /// and evict nothing.
    pub fn insert_reporting(&mut self, key: u64, bytes: u64) -> Vec<u64> {
        if bytes == 0 || bytes > self.capacity {
            return Vec::new();
        }
        if let Some(&idx) = self.map.get(key) {
            // Refresh: adjust footprint in place, then ensure capacity.
            let cached = self.slab[idx].bytes;
            self.detach(idx);
            self.push_front(idx);
            self.used = self.used - cached + bytes;
            self.slab[idx].bytes = bytes;
        } else {
            let node = Node {
                key,
                bytes,
                prev: None,
                next: None,
            };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = node;
                    i
                }
                None => {
                    self.slab.push(node);
                    self.slab.len() - 1
                }
            };
            self.push_front(idx);
            self.map.insert(key, idx);
            self.used += bytes;
        }
        let mut evicted = Vec::new();
        while self.used > self.capacity {
            // Over budget implies a resident tail; bail defensively if
            // the invariant is ever violated rather than spinning.
            let Some(tail) = self.tail else { break };
            // Never evict the object just installed (it is at the head;
            // capacity guards ensure this only triggers for others).
            let victim_key = self.slab[tail].key;
            if victim_key == key {
                break;
            }
            evicted.push(victim_key);
            self.evict_lru();
        }
        evicted
    }
}

impl Cache for ObjectLru {
    fn access(&mut self, key: u64, bytes: u64) -> CacheOutcome {
        if bytes == 0 {
            return CacheOutcome::default();
        }
        if let Some(&idx) = self.map.get(key) {
            // Size may have changed (value overwritten with a new size):
            // treat a size change as a miss of the delta, conservatively a
            // full miss if it grew beyond the cached footprint.
            let cached = self.slab[idx].bytes;
            self.detach(idx);
            self.push_front(idx);
            if bytes <= cached {
                return CacheOutcome {
                    hit_bytes: bytes,
                    miss_bytes: 0,
                };
            }
            let grow = bytes - cached;
            if self.used + grow <= self.capacity {
                self.used += grow;
                self.slab[idx].bytes = bytes;
                return CacheOutcome {
                    hit_bytes: cached,
                    miss_bytes: grow,
                };
            }
            // Cannot grow in place; fall through to full reinstall below.
            self.detach(idx);
            self.map.remove(key);
            self.free.push(idx);
            self.used -= cached;
        }
        if bytes > self.capacity {
            // Streaming object larger than the LLC: bypass.
            return CacheOutcome {
                hit_bytes: 0,
                miss_bytes: bytes,
            };
        }
        while self.used + bytes > self.capacity {
            self.evict_lru();
        }
        let node = Node {
            key,
            bytes,
            prev: None,
            next: None,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        self.used += bytes;
        CacheOutcome {
            hit_bytes: 0,
            miss_bytes: bytes,
        }
    }

    fn invalidate(&mut self, key: u64) {
        if let Some(idx) = self.map.remove(key) {
            self.used -= self.slab[idx].bytes;
            self.detach(idx);
            self.free.push(idx);
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
        self.used = 0;
    }

    fn resident_bytes(&self) -> u64 {
        self.used
    }
}

/// Line-granular set-associative LRU cache.
///
/// Object keys are mapped to disjoint simulated address ranges (key << 40 |
/// offset), lines are `line_bytes` wide, and each set keeps `ways` tags
/// with an LRU stamp. This mirrors a physical LLC closely enough to
/// validate the object-granular approximation.
pub struct SetAssociative {
    line_bytes: u64,
    ways: usize,
    sets: usize,
    /// `sets * ways` entries: (tag, stamp); tag == u64::MAX means empty.
    tags: Vec<(u64, u64)>,
    stamp: u64,
    resident_lines: u64,
}

impl SetAssociative {
    /// Build a cache of `capacity_bytes` with the given geometry. The set
    /// count is rounded down to a power of two.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> SetAssociative {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1);
        let lines = (capacity_bytes / line_bytes).max(1);
        let sets = (num::usize_from_u64(lines) / ways)
            .max(1)
            .next_power_of_two()
            >> 1;
        let sets = sets.max(1);
        SetAssociative {
            line_bytes,
            ways,
            sets,
            tags: vec![(u64::MAX, 0); sets * ways],
            stamp: 0,
            resident_lines: 0,
        }
    }

    fn set_index(&self, line_addr: u64) -> usize {
        // Multiplicative hash spreads object-id high bits into sets.
        let h = line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        num::usize_from_u64(h >> 32) & (self.sets - 1)
    }

    fn touch_line(&mut self, line_addr: u64) -> bool {
        self.stamp += 1;
        let set = self.set_index(line_addr);
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        // Hit?
        for slot in slots.iter_mut() {
            if slot.0 == line_addr {
                slot.1 = self.stamp;
                return true;
            }
        }
        // Miss: fill the LRU (or empty) way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, slot) in slots.iter().enumerate() {
            if slot.0 == u64::MAX {
                victim = i;
                break;
            }
            if slot.1 < oldest {
                oldest = slot.1;
                victim = i;
            }
        }
        if slots[victim].0 == u64::MAX {
            self.resident_lines += 1;
        }
        slots[victim] = (line_addr, self.stamp);
        false
    }
}

impl Cache for SetAssociative {
    fn access(&mut self, key: u64, bytes: u64) -> CacheOutcome {
        if bytes == 0 {
            return CacheOutcome::default();
        }
        let base = key << 24; // disjoint 16 MiB address window per object
        let lines = bytes.div_ceil(self.line_bytes);
        let mut hit_lines = 0;
        for l in 0..lines {
            if self.touch_line((base + l * self.line_bytes) / self.line_bytes) {
                hit_lines += 1;
            }
        }
        let hit_bytes = (hit_lines * self.line_bytes).min(bytes);
        CacheOutcome {
            hit_bytes,
            miss_bytes: bytes - hit_bytes,
        }
    }

    fn invalidate(&mut self, key: u64) {
        let prefix = (key << 24) / self.line_bytes;
        // Object lines all share the high bits of the line address.
        let window = (1u64 << 24) / self.line_bytes;
        for slot in &mut self.tags {
            if slot.0 != u64::MAX && slot.0 >= prefix && slot.0 < prefix + window {
                *slot = (u64::MAX, 0);
                self.resident_lines -= 1;
            }
        }
    }

    fn clear(&mut self) {
        for slot in &mut self.tags {
            *slot = (u64::MAX, 0);
        }
        self.resident_lines = 0;
        self.stamp = 0;
    }

    fn resident_bytes(&self) -> u64 {
        self.resident_lines * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_lru_hits_after_install() {
        let mut c = ObjectLru::new(1 << 20);
        let first = c.access(1, 1000);
        assert_eq!(
            first,
            CacheOutcome {
                hit_bytes: 0,
                miss_bytes: 1000
            }
        );
        let second = c.access(1, 1000);
        assert_eq!(
            second,
            CacheOutcome {
                hit_bytes: 1000,
                miss_bytes: 0
            }
        );
        assert_eq!(c.resident_bytes(), 1000);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn object_lru_evicts_least_recent() {
        let mut c = ObjectLru::new(2048);
        c.access(1, 1024);
        c.access(2, 1024); // full
        c.access(1, 1024); // touch 1 so 2 is LRU
        c.access(3, 1024); // evicts 2
        assert_eq!(c.access(2, 1024).hit_bytes, 0, "2 was evicted");
        assert_eq!(
            c.access(1, 1024).hit_bytes,
            0,
            "1 evicted by reinstall of 2"
        );
    }

    #[test]
    fn object_lru_bypass_for_oversized() {
        let mut c = ObjectLru::new(512);
        c.access(1, 256);
        let out = c.access(2, 4096);
        assert_eq!(out.miss_bytes, 4096);
        // Bypass must not have evicted the small resident object.
        assert_eq!(c.access(1, 256).hit_bytes, 256);
    }

    #[test]
    fn object_lru_grows_resized_objects() {
        let mut c = ObjectLru::new(4096);
        c.access(1, 1000);
        let out = c.access(1, 1500);
        assert_eq!(out.hit_bytes, 1000);
        assert_eq!(out.miss_bytes, 500);
        assert_eq!(c.resident_bytes(), 1500);
        // Shrunk access hits fully.
        assert_eq!(c.access(1, 200).hit_bytes, 200);
    }

    #[test]
    fn object_lru_invalidate_removes_footprint() {
        let mut c = ObjectLru::new(4096);
        c.access(7, 2048);
        c.invalidate(7);
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.access(7, 2048).hit_bytes, 0);
        // Invalidating a missing key is a no-op.
        c.invalidate(99);
    }

    #[test]
    fn object_lru_clear() {
        let mut c = ObjectLru::new(4096);
        c.access(1, 100);
        c.access(2, 100);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn object_lru_zero_byte_access_is_noop() {
        let mut c = ObjectLru::new(4096);
        assert_eq!(c.access(1, 0), CacheOutcome::default());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn insert_reporting_returns_victims_lru_first() {
        let mut c = ObjectLru::new(3000);
        assert!(c.insert_reporting(1, 1000).is_empty());
        assert!(c.insert_reporting(2, 1000).is_empty());
        assert!(c.insert_reporting(3, 1000).is_empty());
        c.touch(1); // 2 becomes LRU
        let evicted = c.insert_reporting(4, 2000);
        assert_eq!(evicted, vec![2, 3], "LRU order: 2 then 3");
        assert!(c.contains(1) && c.contains(4));
        assert_eq!(c.resident_bytes(), 3000);
    }

    #[test]
    fn insert_reporting_refresh_adjusts_footprint() {
        let mut c = ObjectLru::new(2000);
        c.insert_reporting(1, 500);
        c.insert_reporting(2, 500);
        // Growing 1 to 1600 must evict 2.
        let evicted = c.insert_reporting(1, 1600);
        assert_eq!(evicted, vec![2]);
        assert_eq!(c.resident_bytes(), 1600);
    }

    #[test]
    fn insert_reporting_rejects_oversized() {
        let mut c = ObjectLru::new(100);
        c.insert_reporting(1, 50);
        assert!(
            c.insert_reporting(2, 500).is_empty(),
            "no admission, no eviction"
        );
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn touch_reports_residency() {
        let mut c = ObjectLru::new(100);
        assert!(!c.touch(5));
        c.insert_reporting(5, 50);
        assert!(c.touch(5));
    }

    #[test]
    fn no_cache_misses_everything() {
        let mut c = NoCache;
        assert_eq!(c.access(1, 123).miss_bytes, 123);
        assert_eq!(c.access(1, 123).miss_bytes, 123);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn set_associative_basic_hit() {
        let mut c = SetAssociative::new(1 << 20, 64, 16);
        let first = c.access(1, 4096);
        assert_eq!(first.miss_bytes, 4096);
        let second = c.access(1, 4096);
        assert_eq!(second.hit_bytes, 4096);
    }

    #[test]
    fn set_associative_evicts_under_pressure() {
        let mut c = SetAssociative::new(8 << 10, 64, 4); // tiny: 128 lines
                                                         // Stream 64 distinct 1 KiB objects (16 lines each = 1024 lines).
        for k in 0..64u64 {
            c.access(k, 1024);
        }
        // Object 0 should long be gone.
        let again = c.access(0, 1024);
        assert!(again.hit_bytes < 1024, "expected at least partial eviction");
    }

    #[test]
    fn set_associative_invalidate() {
        let mut c = SetAssociative::new(1 << 20, 64, 16);
        c.access(3, 2048);
        assert!(c.resident_bytes() >= 2048);
        c.invalidate(3);
        assert_eq!(c.access(3, 2048).hit_bytes, 0);
    }

    #[test]
    fn models_agree_on_small_hot_set() {
        // A working set far below capacity must converge to all-hit under
        // both models.
        let mut a = ObjectLru::new(1 << 20);
        let mut b = SetAssociative::new(1 << 20, 64, 16);
        for round in 0..3 {
            for k in 0..8u64 {
                let oa = a.access(k, 4096);
                let ob = b.access(k, 4096);
                if round > 0 {
                    assert_eq!(oa.hit_bytes, 4096, "object model round {round} key {k}");
                    assert_eq!(ob.hit_bytes, 4096, "line model round {round} key {k}");
                }
            }
        }
    }

    #[test]
    fn config_builders() {
        assert_eq!(CacheConfig::paper_llc().capacity_bytes, 12 << 20);
        assert_eq!(CacheConfig::disabled().kind, CacheKind::None);
        let mut c = CacheConfig::line_granular().build();
        assert_eq!(c.access(1, 64).miss_bytes, 64);
    }

    #[test]
    fn hit_time_scales_with_bytes() {
        let cfg = CacheConfig::paper_llc();
        assert_eq!(cfg.hit_ns(0), 0.0);
        assert!(cfg.hit_ns(4096) > cfg.hit_ns(64));
    }
}
