//! Deterministic hash collections.
//!
//! `std`'s `HashMap`/`HashSet` seed their hasher from process-local
//! randomness (`RandomState`), so iteration order differs run to run —
//! one stray iteration on a result path silently breaks the workspace's
//! byte-identical `--jobs N` guarantee. The D002 lint therefore bans
//! the default-hasher types outside tests; code that wants O(1) lookups
//! uses these aliases instead, built on a fixed-seed FNV-1a hasher:
//! same process, same build, same iteration order, every run.
//!
//! When iteration order must additionally be *meaningful* (sorted keys
//! in an export, ordered sweeps), prefer `BTreeMap`/`BTreeSet` — these
//! aliases only promise stability, not ordering.
//!
//! Construction: the aliases carry a non-default hasher, so use
//! `DetHashMap::default()` / [`det_map`] / [`det_set`] /
//! `with_capacity_and_hasher` rather than `new()`.

use std::hash::{BuildHasher, Hasher};

/// Fixed-seed FNV-1a, 64-bit. Not DoS-resistant — keys here are
/// simulator-internal ids, not attacker-controlled input.
#[derive(Debug, Clone, Copy)]
pub struct DetHasher {
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for DetHasher {
    fn default() -> DetHasher {
        DetHasher { hash: FNV_OFFSET }
    }
}

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }
}

/// [`BuildHasher`] yielding [`DetHasher`]s — the deterministic stand-in
/// for `RandomState`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildDetHasher;

impl BuildHasher for BuildDetHasher {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher::default()
    }
}

/// `HashMap` with a fixed-seed hasher: deterministic iteration order.
// mnemo-lint: allow(D002, "this is the deterministic alias D002 points callers at")
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, BuildDetHasher>;

/// `HashSet` with a fixed-seed hasher: deterministic iteration order.
// mnemo-lint: allow(D002, "this is the deterministic alias D002 points callers at")
pub type DetHashSet<T> = std::collections::HashSet<T, BuildDetHasher>;

/// An empty [`DetHashMap`] (the aliases have no `new()`).
pub fn det_map<K, V>() -> DetHashMap<K, V> {
    DetHashMap::default()
}

/// An empty [`DetHashSet`].
pub fn det_set<T>() -> DetHashSet<T> {
    DetHashSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_stable_across_identical_maps() {
        let build = |offset: u64| {
            let mut m = det_map();
            for k in 0..1000u64 {
                m.insert(k * 7 + offset, k);
            }
            m.keys().copied().collect::<Vec<u64>>()
        };
        assert_eq!(build(0), build(0));
        // Different contents naturally order differently; same contents
        // never do.
        assert_ne!(build(0), build(1));
    }

    #[test]
    fn set_behaves_like_a_set() {
        let mut s = det_set();
        assert!(s.insert(42u64));
        assert!(!s.insert(42u64));
        assert!(s.contains(&42));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hasher_matches_reference_fnv1a() {
        // FNV-1a of b"a" = 0xaf63dc4c8601ec8c.
        let mut h = DetHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn with_capacity_construction() {
        let m: DetHashMap<u64, u64> = DetHashMap::with_capacity_and_hasher(64, BuildDetHasher);
        assert!(m.capacity() >= 64);
    }
}
