//! Memory tier timing specifications (the paper's Table I).

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// The two memory tiers of a hybrid memory system.
///
/// The paper calls these **FastMem** (DRAM-like: high bandwidth, low
/// latency) and **SlowMem** (NVDIMM-like: lower bandwidth, higher latency,
/// but cheaper per byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTier {
    /// DRAM-like fast tier.
    Fast,
    /// NVM-like slow tier.
    Slow,
}

impl MemTier {
    /// Both tiers, Fast first.
    pub const ALL: [MemTier; 2] = [MemTier::Fast, MemTier::Slow];

    /// The other tier.
    pub fn other(self) -> MemTier {
        match self {
            MemTier::Fast => MemTier::Slow,
            MemTier::Slow => MemTier::Fast,
        }
    }

    /// Paper-facing name.
    pub fn name(self) -> &'static str {
        match self {
            MemTier::Fast => "FastMem",
            MemTier::Slow => "SlowMem",
        }
    }

    /// This tier's index in the generalized N-tier stack order
    /// (Fast = 0, Slow = 1).
    pub fn id(self) -> TierId {
        TierId::from(self)
    }
}

impl std::fmt::Display for MemTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of one tier in an ordered N-tier hierarchy: index 0 is
/// the topmost (fastest, most expensive) tier and indices grow downward.
///
/// The legacy two-tier system maps [`MemTier::Fast`] to index 0 and
/// [`MemTier::Slow`] to index 1, so everything keyed by `TierId` (device
/// degradation, fault plans) composes unchanged with two-tier code via
/// the `From<MemTier>` conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TierId(pub u8);

impl TierId {
    /// The legacy FastMem tier (stack index 0).
    pub const FAST: TierId = TierId(0);
    /// The legacy SlowMem tier (stack index 1).
    pub const SLOW: TierId = TierId(1);

    /// Position in the stack, top (fastest) first.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl From<MemTier> for TierId {
    fn from(tier: MemTier) -> TierId {
        match tier {
            MemTier::Fast => TierId::FAST,
            MemTier::Slow => TierId::SLOW,
        }
    }
}

impl std::fmt::Display for TierId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load: latency-exposed — the requester waits for the data.
    Read,
    /// A store: partially latency-hidden by store buffering / asynchronous
    /// write-back, per the paper's observation that "write heavy workloads
    /// ... are less impacted by the heterogeneity of the memory subsystem".
    Write,
}

/// Timing model of one memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Idle read latency in nanoseconds (first-word).
    pub read_latency_ns: f64,
    /// Sustained bandwidth in bytes per nanosecond (== GB/s).
    pub bandwidth_bytes_per_ns: f64,
    /// Fraction of the read latency a store still exposes after store
    /// buffering (0 = fully hidden, 1 = as exposed as a load).
    pub write_latency_factor: f64,
    /// Effective bandwidth multiplier for streaming writes: asynchronous
    /// write-back overlaps the transfer with computation, so the requester
    /// observes a higher apparent bandwidth.
    pub write_overlap_factor: f64,
}

impl TierSpec {
    /// Paper Table I FastMem row: 65.7 ns, 14.9 GB/s.
    pub fn paper_fastmem() -> TierSpec {
        TierSpec {
            read_latency_ns: 65.7,
            bandwidth_bytes_per_ns: 14.9,
            write_latency_factor: 0.2,
            write_overlap_factor: 3.0,
        }
    }

    /// Paper Table I SlowMem row: 238.1 ns, 1.81 GB/s — i.e. bandwidth
    /// throttled to 0.12x and latency raised to 3.62x of DRAM.
    pub fn paper_slowmem() -> TierSpec {
        TierSpec {
            read_latency_ns: 238.1,
            bandwidth_bytes_per_ns: 1.81,
            write_latency_factor: 0.2,
            write_overlap_factor: 3.0,
        }
    }

    /// An Optane DC PMM-like tier, from published device measurements
    /// (Izraelevitz et al.): ~305 ns read latency, ~6.6 GB/s read
    /// bandwidth per DIMM with writes at roughly a third of that — the
    /// hardware the paper anticipated ("Intel's upcoming Optane DC
    /// Persistent Memory"). The write asymmetry is modelled through a
    /// reduced write-overlap factor on top of the shared bandwidth field.
    pub fn optane_dc() -> TierSpec {
        TierSpec {
            read_latency_ns: 305.0,
            bandwidth_bytes_per_ns: 6.6,
            write_latency_factor: 0.31,
            // Effective write bandwidth ~2.3 GB/s = 0.35x the read
            // bandwidth: Optane writes are device-limited, so the overlap
            // factor models the *asymmetry* here, not async draining.
            write_overlap_factor: 0.35,
        }
    }

    /// Derive a slow tier from a fast one by the paper's B/L factors
    /// (`B:x` = bandwidth multiplier, `L:y` = latency multiplier).
    pub fn derived(fast: &TierSpec, bandwidth_factor: f64, latency_factor: f64) -> TierSpec {
        assert!(bandwidth_factor > 0.0 && latency_factor > 0.0);
        TierSpec {
            read_latency_ns: fast.read_latency_ns * latency_factor,
            bandwidth_bytes_per_ns: fast.bandwidth_bytes_per_ns * bandwidth_factor,
            write_latency_factor: fast.write_latency_factor,
            write_overlap_factor: fast.write_overlap_factor,
        }
    }

    /// Time in nanoseconds to move `bytes` for the given access kind,
    /// including the (possibly damped) latency component.
    pub fn access_ns(&self, kind: AccessKind, bytes: u64) -> f64 {
        match kind {
            AccessKind::Read => self.read_latency_ns + bytes as f64 / self.bandwidth_bytes_per_ns,
            AccessKind::Write => {
                self.read_latency_ns * self.write_latency_factor
                    + bytes as f64 / (self.bandwidth_bytes_per_ns * self.write_overlap_factor)
            }
        }
    }
}

/// Full specification of a simulated hybrid memory system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridSpec {
    /// FastMem timing.
    pub fast: TierSpec,
    /// SlowMem timing.
    pub slow: TierSpec,
    /// FastMem capacity in bytes.
    pub fast_capacity: u64,
    /// SlowMem capacity in bytes.
    pub slow_capacity: u64,
    /// Last-level cache in front of both tiers.
    pub cache: CacheConfig,
}

impl HybridSpec {
    /// The paper's testbed: two 4 GB nodes and a 12 MB shared LLC.
    pub fn paper_testbed() -> HybridSpec {
        HybridSpec {
            fast: TierSpec::paper_fastmem(),
            slow: TierSpec::paper_slowmem(),
            fast_capacity: 4 << 30,
            slow_capacity: 4 << 30,
            cache: CacheConfig::paper_llc(),
        }
    }

    /// Timing spec of a tier.
    pub fn tier(&self, tier: MemTier) -> &TierSpec {
        match tier {
            MemTier::Fast => &self.fast,
            MemTier::Slow => &self.slow,
        }
    }

    /// Capacity of a tier in bytes.
    pub fn capacity(&self, tier: MemTier) -> u64 {
        match tier {
            MemTier::Fast => self.fast_capacity,
            MemTier::Slow => self.slow_capacity,
        }
    }

    /// The bandwidth (`B`) and latency (`L`) factors of SlowMem relative
    /// to FastMem, as Table I reports them.
    pub fn slow_factors(&self) -> (f64, f64) {
        (
            self.slow.bandwidth_bytes_per_ns / self.fast.bandwidth_bytes_per_ns,
            self.slow.read_latency_ns / self.fast.read_latency_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_factors() {
        let spec = HybridSpec::paper_testbed();
        let (b, l) = spec.slow_factors();
        assert!((b - 0.12).abs() < 0.005, "bandwidth factor {b}");
        assert!((l - 3.62).abs() < 0.005, "latency factor {l}");
    }

    #[test]
    fn read_time_has_latency_plus_transfer() {
        let fast = TierSpec::paper_fastmem();
        let t0 = fast.access_ns(AccessKind::Read, 0);
        assert!((t0 - 65.7).abs() < 1e-9);
        let t = fast.access_ns(AccessKind::Read, 14_900);
        // 14_900 bytes at 14.9 B/ns = 1000 ns of transfer.
        assert!((t - (65.7 + 1000.0)).abs() < 1e-6);
    }

    #[test]
    fn writes_are_less_exposed_than_reads() {
        for spec in [TierSpec::paper_fastmem(), TierSpec::paper_slowmem()] {
            for bytes in [64, 1024, 100 * 1024] {
                assert!(
                    spec.access_ns(AccessKind::Write, bytes)
                        < spec.access_ns(AccessKind::Read, bytes),
                    "bytes={bytes}"
                );
            }
        }
    }

    #[test]
    fn slow_tier_slower_for_all_sizes() {
        let fast = TierSpec::paper_fastmem();
        let slow = TierSpec::paper_slowmem();
        for bytes in [0, 64, 1024, 10 * 1024, 100 * 1024] {
            for kind in [AccessKind::Read, AccessKind::Write] {
                assert!(slow.access_ns(kind, bytes) > fast.access_ns(kind, bytes));
            }
        }
    }

    #[test]
    fn derived_tier_applies_factors() {
        let fast = TierSpec::paper_fastmem();
        let slow = TierSpec::derived(&fast, 0.12, 3.62);
        assert!((slow.read_latency_ns - 65.7 * 3.62).abs() < 1e-9);
        assert!((slow.bandwidth_bytes_per_ns - 14.9 * 0.12).abs() < 1e-9);
    }

    #[test]
    fn optane_sits_between_table1_tiers() {
        let fast = TierSpec::paper_fastmem();
        let slow = TierSpec::paper_slowmem();
        let optane = TierSpec::optane_dc();
        // Bandwidth: slower than DRAM, faster than the throttled emulation.
        assert!(optane.bandwidth_bytes_per_ns < fast.bandwidth_bytes_per_ns);
        assert!(optane.bandwidth_bytes_per_ns > slow.bandwidth_bytes_per_ns);
        // Latency: worse than both DRAM and the throttled node (real PMM
        // latency exceeds what DRAM throttling can emulate).
        assert!(optane.read_latency_ns > slow.read_latency_ns);
        // Writes are markedly slower than reads at streaming sizes
        // (asymmetric device bandwidth) but latency-damped at small ones.
        let read = optane.access_ns(AccessKind::Read, 1 << 20);
        let write = optane.access_ns(AccessKind::Write, 1 << 20);
        assert!(write > read * 2.0, "streaming writes are bandwidth-starved");
        assert!(
            optane.access_ns(AccessKind::Write, 64) < optane.access_ns(AccessKind::Read, 64),
            "small writes still hide latency in buffers"
        );
    }

    #[test]
    fn tier_other_roundtrips() {
        assert_eq!(MemTier::Fast.other(), MemTier::Slow);
        assert_eq!(MemTier::Slow.other().other(), MemTier::Slow);
        assert_eq!(MemTier::Fast.to_string(), "FastMem");
    }
}
