//! Placement-aware object allocator.
//!
//! Key-value pairs are simulated as *objects*: opaque blobs with a stable
//! [`ObjectId`], a byte size and a current tier. The allocator mirrors what
//! `numactl`-bound server processes do in the paper — every allocation is
//! served by exactly one memory node — while additionally supporting
//! per-object placement and migration, which is what Mnemo's Placement
//! Engine needs.
//!
//! Simulated addresses are handed out by a segregated free-list: freed
//! blocks are recycled by size class before the bump pointer grows. The
//! addresses only need to be stable and disjoint (they seed the cache
//! models), not contiguous.

use crate::det::DetHashMap;
use crate::device::CapacityError;
use crate::num;
use crate::spec::MemTier;
use serde::{Deserialize, Serialize};

/// Stable identifier of a simulated object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Placement record of a live object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Tier currently holding the object.
    pub tier: MemTier,
    /// Simulated start address within the tier's address window.
    pub addr: u64,
    /// Object size in bytes.
    pub bytes: u64,
}

/// Allocation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The target tier does not have room (capacity enforced by the owning
    /// [`Device`](crate::device::Device)). Carries the device's own
    /// [`CapacityError`] so callers see both the request and the free
    /// bytes at the moment of failure — over-committed splits surface as
    /// diagnosable errors, never panics.
    OutOfMemory {
        /// Tier that was full.
        tier: MemTier,
        /// The device-level capacity error that caused this.
        source: CapacityError,
    },
    /// The object id is unknown (double free, migrate after free, ...).
    UnknownObject(ObjectId),
    /// Zero-sized allocations are not meaningful for placement decisions.
    ZeroSize,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory { tier, source } => {
                write!(f, "{tier}: {source}")
            }
            AllocError::UnknownObject(id) => write!(f, "unknown object {id}"),
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::OutOfMemory { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Size-class segregated free list of simulated address ranges for one
/// tier. Blocks are recycled exactly (per rounded size class), so reuse
/// never aliases two live objects.
#[derive(Debug, Default, Clone)]
pub(crate) struct TierArena {
    bump: u64,
    /// size-class -> freed addresses.
    free: DetHashMap<u64, Vec<u64>>,
}

/// Round a size up to its allocation class: next power of two, with a
/// 256-byte floor (mirrors slab/jemalloc-style classing and bounds the
/// number of distinct free lists).
fn size_class(bytes: u64) -> u64 {
    bytes.max(256).next_power_of_two()
}

impl TierArena {
    pub(crate) fn alloc(&mut self, bytes: u64) -> u64 {
        let class = size_class(bytes);
        if let Some(list) = self.free.get_mut(&class) {
            if let Some(addr) = list.pop() {
                return addr;
            }
        }
        let addr = self.bump;
        self.bump += class;
        addr
    }

    pub(crate) fn dealloc(&mut self, addr: u64, bytes: u64) {
        self.free.entry(size_class(bytes)).or_default().push(addr);
    }
}

/// Object table: id -> placement, plus per-tier arenas.
///
/// Ids are handed out sequentially and never reused, so placements live
/// in a slab indexed by id — the per-request placement probe is a
/// bounds-checked load instead of a hash probe. Freed slots stay `None`.
#[derive(Debug, Default, Clone)]
pub struct ObjectTable {
    /// Slot `i` holds the placement of `ObjectId(i)`; `None` once freed.
    slots: Vec<Option<Placement>>,
    live: usize,
    fast: TierArena,
    slow: TierArena,
}

impl ObjectTable {
    /// Empty table.
    pub fn new() -> ObjectTable {
        ObjectTable::default()
    }

    fn arena(&mut self, tier: MemTier) -> &mut TierArena {
        match tier {
            MemTier::Fast => &mut self.fast,
            MemTier::Slow => &mut self.slow,
        }
    }

    /// Register a new object in `tier`. Capacity must have been reserved
    /// by the caller (the [`HybridMemory`](crate::system::HybridMemory)
    /// facade pairs this with device accounting).
    pub fn insert(&mut self, bytes: u64, tier: MemTier) -> Result<ObjectId, AllocError> {
        if bytes == 0 {
            return Err(AllocError::ZeroSize);
        }
        let id = ObjectId(num::u64_from_usize(self.slots.len()));
        let addr = self.arena(tier).alloc(bytes);
        self.slots.push(Some(Placement { tier, addr, bytes }));
        self.live += 1;
        Ok(id)
    }

    /// Look up a live object.
    #[inline]
    pub fn get(&self, id: ObjectId) -> Result<Placement, AllocError> {
        match self.slots.get(num::usize_from_u64(id.0)) {
            Some(&Some(p)) => Ok(p),
            _ => Err(AllocError::UnknownObject(id)),
        }
    }

    fn slot_mut(&mut self, id: ObjectId) -> Option<&mut Option<Placement>> {
        self.slots.get_mut(num::usize_from_u64(id.0))
    }

    /// Remove an object, returning its last placement.
    pub fn remove(&mut self, id: ObjectId) -> Result<Placement, AllocError> {
        let p = self
            .slot_mut(id)
            .and_then(|slot| slot.take())
            .ok_or(AllocError::UnknownObject(id))?;
        self.live -= 1;
        self.arena(p.tier).dealloc(p.addr, p.bytes);
        Ok(p)
    }

    /// Move an object to `target`, returning `(old, new)` placements.
    /// A migration to the current tier is a no-op.
    pub fn migrate(
        &mut self,
        id: ObjectId,
        target: MemTier,
    ) -> Result<(Placement, Placement), AllocError> {
        let old = self.get(id)?;
        if old.tier == target {
            return Ok((old, old));
        }
        self.arena(old.tier).dealloc(old.addr, old.bytes);
        let addr = self.arena(target).alloc(old.bytes);
        let new = Placement {
            tier: target,
            addr,
            bytes: old.bytes,
        };
        if let Some(slot) = self.slot_mut(id) {
            *slot = Some(new);
        }
        Ok((old, new))
    }

    /// Resize an object in place (same tier, possibly new address),
    /// returning `(old, new)` placements.
    pub fn resize(
        &mut self,
        id: ObjectId,
        bytes: u64,
    ) -> Result<(Placement, Placement), AllocError> {
        if bytes == 0 {
            return Err(AllocError::ZeroSize);
        }
        let old = self.get(id)?;
        let new = if size_class(bytes) == size_class(old.bytes) {
            Placement { bytes, ..old }
        } else {
            self.arena(old.tier).dealloc(old.addr, old.bytes);
            let addr = self.arena(old.tier).alloc(bytes);
            Placement {
                tier: old.tier,
                addr,
                bytes,
            }
        };
        if let Some(slot) = self.slot_mut(id) {
            *slot = Some(new);
        }
        Ok((old, new))
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no objects are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over live objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, Placement)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|p| (ObjectId(num::u64_from_usize(i)), p)))
    }

    /// Total live bytes in a tier.
    pub fn bytes_in(&self, tier: MemTier) -> u64 {
        self.slots
            .iter()
            .flatten()
            .filter(|p| p.tier == tier)
            .map(|p| p.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = ObjectTable::new();
        let id = t.insert(1000, MemTier::Fast).unwrap();
        let p = t.get(id).unwrap();
        assert_eq!(p.tier, MemTier::Fast);
        assert_eq!(p.bytes, 1000);
        let removed = t.remove(id).unwrap();
        assert_eq!(removed, p);
        assert_eq!(t.get(id).unwrap_err(), AllocError::UnknownObject(id));
    }

    #[test]
    fn zero_size_rejected() {
        let mut t = ObjectTable::new();
        assert_eq!(
            t.insert(0, MemTier::Fast).unwrap_err(),
            AllocError::ZeroSize
        );
    }

    #[test]
    fn ids_are_never_reused() {
        let mut t = ObjectTable::new();
        let a = t.insert(10, MemTier::Fast).unwrap();
        t.remove(a).unwrap();
        let b = t.insert(10, MemTier::Fast).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn addresses_disjoint_per_tier() {
        let mut t = ObjectTable::new();
        let ids: Vec<_> = (0..100)
            .map(|_| t.insert(300, MemTier::Fast).unwrap())
            .collect();
        let mut addrs: Vec<u64> = ids.iter().map(|&i| t.get(i).unwrap().addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 100, "live objects must not alias");
    }

    #[test]
    fn freed_addresses_are_recycled() {
        let mut t = ObjectTable::new();
        let a = t.insert(1000, MemTier::Slow).unwrap();
        let addr = t.get(a).unwrap().addr;
        t.remove(a).unwrap();
        let b = t.insert(900, MemTier::Slow).unwrap(); // same 1024-class
        assert_eq!(t.get(b).unwrap().addr, addr);
    }

    #[test]
    fn migrate_moves_tier_and_keeps_size() {
        let mut t = ObjectTable::new();
        let id = t.insert(5000, MemTier::Slow).unwrap();
        let (old, new) = t.migrate(id, MemTier::Fast).unwrap();
        assert_eq!(old.tier, MemTier::Slow);
        assert_eq!(new.tier, MemTier::Fast);
        assert_eq!(new.bytes, 5000);
        // No-op migration.
        let (o2, n2) = t.migrate(id, MemTier::Fast).unwrap();
        assert_eq!(o2, n2);
    }

    #[test]
    fn resize_within_class_is_in_place() {
        let mut t = ObjectTable::new();
        let id = t.insert(1000, MemTier::Fast).unwrap();
        let before = t.get(id).unwrap().addr;
        let (_, new) = t.resize(id, 1024).unwrap(); // same 1024-class
        assert_eq!(new.addr, before);
        assert_eq!(new.bytes, 1024);
        let (_, moved) = t.resize(id, 5000).unwrap();
        assert_eq!(moved.bytes, 5000);
    }

    #[test]
    fn bytes_in_tier_accounting() {
        let mut t = ObjectTable::new();
        t.insert(100, MemTier::Fast).unwrap();
        t.insert(200, MemTier::Fast).unwrap();
        let s = t.insert(300, MemTier::Slow).unwrap();
        assert_eq!(t.bytes_in(MemTier::Fast), 300);
        assert_eq!(t.bytes_in(MemTier::Slow), 300);
        t.migrate(s, MemTier::Fast).unwrap();
        assert_eq!(t.bytes_in(MemTier::Fast), 600);
        assert_eq!(t.bytes_in(MemTier::Slow), 0);
    }

    #[test]
    fn size_class_properties() {
        assert_eq!(size_class(1), 256);
        assert_eq!(size_class(256), 256);
        assert_eq!(size_class(257), 512);
        assert_eq!(size_class(100 * 1024), 128 * 1024);
    }

    proptest! {
        #[test]
        fn live_objects_never_alias(ops in proptest::collection::vec((0u64..4, 1u64..10_000), 1..200)) {
            let mut t = ObjectTable::new();
            let mut live: Vec<ObjectId> = Vec::new();
            for (op, arg) in ops {
                match op {
                    0 | 1 => {
                        let tier = if op == 0 { MemTier::Fast } else { MemTier::Slow };
                        live.push(t.insert(arg, tier).unwrap());
                    }
                    2 if !live.is_empty() => {
                        let id = live.remove(arg as usize % live.len());
                        t.remove(id).unwrap();
                    }
                    3 if !live.is_empty() => {
                        let id = live[arg as usize % live.len()];
                        let target = if arg % 2 == 0 { MemTier::Fast } else { MemTier::Slow };
                        t.migrate(id, target).unwrap();
                    }
                    _ => {}
                }
                // Invariant: (tier, addr) pairs of live objects are unique.
                let mut seen = std::collections::HashSet::new();
                for (_, p) in t.iter() {
                    prop_assert!(seen.insert((p.tier, p.addr)), "aliased placement {p:?}");
                }
            }
            prop_assert_eq!(t.len(), live.len());
        }
    }
}
