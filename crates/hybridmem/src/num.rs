//! Checked numeric conversions for byte-size and nanosecond arithmetic.
//!
//! The simulator mixes `u64` byte counts, `u128` virtual nanoseconds,
//! `f64` model outputs, and `usize` indices. A bare `as` cast between
//! them silently truncates or drops sign — which is why the R002 lint
//! bans `as`-to-integer in this crate. These helpers make the intended
//! semantics explicit: lossless where the platform guarantees it,
//! *saturating* where the source can exceed the target (an off-scale
//! byte count clamps instead of wrapping into a plausible-looking
//! small number).

/// `u64` → `usize`, saturating (lossless on 64-bit targets).
#[inline]
pub fn usize_from_u64(v: u64) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// `usize` → `u64`, saturating (lossless on every supported target).
#[inline]
pub fn u64_from_usize(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Non-negative `f64` → `u64`, truncating toward zero and saturating at
/// the ends; NaN maps to 0. Used for nanosecond values that were
/// computed in the float domain.
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // audited: saturation is the contract
pub fn u64_from_f64(v: f64) -> u64 {
    // mnemo-lint: allow(R002, "float-to-int `as` is the checked primitive: it saturates and maps NaN to 0 by language definition")
    v as u64
}

/// Non-negative `f64` nanoseconds → `u128`, rounding to the nearest
/// integer, saturating, NaN → 0.
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // audited: saturation is the contract
pub fn u128_from_f64(v: f64) -> u128 {
    // mnemo-lint: allow(R002, "float-to-int `as` is the checked primitive: it saturates and maps NaN to 0 by language definition")
    v.round() as u128
}

/// `u64` → `i32` exponent, saturating. For power-of-two bucket math
/// (`2f64.powi(...)`), where saturation turns an absurd exponent into
/// `inf` rather than wrapping into a negative power.
#[inline]
pub fn i32_exp_from_u64(v: u64) -> i32 {
    i32::try_from(v).unwrap_or(i32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_u64_round_trip_is_lossless_in_range() {
        for v in [0u64, 1, 255, 1 << 32, u64::from(u32::MAX)] {
            assert_eq!(u64_from_usize(usize_from_u64(v)), v);
        }
    }

    #[test]
    fn f64_conversions_truncate_saturate_and_absorb_nan() {
        assert_eq!(u64_from_f64(0.0), 0);
        assert_eq!(u64_from_f64(1.9), 1);
        assert_eq!(u64_from_f64(-5.0), 0);
        assert_eq!(u64_from_f64(f64::NAN), 0);
        assert_eq!(u64_from_f64(f64::INFINITY), u64::MAX);
        assert_eq!(u128_from_f64(100.4), 100);
        assert_eq!(u128_from_f64(100.6), 101);
        assert_eq!(u128_from_f64(f64::NAN), 0);
    }

    #[test]
    fn exponent_saturates() {
        assert_eq!(i32_exp_from_u64(31), 31);
        assert_eq!(i32_exp_from_u64(u64::MAX), i32::MAX);
    }
}
