//! N-tier generalization of [`HybridMemory`](crate::system::HybridMemory).
//!
//! The paper's model is exactly two tiers (FastMem/SlowMem). A
//! [`TierStack`] is the same machinery over an *ordered list* of devices
//! — DRAM + NVM + SSD-backed swap, or any depth — each described by a
//! [`TierDef`] carrying Table-I-style timing plus a capacity and a $/GiB
//! price. Index 0 is the topmost (fastest) tier; indices grow downward
//! toward cheaper, slower devices.
//!
//! The access path is byte-for-byte the same float arithmetic as the
//! two-tier [`HybridMemory`](crate::system::HybridMemory) facade: the
//! same LLC front-end, the same [`Device`] charge rows, the same
//! allocator address sequences. A two-tier stack built via
//! [`StackSpec::two_tier`] therefore reproduces the legacy system's
//! charges bit-identically — the property the `mnemo-tier` greedy policy
//! relies on to keep golden figures byte-stable at N=2.

use crate::alloc::{ObjectId, TierArena};
use crate::cache::{Cache, CacheConfig};
use crate::degrade::DegradationProfile;
use crate::device::{CapacityError, Device};
use crate::num;
use crate::spec::{AccessKind, HybridSpec, TierId, TierSpec};
use crate::stats::AccessStats;
use crate::system::CacheStats;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Bytes per GiB, for price arithmetic.
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Hard ceiling on hierarchy depth. Deep enough for any realistic
/// memory/storage pyramid while keeping [`TierId`]'s `u8` index roomy.
pub const MAX_TIERS: usize = 64;

/// One tier of an N-tier hierarchy: a name (referenced by fault plans
/// and figures), Table-I-style timing, a capacity, and a price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierDef {
    /// Human-facing tier name (e.g. `"dram"`, `"optane"`, `"ssd"`).
    /// Matched case-insensitively by spec files and fault plans.
    pub name: String,
    /// Timing model of the tier's device.
    pub spec: TierSpec,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Price in dollars per GiB (Table-I-style cost parameter; the
    /// cost-efficiency figures divide throughput by the hierarchy cost).
    pub price_per_gib: f64,
}

impl TierDef {
    /// Dollar cost of this tier's full capacity.
    pub fn cost_usd(&self) -> f64 {
        self.capacity_bytes as f64 / GIB * self.price_per_gib
    }
}

/// Ordered N-tier hierarchy specification, fastest tier first, plus the
/// shared last-level cache in front of all tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackSpec {
    /// The tiers, top (index 0, fastest) first.
    pub tiers: Vec<TierDef>,
    /// Last-level cache shared by every tier.
    pub cache: CacheConfig,
}

impl StackSpec {
    /// The legacy two-tier system as a stack: FastMem at index 0,
    /// SlowMem at index 1, same capacities and cache. Prices follow the
    /// paper's cost model where SlowMem costs a 0.2 fraction of FastMem
    /// per byte (DRAM at $6/GiB).
    pub fn two_tier(spec: &HybridSpec) -> StackSpec {
        StackSpec {
            tiers: vec![
                TierDef {
                    name: "fastmem".to_string(),
                    spec: spec.fast,
                    capacity_bytes: spec.fast_capacity,
                    price_per_gib: 6.0,
                },
                TierDef {
                    name: "slowmem".to_string(),
                    spec: spec.slow,
                    capacity_bytes: spec.slow_capacity,
                    price_per_gib: 6.0 * 0.2,
                },
            ],
            cache: spec.cache,
        }
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// True when the stack has no tiers (always invalid).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Tier ids in stack order, top first.
    pub fn ids(&self) -> impl Iterator<Item = TierId> + '_ {
        (0..self.tiers.len()).map(tier_id)
    }

    /// The definition of one tier, `None` for an out-of-range id.
    pub fn tier(&self, id: TierId) -> Option<&TierDef> {
        self.tiers.get(id.index())
    }

    /// Resolve a tier by case-insensitive name.
    pub fn tier_by_name(&self, name: &str) -> Option<TierId> {
        self.tiers
            .iter()
            .position(|t| t.name.eq_ignore_ascii_case(name))
            .map(tier_id)
    }

    /// Total capacity over all tiers.
    pub fn total_capacity(&self) -> u64 {
        self.tiers.iter().map(|t| t.capacity_bytes).sum()
    }

    /// Dollar cost of the whole hierarchy (sum over tiers, in stack
    /// order, so the float sum is deterministic).
    pub fn cost_usd(&self) -> f64 {
        let mut total = 0.0;
        for t in &self.tiers {
            total += t.cost_usd();
        }
        total
    }

    /// Check structural invariants: 1..=[`MAX_TIERS`] tiers, positive
    /// capacities, finite positive timing, non-empty case-insensitively
    /// unique names, finite non-negative prices.
    pub fn validate(&self) -> Result<(), String> {
        if self.tiers.is_empty() {
            return Err("hierarchy has no tiers".to_string());
        }
        if self.tiers.len() > MAX_TIERS {
            return Err(format!(
                "hierarchy has {} tiers; at most {MAX_TIERS} supported",
                self.tiers.len()
            ));
        }
        for (i, t) in self.tiers.iter().enumerate() {
            let name = t.name.trim();
            if name.is_empty() {
                return Err(format!("tier {i} has an empty name"));
            }
            if t.capacity_bytes == 0 {
                return Err(format!("tier '{}' has zero capacity", t.name));
            }
            if !(t.spec.read_latency_ns.is_finite() && t.spec.read_latency_ns > 0.0) {
                return Err(format!(
                    "tier '{}': read_latency_ns must be finite and positive",
                    t.name
                ));
            }
            if !(t.spec.bandwidth_bytes_per_ns.is_finite() && t.spec.bandwidth_bytes_per_ns > 0.0) {
                return Err(format!(
                    "tier '{}': bandwidth_bytes_per_ns must be finite and positive",
                    t.name
                ));
            }
            if !(t.spec.write_latency_factor.is_finite() && t.spec.write_latency_factor >= 0.0) {
                return Err(format!(
                    "tier '{}': write_latency_factor must be finite and >= 0",
                    t.name
                ));
            }
            if !(t.spec.write_overlap_factor.is_finite() && t.spec.write_overlap_factor > 0.0) {
                return Err(format!(
                    "tier '{}': write_overlap_factor must be finite and positive",
                    t.name
                ));
            }
            if !(t.price_per_gib.is_finite() && t.price_per_gib >= 0.0) {
                return Err(format!(
                    "tier '{}': price_per_gib must be finite and >= 0",
                    t.name
                ));
            }
            for other in &self.tiers[..i] {
                if other.name.eq_ignore_ascii_case(&t.name) {
                    return Err(format!("duplicate tier name '{}'", t.name));
                }
            }
        }
        Ok(())
    }
}

/// Build a [`TierId`] from a stack index bounded by [`MAX_TIERS`].
fn tier_id(index: usize) -> TierId {
    TierId(u8::try_from(index).unwrap_or(u8::MAX))
}

/// Placement record of a live object in a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackPlacement {
    /// Tier currently holding the object.
    pub tier: TierId,
    /// Simulated start address within the tier's address window.
    pub addr: u64,
    /// Object size in bytes.
    pub bytes: u64,
}

/// Errors raised by [`TierStack`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StackError {
    /// The hierarchy specification failed validation.
    InvalidSpec(String),
    /// The target tier does not have room.
    OutOfMemory {
        /// Tier that was full.
        tier: TierId,
        /// The device-level capacity error that caused this.
        source: CapacityError,
    },
    /// The object id is unknown (double free, migrate after free, ...).
    UnknownObject(ObjectId),
    /// Zero-sized allocations carry no placement information.
    ZeroSize,
    /// The tier id is out of range for this stack.
    UnknownTier(TierId),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::InvalidSpec(reason) => write!(f, "invalid hierarchy: {reason}"),
            StackError::OutOfMemory { tier, source } => write!(f, "{tier}: {source}"),
            StackError::UnknownObject(id) => write!(f, "unknown object {id}"),
            StackError::ZeroSize => write!(f, "zero-sized allocation"),
            StackError::UnknownTier(tier) => write!(f, "unknown tier {tier}"),
        }
    }
}

impl std::error::Error for StackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StackError::OutOfMemory { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A simulated N-tier memory system with an LLC in front — the
/// [`HybridMemory`](crate::system::HybridMemory) facade generalized to
/// an ordered stack of devices.
pub struct TierStack {
    spec: StackSpec,
    devices: Vec<Device>,
    /// Slot `i` holds the placement of `ObjectId(i)`; `None` once freed.
    slots: Vec<Option<StackPlacement>>,
    live: usize,
    arenas: Vec<TierArena>,
    cache: Box<dyn Cache>,
    cache_stats: CacheStats,
    degradation: Option<Arc<DegradationProfile>>,
}

impl TierStack {
    /// Build a stack from a validated spec.
    pub fn new(spec: StackSpec) -> Result<TierStack, StackError> {
        spec.validate().map_err(StackError::InvalidSpec)?;
        let devices = spec
            .tiers
            .iter()
            .enumerate()
            .map(|(i, t)| Device::new(tier_id(i), t.spec, t.capacity_bytes))
            .collect();
        let arenas = spec.tiers.iter().map(|_| TierArena::default()).collect();
        let cache = spec.cache.build();
        Ok(TierStack {
            devices,
            slots: Vec::new(),
            live: 0,
            arenas,
            cache,
            cache_stats: CacheStats::default(),
            degradation: None,
            spec,
        })
    }

    /// The hierarchy specification.
    pub fn spec(&self) -> &StackSpec {
        &self.spec
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.devices.len()
    }

    /// Tier ids in stack order, top first.
    pub fn tier_ids(&self) -> impl Iterator<Item = TierId> + '_ {
        self.spec.ids()
    }

    /// Name of a tier, or the numeric id's display form when out of
    /// range (only reachable with a foreign id).
    pub fn name(&self, tier: TierId) -> &str {
        self.spec
            .tier(tier)
            .map(|t| t.name.as_str())
            .unwrap_or("<unknown>")
    }

    fn check_tier(&self, tier: TierId) -> Result<usize, StackError> {
        let i = tier.index();
        if i < self.devices.len() {
            Ok(i)
        } else {
            Err(StackError::UnknownTier(tier))
        }
    }

    /// Install (or clear) a time-varying degradation profile on all
    /// devices, shared via `Arc` like the two-tier facade.
    pub fn set_degradation(&mut self, profile: Option<DegradationProfile>) {
        let shared = profile.map(Arc::new);
        for d in &mut self.devices {
            d.set_degradation(shared.clone());
        }
        self.degradation = shared;
    }

    /// The installed degradation profile, if any.
    pub fn degradation(&self) -> Option<&DegradationProfile> {
        self.degradation.as_deref()
    }

    /// Set the simulated time at which all devices evaluate their
    /// degradation profile.
    pub fn set_now_ns(&mut self, now_ns: u128) {
        for d in &mut self.devices {
            d.set_now_ns(now_ns);
        }
    }

    /// Drop all cached state without touching device statistics.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Allocate an object of `bytes` in `tier`.
    pub fn alloc(&mut self, bytes: u64, tier: TierId) -> Result<ObjectId, StackError> {
        let i = self.check_tier(tier)?;
        if bytes == 0 {
            return Err(StackError::ZeroSize);
        }
        self.devices[i]
            .reserve(bytes)
            .map_err(|source| StackError::OutOfMemory { tier, source })?;
        let id = ObjectId(num::u64_from_usize(self.slots.len()));
        let addr = self.arenas[i].alloc(bytes);
        self.slots.push(Some(StackPlacement { tier, addr, bytes }));
        self.live += 1;
        Ok(id)
    }

    /// Free an object.
    pub fn free(&mut self, id: ObjectId) -> Result<(), StackError> {
        let p = self
            .slots
            .get_mut(num::usize_from_u64(id.0))
            .and_then(|slot| slot.take())
            .ok_or(StackError::UnknownObject(id))?;
        self.live -= 1;
        let i = p.tier.index();
        self.arenas[i].dealloc(p.addr, p.bytes);
        self.devices[i].release(p.bytes);
        self.cache.invalidate(id.0);
        Ok(())
    }

    /// Migrate an object to `target`, returning the simulated cost of
    /// the copy (read from source + write to destination); a no-op
    /// migration costs nothing. Same charge order as the two-tier
    /// facade, so costs stay bit-identical at N=2.
    pub fn migrate(&mut self, id: ObjectId, target: TierId) -> Result<f64, StackError> {
        let ti = self.check_tier(target)?;
        let old = self.placement(id)?;
        if old.tier == target {
            return Ok(0.0);
        }
        self.devices[ti]
            .reserve(old.bytes)
            .map_err(|source| StackError::OutOfMemory {
                tier: target,
                source,
            })?;
        let oi = old.tier.index();
        self.arenas[oi].dealloc(old.addr, old.bytes);
        let addr = self.arenas[ti].alloc(old.bytes);
        if let Some(slot) = self.slots.get_mut(num::usize_from_u64(id.0)) {
            *slot = Some(StackPlacement {
                tier: target,
                addr,
                bytes: old.bytes,
            });
        }
        self.devices[oi].release(old.bytes);
        self.cache.invalidate(id.0);
        let read = self.devices[oi].access_ns(AccessKind::Read, old.bytes);
        let write = self.devices[ti].access_ns(AccessKind::Write, old.bytes);
        Ok(read + write)
    }

    /// Current placement of an object.
    pub fn placement(&self, id: ObjectId) -> Result<StackPlacement, StackError> {
        match self.slots.get(num::usize_from_u64(id.0)) {
            Some(&Some(p)) => Ok(p),
            _ => Err(StackError::UnknownObject(id)),
        }
    }

    /// Access the whole object; returns simulated nanoseconds (zero for
    /// an unknown object, mirroring the two-tier facade).
    pub fn access(&mut self, id: ObjectId, kind: AccessKind) -> f64 {
        let p = match self.placement(id) {
            Ok(p) => p,
            Err(_) => return 0.0,
        };
        self.access_placed(id, p, kind, p.bytes)
    }

    /// Access the first `bytes` of the object (clamped to its size).
    pub fn access_bytes(&mut self, id: ObjectId, kind: AccessKind, bytes: u64) -> f64 {
        let p = match self.placement(id) {
            Ok(p) => p,
            Err(_) => return 0.0,
        };
        self.access_placed(id, p, kind, bytes.min(p.bytes))
    }

    /// Access the whole object through a placement the caller already
    /// resolved via [`Self::placement`], skipping the second table probe
    /// on the request hot path.
    pub fn access_at(&mut self, id: ObjectId, p: StackPlacement, kind: AccessKind) -> f64 {
        self.access_placed(id, p, kind, p.bytes)
    }

    fn access_placed(
        &mut self,
        id: ObjectId,
        p: StackPlacement,
        kind: AccessKind,
        bytes: u64,
    ) -> f64 {
        let outcome = self.cache.access(id.0, bytes);
        if outcome.hit_bytes > 0 {
            self.cache_stats.hits += 1;
            self.cache_stats.hit_bytes += outcome.hit_bytes;
        }
        if outcome.miss_bytes > 0 {
            self.cache_stats.misses += 1;
            self.cache_stats.miss_bytes += outcome.miss_bytes;
        }
        let mut ns = self.spec.cache.hit_ns(outcome.hit_bytes);
        if outcome.miss_bytes > 0 {
            ns += self.devices[p.tier.index()].access_ns(kind, outcome.miss_bytes);
        }
        ns
    }

    /// A raw, uncached device access of `bytes` in `tier` — engine
    /// metadata traffic not tracked as an object.
    pub fn touch(&mut self, tier: TierId, kind: AccessKind, bytes: u64) -> f64 {
        self.devices[tier.index()].access_ns(kind, bytes)
    }

    /// `n` identical raw device accesses in one call, bit-identical to
    /// `n` separate [`Self::touch`] calls.
    pub fn touch_n(&mut self, tier: TierId, kind: AccessKind, bytes: u64, n: u64) -> f64 {
        self.devices[tier.index()].access_ns_n(kind, bytes, n)
    }

    /// Device statistics for one tier (the top tier for a foreign id —
    /// unreachable through this stack's own ids).
    pub fn tier_stats(&self, tier: TierId) -> &AccessStats {
        self.devices
            .get(tier.index())
            .unwrap_or(&self.devices[0])
            .stats()
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Used bytes in a tier (zero for an out-of-range id).
    pub fn used(&self, tier: TierId) -> u64 {
        self.devices.get(tier.index()).map_or(0, Device::used)
    }

    /// Free bytes in a tier under its current effective capacity.
    pub fn free_bytes(&self, tier: TierId) -> u64 {
        self.devices.get(tier.index()).map_or(0, Device::free)
    }

    /// Nominal capacity of a tier.
    pub fn capacity(&self, tier: TierId) -> u64 {
        self.devices.get(tier.index()).map_or(0, Device::capacity)
    }

    /// Capacity of a tier usable right now (nominal minus any active
    /// degradation shrink).
    pub fn effective_capacity(&self, tier: TierId) -> u64 {
        self.devices
            .get(tier.index())
            .map_or(0, Device::effective_capacity)
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.live
    }

    /// Live bytes per tier according to the object table.
    pub fn object_bytes_in(&self, tier: TierId) -> u64 {
        self.slots
            .iter()
            .flatten()
            .filter(|p| p.tier == tier)
            .map(|p| p.bytes)
            .sum()
    }

    /// Iterate over live objects and their placements in id order.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, StackPlacement)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.map(|p| (ObjectId(num::u64_from_usize(i)), p)))
    }

    /// Reset access statistics and drop all cached state — the moment
    /// "between runs" in the paper's methodology.
    pub fn reset_measurement_state(&mut self) {
        for d in &mut self.devices {
            d.reset_stats();
        }
        self.cache.clear();
        self.cache_stats = CacheStats::default();
    }
}

impl std::fmt::Debug for TierStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let used: Vec<u64> = self.devices.iter().map(Device::used).collect();
        f.debug_struct("TierStack")
            .field("tiers", &self.devices.len())
            .field("used", &used)
            .field("objects", &self.live)
            .field("cache_stats", &self.cache_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MemTier;
    use crate::system::HybridMemory;

    fn three_tier() -> StackSpec {
        StackSpec {
            tiers: vec![
                TierDef {
                    name: "dram".to_string(),
                    spec: TierSpec::paper_fastmem(),
                    capacity_bytes: 1 << 20,
                    price_per_gib: 6.0,
                },
                TierDef {
                    name: "optane".to_string(),
                    spec: TierSpec::optane_dc(),
                    capacity_bytes: 4 << 20,
                    price_per_gib: 2.0,
                },
                TierDef {
                    name: "ssd".to_string(),
                    spec: TierSpec {
                        read_latency_ns: 10_000.0,
                        bandwidth_bytes_per_ns: 3.2,
                        write_latency_factor: 0.5,
                        write_overlap_factor: 1.0,
                    },
                    capacity_bytes: 32 << 20,
                    price_per_gib: 0.1,
                },
            ],
            cache: CacheConfig::disabled(),
        }
    }

    #[test]
    fn validate_catches_bad_specs() {
        let mut s = three_tier();
        assert!(s.validate().is_ok());
        s.tiers[1].name = "DRAM".to_string();
        assert!(s.validate().unwrap_err().contains("duplicate"));
        let mut s = three_tier();
        s.tiers[2].capacity_bytes = 0;
        assert!(s.validate().unwrap_err().contains("zero capacity"));
        let mut s = three_tier();
        s.tiers.clear();
        assert!(s.validate().unwrap_err().contains("no tiers"));
        let mut s = three_tier();
        s.tiers[0].spec.bandwidth_bytes_per_ns = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn name_resolution_is_case_insensitive() {
        let s = three_tier();
        assert_eq!(s.tier_by_name("DRAM"), Some(TierId(0)));
        assert_eq!(s.tier_by_name("Optane"), Some(TierId(1)));
        assert_eq!(s.tier_by_name("ssd"), Some(TierId(2)));
        assert_eq!(s.tier_by_name("tape"), None);
    }

    #[test]
    fn hierarchy_cost_sums_tiers() {
        let s = three_tier();
        let expect = (1.0 / 1024.0) * 6.0 + (4.0 / 1024.0) * 2.0 + (32.0 / 1024.0) * 0.1;
        assert!((s.cost_usd() - expect).abs() < 1e-12);
    }

    #[test]
    fn alloc_access_migrate_across_three_tiers() {
        let mut stack = TierStack::new(three_tier()).unwrap();
        let id = stack.alloc(100_000, TierId(0)).unwrap();
        let t0 = stack.access(id, AccessKind::Read);
        stack.migrate(id, TierId(1)).unwrap();
        let t1 = stack.access(id, AccessKind::Read);
        stack.migrate(id, TierId(2)).unwrap();
        let t2 = stack.access(id, AccessKind::Read);
        assert!(t0 < t1 && t1 < t2, "{t0} {t1} {t2}");
        assert_eq!(stack.used(TierId(2)), 100_000);
        assert_eq!(stack.used(TierId(0)), 0);
        assert_eq!(stack.object_bytes_in(TierId(2)), 100_000);
    }

    #[test]
    fn unknown_tier_is_an_error_not_a_panic() {
        let mut stack = TierStack::new(three_tier()).unwrap();
        assert_eq!(
            stack.alloc(10, TierId(3)).unwrap_err(),
            StackError::UnknownTier(TierId(3))
        );
        let id = stack.alloc(10, TierId(0)).unwrap();
        assert_eq!(
            stack.migrate(id, TierId(9)).unwrap_err(),
            StackError::UnknownTier(TierId(9))
        );
    }

    #[test]
    fn capacity_is_enforced_per_tier() {
        let mut stack = TierStack::new(three_tier()).unwrap();
        stack.alloc(1 << 20, TierId(0)).unwrap();
        let err = stack.alloc(1, TierId(0)).unwrap_err();
        assert!(matches!(
            err,
            StackError::OutOfMemory {
                tier: TierId(0),
                ..
            }
        ));
        stack.alloc(1, TierId(1)).unwrap();
    }

    #[test]
    fn two_tier_stack_matches_hybrid_memory_bit_for_bit() {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 20;
        spec.slow_capacity = 1 << 20;
        let mut legacy = HybridMemory::new(spec.clone());
        let mut stack = TierStack::new(StackSpec::two_tier(&spec)).unwrap();

        let mut legacy_ids = Vec::new();
        let mut stack_ids = Vec::new();
        for i in 0..50u64 {
            let bytes = 256 + i * 97;
            let tier = if i % 3 == 0 {
                MemTier::Fast
            } else {
                MemTier::Slow
            };
            legacy_ids.push(legacy.alloc(bytes, tier).unwrap());
            stack_ids.push(stack.alloc(bytes, tier.id()).unwrap());
        }
        for round in 0..3 {
            for (i, (&l, &s)) in legacy_ids.iter().zip(&stack_ids).enumerate() {
                let kind = if (i + round) % 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let a = legacy.access(l, kind);
                let b = stack.access(s, kind);
                assert_eq!(a.to_bits(), b.to_bits(), "i={i} round={round}");
            }
        }
        let lm = legacy.migrate(legacy_ids[4], MemTier::Fast).unwrap();
        let sm = stack.migrate(stack_ids[4], TierId::FAST).unwrap();
        assert_eq!(lm.to_bits(), sm.to_bits());
        assert_eq!(legacy.cache_stats(), stack.cache_stats());
        assert_eq!(
            legacy.tier_stats(MemTier::Slow),
            stack.tier_stats(TierId::SLOW)
        );
        assert_eq!(legacy.used(MemTier::Fast), stack.used(TierId::FAST));
    }

    #[test]
    fn degradation_applies_per_tier_id() {
        use crate::degrade::{DegradationProfile, DegradationWindow};
        let mut stack = TierStack::new(three_tier()).unwrap();
        let id = stack.alloc(100_000, TierId(1)).unwrap();
        let nominal = stack.access(id, AccessKind::Read);
        stack.set_degradation(Some(DegradationProfile::new().with(DegradationWindow {
            latency_mult: 4.0,
            bandwidth_mult: 0.25,
            ..DegradationWindow::nominal(TierId(1), 1_000, 2_000)
        })));
        stack.set_now_ns(1_500);
        let degraded = stack.access(id, AccessKind::Read);
        assert!(degraded > 3.0 * nominal, "{degraded} vs {nominal}");
        // A different tier in the same window is untouched.
        let other = stack.alloc(100_000, TierId(2)).unwrap();
        let before = {
            stack.set_now_ns(5_000);
            stack.access(other, AccessKind::Read)
        };
        stack.set_now_ns(1_500);
        assert_eq!(stack.access(other, AccessKind::Read), before);
    }

    #[test]
    fn reset_measurement_state_clears_everything() {
        let mut stack = TierStack::new(three_tier()).unwrap();
        let id = stack.alloc(4096, TierId(0)).unwrap();
        stack.access(id, AccessKind::Read);
        stack.reset_measurement_state();
        assert_eq!(stack.tier_stats(TierId(0)).reads, 0);
        assert_eq!(stack.cache_stats(), CacheStats::default());
    }
}
