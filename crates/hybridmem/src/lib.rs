//! Hybrid memory system simulator for the Mnemo reproduction.
//!
//! The Mnemo paper evaluates on a dual-socket Xeon where one socket's DRAM
//! is throttled to emulate NVM (Table I: DRAM at 65.7 ns / 14.9 GB/s,
//! emulated NVM at 238.1 ns / 1.81 GB/s, 12 MB shared LLC). That hardware
//! is not available here, so this crate rebuilds the testbed as a
//! deterministic simulator:
//!
//! * [`spec`] — tier timing specifications, with the paper's Table I values
//!   as presets.
//! * [`cache`] — last-level-cache models: an object-granular LRU (fast,
//!   default) and a line-granular set-associative LRU (accurate, used for
//!   validation and the cache ablation bench), plus a pass-through.
//! * [`device`] — per-tier timing: `latency + bytes / bandwidth`.
//! * [`alloc`] — a segregated free-list object allocator that assigns
//!   stable simulated addresses per tier and tracks placement.
//! * [`system`] — the [`HybridMemory`] facade:
//!   allocate / free / migrate objects between tiers and charge simulated
//!   nanoseconds for reads and writes.
//! * [`stack`] — the N-tier generalization: an ordered [`TierStack`] of
//!   devices (DRAM + NVM + SSD-swap, any depth) with per-tier names,
//!   capacities and $/GiB prices, bit-identical to [`HybridMemory`] in
//!   its two-tier degenerate case.
//! * [`clock`] — simulated nanosecond clock and a seeded Gaussian noise
//!   model standing in for real-hardware measurement variability.
//! * [`degrade`] — time-varying per-tier degradation profiles (latency
//!   spikes, bandwidth throttles, capacity shrink), the device-side
//!   mechanism behind the `mnemo-faults` injection crate.
//! * [`stats`] — access counters and service-time histograms.
//!
//! The simulator charges time per *object access*, front-ended by the LLC
//! model: bytes that hit in cache are served at cache speed, bytes that
//! miss are served at the owning tier's speed. This is the same first-order
//! behaviour the paper's throttled socket realises physically, which is all
//! the downstream figures depend on (they compare *relative* service times
//! between tiers).
//!
//! # Example
//!
//! ```
//! use hybridmem::{HybridMemory, HybridSpec, MemTier, AccessKind};
//!
//! let mut mem = HybridMemory::new(HybridSpec::paper_testbed());
//! let obj = mem.alloc(100 * 1024, MemTier::Fast).unwrap();
//! let t_fast = mem.access(obj, AccessKind::Read);
//! mem.migrate(obj, MemTier::Slow).unwrap();
//! let t_slow = mem.access(obj, AccessKind::Read);
//! assert!(t_slow > t_fast, "SlowMem reads must be slower");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Byte-size/nanosecond arithmetic must not silently truncate or drop
// sign: casts go through the audited helpers in [`num`] (statically
// enforced as mnemo-lint R002; the clippy pair below backs it up at
// the compiler level for the float-domain casts R002 leaves to clippy).
#![warn(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
#![cfg_attr(test, allow(clippy::cast_possible_truncation, clippy::cast_sign_loss))]

pub mod alloc;
pub mod cache;
pub mod clock;
pub mod degrade;
pub mod dense;
pub mod det;
pub mod device;
pub mod num;
pub mod spec;
pub mod stack;
pub mod stats;
pub mod system;

pub use alloc::{AllocError, ObjectId};
pub use cache::{Cache, CacheConfig, CacheKind};
pub use clock::{NoiseModel, SimClock};
pub use degrade::{DegradationProfile, DegradationWindow, TierFactors};
pub use dense::DenseU64Map;
pub use det::{det_map, det_set, BuildDetHasher, DetHashMap, DetHashSet};
pub use device::{CapacityError, Device};
pub use spec::{AccessKind, HybridSpec, MemTier, TierId, TierSpec};
pub use stack::{StackError, StackPlacement, StackSpec, TierDef, TierStack};
pub use stats::{AccessStats, Histogram};
pub use system::HybridMemory;
