//! Simulated time and measurement noise.
//!
//! All timing in the simulator is *virtual*: device models return
//! nanosecond costs which a [`SimClock`] accumulates. The paper's curves
//! are means of repeated wall-clock measurements on real hardware; to keep
//! the estimate-accuracy evaluation (Fig. 8a) meaningful, a seeded
//! [`NoiseModel`] can perturb each service time multiplicatively, standing
//! in for run-to-run hardware variability.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A monotonically advancing virtual nanosecond clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimClock {
    now_ns: u128,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u128 {
        self.now_ns
    }

    /// Advance by a (fractional) nanosecond cost; negative or non-finite
    /// costs are rejected.
    pub fn advance(&mut self, ns: f64) {
        assert!(ns.is_finite() && ns >= 0.0, "invalid time advance: {ns}");
        self.now_ns += crate::num::u128_from_f64(ns);
    }

    /// Elapsed virtual seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Reset to time zero.
    pub fn reset(&mut self) {
        self.now_ns = 0;
    }
}

/// Configuration for multiplicative Gaussian measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative standard deviation (e.g. 0.02 = 2% jitter per request).
    pub relative_sigma: f64,
    /// RNG seed, so "measurements" are reproducible.
    pub seed: u64,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn disabled() -> NoiseConfig {
        NoiseConfig {
            relative_sigma: 0.0,
            seed: 0,
        }
    }

    /// The default measurement jitter used by the experiment harness: 2%
    /// relative sigma, which lands the estimate error distribution in the
    /// sub-percent band the paper reports.
    pub fn default_jitter(seed: u64) -> NoiseConfig {
        NoiseConfig {
            relative_sigma: 0.02,
            seed,
        }
    }
}

/// Number of perturbation factors generated per table refill. Must be
/// even so Box–Muller cos/sin pairs never split across refills — that
/// keeps the factor stream identical to the old draw-per-request model
/// with its cached spare variate.
const NOISE_CHUNK: usize = 4096;

/// Seeded multiplicative Gaussian noise source.
///
/// Perturbation factors `max(0, 1 + sigma * N(0,1))` are precomputed in
/// chunks (ROADMAP item 3: the per-request Box–Muller draw — two
/// uniforms, `ln`, `sqrt`, `sin`, `cos` — was the largest remaining
/// per-request cost). The refill consumes the RNG in exactly the same
/// order as the old per-request path, so the factor stream — and every
/// golden output downstream — is bit-identical; only the per-request
/// work drops to a table load and one multiply.
#[derive(Debug)]
pub struct NoiseModel {
    sigma: f64,
    rng: StdRng,
    /// Precomputed perturbation factors, consumed front to back.
    factors: Vec<f64>,
    /// Index of the next unconsumed factor.
    next: usize,
}

impl NoiseModel {
    /// Build from a config.
    pub fn new(config: NoiseConfig) -> NoiseModel {
        NoiseModel {
            sigma: config.relative_sigma,
            rng: StdRng::seed_from_u64(config.seed),
            factors: Vec::new(),
            next: 0,
        }
    }

    /// A noiseless model.
    pub fn disabled() -> NoiseModel {
        NoiseModel::new(NoiseConfig::disabled())
    }

    /// Refill the factor table via Box–Muller (rand's core crate has no
    /// normal distribution; `rand_distr` is outside the allowed set).
    /// Draw order matches the old per-request implementation: each pass
    /// draws `(u1, u2)`, retries while `u1` is subnormal, then yields
    /// the cos variate followed by the sin variate.
    fn refill(&mut self) {
        self.factors.clear();
        self.factors.reserve(NOISE_CHUNK);
        while self.factors.len() < NOISE_CHUNK {
            let u1: f64 = self.rng.random::<f64>();
            let u2: f64 = self.rng.random::<f64>();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.factors
                .push((1.0 + self.sigma * (r * theta.cos())).max(0.0));
            self.factors
                .push((1.0 + self.sigma * (r * theta.sin())).max(0.0));
        }
        self.next = 0;
    }

    /// Perturb a nanosecond cost: `ns * max(0, 1 + sigma * N(0,1))`.
    pub fn perturb(&mut self, ns: f64) -> f64 {
        if self.sigma == 0.0 {
            return ns;
        }
        if self.next == self.factors.len() {
            self.refill();
        }
        let factor = self.factors[self.next];
        self.next += 1;
        ns * factor
    }

    /// The configured relative sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_and_resets() {
        let mut c = SimClock::new();
        c.advance(100.4);
        c.advance(0.6);
        assert_eq!(c.now_ns(), 101);
        assert!((c.elapsed_secs() - 101e-9).abs() < 1e-18);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid time advance")]
    fn clock_rejects_negative() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    fn disabled_noise_is_identity() {
        let mut n = NoiseModel::disabled();
        for ns in [0.0, 1.0, 123.456, 1e9] {
            assert_eq!(n.perturb(ns), ns);
        }
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let mut a = NoiseModel::new(NoiseConfig::default_jitter(42));
        let mut b = NoiseModel::new(NoiseConfig::default_jitter(42));
        for _ in 0..100 {
            assert_eq!(a.perturb(1000.0), b.perturb(1000.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::new(NoiseConfig::default_jitter(1));
        let mut b = NoiseModel::new(NoiseConfig::default_jitter(2));
        let xa: Vec<f64> = (0..10).map(|_| a.perturb(1000.0)).collect();
        let xb: Vec<f64> = (0..10).map(|_| b.perturb(1000.0)).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn table_stream_matches_per_request_box_muller() {
        // Reference: the pre-table implementation — one Box–Muller pair
        // per two perturbs, with the sin variate cached as a spare.
        struct Reference {
            sigma: f64,
            rng: StdRng,
            spare: Option<f64>,
        }
        impl Reference {
            fn perturb(&mut self, ns: f64) -> f64 {
                let z = if let Some(z) = self.spare.take() {
                    z
                } else {
                    loop {
                        let u1: f64 = self.rng.random::<f64>();
                        let u2: f64 = self.rng.random::<f64>();
                        if u1 <= f64::MIN_POSITIVE {
                            continue;
                        }
                        let r = (-2.0 * u1.ln()).sqrt();
                        let theta = 2.0 * std::f64::consts::PI * u2;
                        self.spare = Some(r * theta.sin());
                        break r * theta.cos();
                    }
                };
                ns * (1.0 + self.sigma * z).max(0.0)
            }
        }
        for seed in [0u64, 7, 1234] {
            let config = NoiseConfig::default_jitter(seed);
            let mut table = NoiseModel::new(config);
            let mut reference = Reference {
                sigma: config.relative_sigma,
                rng: StdRng::seed_from_u64(seed),
                spare: None,
            };
            // Cross more than one refill boundary (chunk = 4096).
            for i in 0..10_000 {
                let ns = 100.0 + i as f64;
                assert_eq!(
                    table.perturb(ns).to_bits(),
                    reference.perturb(ns).to_bits(),
                    "seed={seed} i={i}"
                );
            }
        }
    }

    #[test]
    fn noise_mean_is_close_to_identity_and_never_negative() {
        let mut n = NoiseModel::new(NoiseConfig {
            relative_sigma: 0.05,
            seed: 7,
        });
        let samples: Vec<f64> = (0..20_000).map(|_| n.perturb(1000.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1000.0).abs() < 5.0, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
        // And the spread matches the configured sigma roughly.
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let sd = var.sqrt();
        assert!((sd - 50.0).abs() < 5.0, "sd {sd}");
    }
}
