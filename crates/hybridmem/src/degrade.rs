//! Time-varying device degradation profiles.
//!
//! Real hybrid memory misbehaves: NVM latency and bandwidth drift with
//! wear and contention, and emulated-NVM testbeds exhibit transient
//! throttling artifacts. A [`DegradationProfile`] describes that
//! misbehaviour as a set of half-open sim-time windows, each scaling one
//! tier's latency, throttling its bandwidth, or shrinking its usable
//! capacity. Devices consult the profile on every access charge and
//! reservation at their currently-set sim time, so degradation is a pure
//! function of `(tier, now_ns)` — no wall clock, no hidden state — which
//! keeps faulted runs byte-identical across worker counts.
//!
//! Profiles are usually compiled from a seeded `FaultPlan` (the
//! `mnemo-faults` crate); this module only defines the mechanism the
//! devices consume.

use crate::spec::TierId;

/// Multiplicative degradation in effect at one instant for one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierFactors {
    /// Multiplier on the latency component of every access (>= 1 slows).
    pub latency_mult: f64,
    /// Multiplier on effective bandwidth (in `(0, 1]`; smaller throttles
    /// harder). The transfer component of an access is divided by this.
    pub bandwidth_mult: f64,
    /// Bytes removed from the tier's usable capacity (wear-out or
    /// reservation loss). Existing reservations are never revoked; only
    /// new reservations see the reduced ceiling.
    pub capacity_shrink: u64,
}

impl TierFactors {
    /// No degradation at all.
    pub const NOMINAL: TierFactors = TierFactors {
        latency_mult: 1.0,
        bandwidth_mult: 1.0,
        capacity_shrink: 0,
    };

    /// Whether these factors change anything.
    pub fn is_nominal(&self) -> bool {
        self.latency_mult == 1.0 && self.bandwidth_mult == 1.0 && self.capacity_shrink == 0
    }
}

impl Default for TierFactors {
    fn default() -> TierFactors {
        TierFactors::NOMINAL
    }
}

/// One degradation window on one tier, active over `[start_ns, end_ns)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationWindow {
    /// Tier the window degrades (stack index; [`TierId::FAST`] /
    /// [`TierId::SLOW`] for the legacy two-tier pair).
    pub tier: TierId,
    /// Window start (inclusive), in simulated nanoseconds.
    pub start_ns: u128,
    /// Window end (exclusive); `u128::MAX` for an open-ended window.
    pub end_ns: u128,
    /// Latency multiplier while active (must be >= 1).
    pub latency_mult: f64,
    /// Bandwidth multiplier while active (must be in `(0, 1]`).
    pub bandwidth_mult: f64,
    /// Capacity shrink in bytes while active.
    pub capacity_shrink: u64,
}

impl DegradationWindow {
    /// A window that changes nothing but timing bounds — useful as a
    /// starting point for builders.
    pub fn nominal(tier: impl Into<TierId>, start_ns: u128, end_ns: u128) -> DegradationWindow {
        DegradationWindow {
            tier: tier.into(),
            start_ns,
            end_ns,
            latency_mult: 1.0,
            bandwidth_mult: 1.0,
            capacity_shrink: 0,
        }
    }

    /// Whether the window covers `now_ns`.
    pub fn active_at(&self, now_ns: u128) -> bool {
        self.start_ns <= now_ns && now_ns < self.end_ns
    }
}

/// A set of degradation windows consulted by the devices.
///
/// Overlapping windows compose: latency and bandwidth multipliers
/// multiply, capacity shrinks add (saturating). Composition is
/// order-independent, so profiles built from differently-ordered event
/// lists behave identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationProfile {
    windows: Vec<DegradationWindow>,
}

impl DegradationProfile {
    /// An empty (fully nominal) profile.
    pub fn new() -> DegradationProfile {
        DegradationProfile::default()
    }

    /// Add a window. Panics on non-physical factors — a latency
    /// multiplier below 1 or a bandwidth multiplier outside `(0, 1]`
    /// would model a *faster* device, which is not a fault.
    pub fn push(&mut self, window: DegradationWindow) {
        assert!(
            window.latency_mult >= 1.0 && window.latency_mult.is_finite(),
            "latency multiplier must be >= 1, got {}",
            window.latency_mult
        );
        assert!(
            window.bandwidth_mult > 0.0 && window.bandwidth_mult <= 1.0,
            "bandwidth multiplier must be in (0, 1], got {}",
            window.bandwidth_mult
        );
        assert!(
            window.start_ns < window.end_ns,
            "empty window [{}, {})",
            window.start_ns,
            window.end_ns
        );
        self.windows.push(window);
    }

    /// Builder-style [`Self::push`].
    pub fn with(mut self, window: DegradationWindow) -> DegradationProfile {
        self.push(window);
        self
    }

    /// The windows, in insertion order.
    pub fn windows(&self) -> &[DegradationWindow] {
        &self.windows
    }

    /// Whether the profile has no windows at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The composed factors in effect for `tier` at `now_ns`.
    pub fn factors_at(&self, tier: impl Into<TierId>, now_ns: u128) -> TierFactors {
        let tier = tier.into();
        let mut f = TierFactors::NOMINAL;
        for w in &self.windows {
            if w.tier == tier && w.active_at(now_ns) {
                f.latency_mult *= w.latency_mult;
                f.bandwidth_mult *= w.bandwidth_mult;
                f.capacity_shrink = f.capacity_shrink.saturating_add(w.capacity_shrink);
            }
        }
        f
    }

    /// Whether *any* tier is degraded at `now_ns` (epoch-level fault
    /// telemetry keys off this).
    pub fn is_active_at(&self, now_ns: u128) -> bool {
        self.windows.iter().any(|w| w.active_at(now_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MemTier;

    fn spike(tier: MemTier, start: u128, end: u128, lat: f64) -> DegradationWindow {
        DegradationWindow {
            latency_mult: lat,
            ..DegradationWindow::nominal(tier, start, end)
        }
    }

    #[test]
    fn empty_profile_is_nominal_everywhere() {
        let p = DegradationProfile::new();
        assert!(p.is_empty());
        for t in MemTier::ALL {
            for now in [0u128, 1, 1 << 40] {
                assert!(p.factors_at(t, now).is_nominal());
            }
        }
        assert!(!p.is_active_at(0));
    }

    #[test]
    fn window_bounds_are_half_open() {
        let p = DegradationProfile::new().with(spike(MemTier::Slow, 100, 200, 3.0));
        assert!(p.factors_at(MemTier::Slow, 99).is_nominal());
        assert_eq!(p.factors_at(MemTier::Slow, 100).latency_mult, 3.0);
        assert_eq!(p.factors_at(MemTier::Slow, 199).latency_mult, 3.0);
        assert!(p.factors_at(MemTier::Slow, 200).is_nominal());
        // The other tier is untouched.
        assert!(p.factors_at(MemTier::Fast, 150).is_nominal());
        assert!(p.is_active_at(150));
        assert!(!p.is_active_at(200));
    }

    #[test]
    fn overlapping_windows_compose_order_independently() {
        let a = spike(MemTier::Fast, 0, 100, 2.0);
        let mut b = spike(MemTier::Fast, 50, 150, 3.0);
        b.bandwidth_mult = 0.5;
        b.capacity_shrink = 1024;
        let ab = DegradationProfile::new().with(a).with(b);
        let ba = DegradationProfile::new().with(b).with(a);
        let f = ab.factors_at(MemTier::Fast, 75);
        assert_eq!(f.latency_mult, 6.0);
        assert_eq!(f.bandwidth_mult, 0.5);
        assert_eq!(f.capacity_shrink, 1024);
        assert_eq!(f, ba.factors_at(MemTier::Fast, 75));
    }

    #[test]
    #[should_panic(expected = "latency multiplier")]
    fn speedup_windows_are_rejected() {
        DegradationProfile::new().with(spike(MemTier::Fast, 0, 1, 0.5));
    }

    #[test]
    #[should_panic(expected = "bandwidth multiplier")]
    fn bandwidth_boost_rejected() {
        let mut w = DegradationWindow::nominal(MemTier::Fast, 0, 1);
        w.bandwidth_mult = 2.0;
        DegradationProfile::new().with(w);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_rejected() {
        DegradationProfile::new().with(DegradationWindow::nominal(MemTier::Fast, 5, 5));
    }
}
