//! The [`HybridMemory`] facade tying devices, cache and placement together.

use crate::alloc::{AllocError, ObjectId, ObjectTable, Placement};
use crate::cache::{Cache, CacheConfig};
use crate::degrade::DegradationProfile;
use crate::device::Device;
use crate::spec::{AccessKind, HybridSpec, MemTier};
use crate::stats::AccessStats;
use std::sync::Arc;

/// Cache-level counters for a whole system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses fully or partially served from cache.
    pub hits: u64,
    /// Accesses that had to touch a device.
    pub misses: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes served from devices.
    pub miss_bytes: u64,
}

impl CacheStats {
    /// The counters accumulated since `earlier`, an older snapshot of
    /// the same system's stats. Saturating, so a reset between the two
    /// snapshots yields zeros rather than wrapping.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            hit_bytes: self.hit_bytes.saturating_sub(earlier.hit_bytes),
            miss_bytes: self.miss_bytes.saturating_sub(earlier.miss_bytes),
        }
    }

    /// Byte-level hit ratio; 0 when nothing was accessed.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hit_bytes + self.miss_bytes;
        if total == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / total as f64
        }
    }
}

/// A simulated two-tier memory system with an LLC in front.
///
/// All methods that model memory traffic return the simulated cost in
/// nanoseconds; callers (the KV engines) accumulate those into request
/// service times.
pub struct HybridMemory {
    spec: HybridSpec,
    fast: Device,
    slow: Device,
    objects: ObjectTable,
    cache: Box<dyn Cache>,
    cache_stats: CacheStats,
    degradation: Option<Arc<DegradationProfile>>,
}

impl HybridMemory {
    /// Build a system from a spec (cache model chosen by the spec).
    pub fn new(spec: HybridSpec) -> HybridMemory {
        let cache = spec.cache.build();
        HybridMemory {
            fast: Device::new(MemTier::Fast, spec.fast, spec.fast_capacity),
            slow: Device::new(MemTier::Slow, spec.slow, spec.slow_capacity),
            objects: ObjectTable::new(),
            cache,
            cache_stats: CacheStats::default(),
            degradation: None,
            spec,
        }
    }

    /// Replace the cache model (clears cached state).
    pub fn set_cache(&mut self, config: CacheConfig) {
        self.spec.cache = config;
        self.cache = config.build();
        self.cache_stats = CacheStats::default();
    }

    /// Install (or clear) a time-varying degradation profile on both
    /// devices. Accesses and reservations consult it at the time last set
    /// via [`Self::set_now_ns`].
    pub fn set_degradation(&mut self, profile: Option<DegradationProfile>) {
        let shared = profile.map(Arc::new);
        self.fast.set_degradation(shared.clone());
        self.slow.set_degradation(shared.clone());
        self.degradation = shared;
    }

    /// The installed degradation profile, if any.
    pub fn degradation(&self) -> Option<&DegradationProfile> {
        self.degradation.as_deref()
    }

    /// Set the simulated time at which both devices evaluate their
    /// degradation profile. Drivers call this once per request with their
    /// `SimClock` reading; without a profile installed it is free of
    /// observable effect.
    pub fn set_now_ns(&mut self, now_ns: u128) {
        self.fast.set_now_ns(now_ns);
        self.slow.set_now_ns(now_ns);
    }

    /// Drop all cached state without touching device statistics — a cold
    /// restart after a crash, mid-measurement.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// The system specification.
    pub fn spec(&self) -> &HybridSpec {
        &self.spec
    }

    fn device(&mut self, tier: MemTier) -> &mut Device {
        match tier {
            MemTier::Fast => &mut self.fast,
            MemTier::Slow => &mut self.slow,
        }
    }

    /// Allocate an object of `bytes` in `tier`.
    pub fn alloc(&mut self, bytes: u64, tier: MemTier) -> Result<ObjectId, AllocError> {
        self.device(tier)
            .reserve(bytes)
            .map_err(|source| AllocError::OutOfMemory { tier, source })?;
        match self.objects.insert(bytes, tier) {
            Ok(id) => Ok(id),
            Err(e) => {
                self.device(tier).release(bytes);
                Err(e)
            }
        }
    }

    /// Free an object.
    pub fn free(&mut self, id: ObjectId) -> Result<(), AllocError> {
        let p = self.objects.remove(id)?;
        self.device(p.tier).release(p.bytes);
        self.cache.invalidate(id.0);
        Ok(())
    }

    /// Migrate an object to `target`, returning the simulated cost of the
    /// copy (read from source + write to destination). A no-op migration
    /// costs nothing.
    pub fn migrate(&mut self, id: ObjectId, target: MemTier) -> Result<f64, AllocError> {
        let current = self.objects.get(id)?;
        if current.tier == target {
            return Ok(0.0);
        }
        self.device(target)
            .reserve(current.bytes)
            .map_err(|source| AllocError::OutOfMemory {
                tier: target,
                source,
            })?;
        // `get(id)` above proved the object is live, so this cannot
        // fail; if it ever does, propagate rather than abort.
        let (old, _new) = self.objects.migrate(id, target)?;
        self.device(old.tier).release(old.bytes);
        self.cache.invalidate(id.0);
        let read = self.device(old.tier).access_ns(AccessKind::Read, old.bytes);
        let write = self.device(target).access_ns(AccessKind::Write, old.bytes);
        Ok(read + write)
    }

    /// Resize an object in place, returning the placement change. Frees
    /// and re-reserves capacity; fails (object unchanged) if the tier
    /// cannot hold the new size.
    pub fn resize(&mut self, id: ObjectId, bytes: u64) -> Result<Placement, AllocError> {
        let current = self.objects.get(id)?;
        if bytes > current.bytes {
            let grow = bytes - current.bytes;
            self.device(current.tier)
                .reserve(grow)
                .map_err(|source| AllocError::OutOfMemory {
                    tier: current.tier,
                    source,
                })?;
        } else {
            self.device(current.tier).release(current.bytes - bytes);
        }
        let (_, new) = self.objects.resize(id, bytes)?;
        self.cache.invalidate(id.0);
        Ok(new)
    }

    /// Current placement of an object.
    pub fn placement(&self, id: ObjectId) -> Result<Placement, AllocError> {
        self.objects.get(id)
    }

    /// Access the whole object; returns simulated nanoseconds.
    pub fn access(&mut self, id: ObjectId, kind: AccessKind) -> f64 {
        let p = match self.objects.get(id) {
            Ok(p) => p,
            Err(_) => return 0.0,
        };
        self.access_placed(id, p, kind, p.bytes)
    }

    /// Access the first `bytes` of the object (clamped to its size).
    pub fn access_bytes(&mut self, id: ObjectId, kind: AccessKind, bytes: u64) -> f64 {
        let p = match self.objects.get(id) {
            Ok(p) => p,
            Err(_) => return 0.0,
        };
        self.access_placed(id, p, kind, bytes.min(p.bytes))
    }

    fn access_placed(&mut self, id: ObjectId, p: Placement, kind: AccessKind, bytes: u64) -> f64 {
        let outcome = self.cache.access(id.0, bytes);
        if outcome.hit_bytes > 0 {
            self.cache_stats.hits += 1;
            self.cache_stats.hit_bytes += outcome.hit_bytes;
        }
        if outcome.miss_bytes > 0 {
            self.cache_stats.misses += 1;
            self.cache_stats.miss_bytes += outcome.miss_bytes;
        }
        let mut ns = self.spec.cache.hit_ns(outcome.hit_bytes);
        if outcome.miss_bytes > 0 {
            ns += self.device(p.tier).access_ns(kind, outcome.miss_bytes);
        }
        ns
    }

    /// A raw, uncached device access of `bytes` in `tier` — models
    /// pointer-chasing engine metadata that lives alongside the data but
    /// is not tracked as an object (dict entries, slab headers, ...).
    pub fn touch(&mut self, tier: MemTier, kind: AccessKind, bytes: u64) -> f64 {
        self.device(tier).access_ns(kind, bytes)
    }

    /// `n` identical raw device accesses in one call. The charge is
    /// resolved once and accumulated, so the returned total and the
    /// device stats are bit-identical to `n` separate [`Self::touch`]
    /// calls — this is how engines batch their pointer-chase chains.
    pub fn touch_n(&mut self, tier: MemTier, kind: AccessKind, bytes: u64, n: u64) -> f64 {
        self.device(tier).access_ns_n(kind, bytes, n)
    }

    /// Access the whole object through a placement the caller already
    /// resolved via [`Self::placement`], skipping the second object-table
    /// probe on the request hot path. The placement must be current —
    /// callers use it immediately after the lookup, before any
    /// migrate/resize/free.
    pub fn access_at(&mut self, id: ObjectId, p: Placement, kind: AccessKind) -> f64 {
        self.access_placed(id, p, kind, p.bytes)
    }

    /// Device statistics for one tier.
    pub fn tier_stats(&self, tier: MemTier) -> &AccessStats {
        match tier {
            MemTier::Fast => self.fast.stats(),
            MemTier::Slow => self.slow.stats(),
        }
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Used bytes in a tier.
    pub fn used(&self, tier: MemTier) -> u64 {
        match tier {
            MemTier::Fast => self.fast.used(),
            MemTier::Slow => self.slow.used(),
        }
    }

    /// Free bytes in a tier.
    pub fn free_bytes(&self, tier: MemTier) -> u64 {
        match tier {
            MemTier::Fast => self.fast.free(),
            MemTier::Slow => self.slow.free(),
        }
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Live bytes per tier according to the object table (excludes
    /// engine-internal reservations).
    pub fn object_bytes_in(&self, tier: MemTier) -> u64 {
        self.objects.bytes_in(tier)
    }

    /// Iterate over live objects and their placements.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, Placement)> + '_ {
        self.objects.iter()
    }

    /// Reset access statistics and drop all cached state — the moment
    /// "between runs" in the paper's methodology.
    pub fn reset_measurement_state(&mut self) {
        self.fast.reset_stats();
        self.slow.reset_stats();
        self.cache.clear();
        self.cache_stats = CacheStats::default();
    }
}

impl std::fmt::Debug for HybridMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridMemory")
            .field("fast_used", &self.fast.used())
            .field("slow_used", &self.slow.used())
            .field("objects", &self.objects.len())
            .field("cache_stats", &self.cache_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 20;
        spec.slow_capacity = 1 << 20;
        spec
    }

    #[test]
    fn alloc_free_accounting() {
        let mut mem = HybridMemory::new(small_spec());
        let id = mem.alloc(1000, MemTier::Fast).unwrap();
        assert_eq!(mem.used(MemTier::Fast), 1000);
        assert_eq!(mem.object_count(), 1);
        mem.free(id).unwrap();
        assert_eq!(mem.used(MemTier::Fast), 0);
        assert_eq!(mem.object_count(), 0);
        assert_eq!(mem.free(id).unwrap_err(), AllocError::UnknownObject(id));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut mem = HybridMemory::new(small_spec());
        mem.alloc(1 << 20, MemTier::Fast).unwrap();
        let err = mem.alloc(1, MemTier::Fast).unwrap_err();
        assert!(matches!(
            err,
            AllocError::OutOfMemory {
                tier: MemTier::Fast,
                ..
            }
        ));
        // Slow tier unaffected.
        mem.alloc(1, MemTier::Slow).unwrap();
    }

    #[test]
    fn over_commit_surfaces_capacity_details() {
        use crate::device::CapacityError;
        let mut mem = HybridMemory::new(small_spec());
        mem.alloc((1 << 20) - 100, MemTier::Fast).unwrap();
        let err = mem.alloc(500, MemTier::Fast).unwrap_err();
        assert_eq!(
            err,
            AllocError::OutOfMemory {
                tier: MemTier::Fast,
                source: CapacityError::OutOfMemory {
                    requested: 500,
                    free: 100,
                },
            }
        );
        // The device-level cause is reachable through Error::source.
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_some());
    }

    #[test]
    fn degradation_profile_slows_accesses_in_window() {
        use crate::degrade::{DegradationProfile, DegradationWindow};
        let mut spec = small_spec();
        spec.cache = CacheConfig::disabled();
        let mut mem = HybridMemory::new(spec);
        let id = mem.alloc(100_000, MemTier::Slow).unwrap();
        let nominal = mem.access(id, AccessKind::Read);
        mem.set_degradation(Some(DegradationProfile::new().with(DegradationWindow {
            latency_mult: 4.0,
            bandwidth_mult: 0.25,
            ..DegradationWindow::nominal(MemTier::Slow, 1_000, 2_000)
        })));
        assert!(mem.degradation().is_some());
        mem.set_now_ns(500);
        assert_eq!(mem.access(id, AccessKind::Read), nominal);
        mem.set_now_ns(1_500);
        let degraded = mem.access(id, AccessKind::Read);
        assert!(degraded > 3.0 * nominal, "degraded {degraded} vs {nominal}");
        mem.set_now_ns(2_000);
        assert_eq!(mem.access(id, AccessKind::Read), nominal);
        mem.set_degradation(None);
        mem.set_now_ns(1_500);
        assert_eq!(mem.access(id, AccessKind::Read), nominal);
    }

    #[test]
    fn capacity_shrink_fails_allocations_during_window() {
        use crate::degrade::{DegradationProfile, DegradationWindow};
        let mut mem = HybridMemory::new(small_spec());
        mem.set_degradation(Some(DegradationProfile::new().with(DegradationWindow {
            capacity_shrink: 1 << 20,
            ..DegradationWindow::nominal(MemTier::Fast, 100, 200)
        })));
        mem.set_now_ns(150);
        let err = mem.alloc(1, MemTier::Fast).unwrap_err();
        assert!(matches!(
            err,
            AllocError::OutOfMemory {
                tier: MemTier::Fast,
                ..
            }
        ));
        // The window passes and the same allocation succeeds.
        mem.set_now_ns(200);
        mem.alloc(1, MemTier::Fast).unwrap();
    }

    #[test]
    fn slow_reads_cost_more_when_uncached() {
        let mut spec = small_spec();
        spec.cache = CacheConfig::disabled();
        let mut mem = HybridMemory::new(spec);
        let f = mem.alloc(100_000, MemTier::Fast).unwrap();
        let s = mem.alloc(100_000, MemTier::Slow).unwrap();
        let tf = mem.access(f, AccessKind::Read);
        let ts = mem.access(s, AccessKind::Read);
        assert!(ts > 5.0 * tf, "slow {ts} vs fast {tf}");
    }

    #[test]
    fn cached_rereads_are_cheap_and_tier_blind() {
        let mut mem = HybridMemory::new(small_spec());
        let s = mem.alloc(4096, MemTier::Slow).unwrap();
        let cold = mem.access(s, AccessKind::Read);
        let warm = mem.access(s, AccessKind::Read);
        assert!(warm < cold / 5.0, "cold {cold} warm {warm}");
        assert_eq!(mem.cache_stats().hits, 1);
        assert_eq!(mem.cache_stats().misses, 1);
    }

    #[test]
    fn migration_moves_bytes_and_invalidates_cache() {
        let mut mem = HybridMemory::new(small_spec());
        let id = mem.alloc(4096, MemTier::Slow).unwrap();
        mem.access(id, AccessKind::Read); // warm the cache
        let cost = mem.migrate(id, MemTier::Fast).unwrap();
        assert!(cost > 0.0);
        assert_eq!(mem.used(MemTier::Fast), 4096);
        assert_eq!(mem.used(MemTier::Slow), 0);
        // Cache was invalidated, so the next read misses (but in Fast now).
        let t = mem.access(id, AccessKind::Read);
        let warm = mem.access(id, AccessKind::Read);
        assert!(t > warm);
        // No-op migration is free.
        assert_eq!(mem.migrate(id, MemTier::Fast).unwrap(), 0.0);
    }

    #[test]
    fn migration_fails_when_target_full() {
        let mut mem = HybridMemory::new(small_spec());
        mem.alloc(1 << 20, MemTier::Fast).unwrap();
        let id = mem.alloc(4096, MemTier::Slow).unwrap();
        assert!(mem.migrate(id, MemTier::Fast).is_err());
        // Object still lives in Slow.
        assert_eq!(mem.placement(id).unwrap().tier, MemTier::Slow);
    }

    #[test]
    fn resize_updates_accounting() {
        let mut mem = HybridMemory::new(small_spec());
        let id = mem.alloc(1000, MemTier::Fast).unwrap();
        mem.resize(id, 5000).unwrap();
        assert_eq!(mem.used(MemTier::Fast), 5000);
        mem.resize(id, 100).unwrap();
        assert_eq!(mem.used(MemTier::Fast), 100);
    }

    #[test]
    fn partial_access_charges_less() {
        let mut spec = small_spec();
        spec.cache = CacheConfig::disabled();
        let mut mem = HybridMemory::new(spec);
        let id = mem.alloc(100_000, MemTier::Slow).unwrap();
        let full = mem.access(id, AccessKind::Read);
        let part = mem.access_bytes(id, AccessKind::Read, 1000);
        assert!(part < full / 10.0);
    }

    #[test]
    fn touch_charges_raw_device_time() {
        let mut mem = HybridMemory::new(small_spec());
        let tf = mem.touch(MemTier::Fast, AccessKind::Read, 64);
        let ts = mem.touch(MemTier::Slow, AccessKind::Read, 64);
        assert!(ts > 3.0 * tf);
        assert_eq!(mem.tier_stats(MemTier::Slow).reads, 1);
    }

    #[test]
    fn reset_measurement_state_clears_cache_and_stats() {
        let mut mem = HybridMemory::new(small_spec());
        let id = mem.alloc(4096, MemTier::Fast).unwrap();
        mem.access(id, AccessKind::Read);
        mem.access(id, AccessKind::Read);
        mem.reset_measurement_state();
        assert_eq!(mem.cache_stats(), CacheStats::default());
        assert_eq!(mem.tier_stats(MemTier::Fast).reads, 0);
        // First read after reset misses again.
        mem.access(id, AccessKind::Read);
        assert_eq!(mem.cache_stats().misses, 1);
    }

    #[test]
    fn access_unknown_object_is_zero_cost() {
        let mut mem = HybridMemory::new(small_spec());
        let id = mem.alloc(10, MemTier::Fast).unwrap();
        mem.free(id).unwrap();
        assert_eq!(mem.access(id, AccessKind::Read), 0.0);
    }

    #[test]
    fn cache_hit_ratio() {
        let mut mem = HybridMemory::new(small_spec());
        let id = mem.alloc(1024, MemTier::Fast).unwrap();
        mem.access(id, AccessKind::Read);
        mem.access(id, AccessKind::Read);
        assert!((mem.cache_stats().hit_ratio() - 0.5).abs() < 1e-12);
    }
}
