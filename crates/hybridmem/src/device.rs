//! Per-tier memory device: capacity accounting plus access timing.

use crate::spec::{AccessKind, MemTier, TierSpec};
use crate::stats::AccessStats;

/// One memory device (a NUMA node in the paper's testbed).
#[derive(Debug, Clone)]
pub struct Device {
    tier: MemTier,
    spec: TierSpec,
    capacity: u64,
    used: u64,
    stats: AccessStats,
}

/// Capacity errors raised by a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// The requested reservation exceeds free capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
    },
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} bytes, {free} free")
            }
        }
    }
}

impl std::error::Error for CapacityError {}

impl Device {
    /// Create a device of `capacity` bytes with the given timing.
    pub fn new(tier: MemTier, spec: TierSpec, capacity: u64) -> Device {
        Device {
            tier,
            spec,
            capacity,
            used: 0,
            stats: AccessStats::default(),
        }
    }

    /// Which tier this device implements.
    pub fn tier(&self) -> MemTier {
        self.tier
    }

    /// The timing specification.
    pub fn spec(&self) -> &TierSpec {
        self.spec_ref()
    }

    fn spec_ref(&self) -> &TierSpec {
        &self.spec
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Reserve `bytes`; fails when the device is full.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), CapacityError> {
        if bytes > self.free() {
            return Err(CapacityError::OutOfMemory {
                requested: bytes,
                free: self.free(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Release a prior reservation.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "releasing more than reserved");
        self.used = self.used.saturating_sub(bytes);
    }

    /// Nanoseconds to serve `bytes` from this device, recorded in stats.
    pub fn access_ns(&mut self, kind: AccessKind, bytes: u64) -> f64 {
        let ns = self.spec.access_ns(kind, bytes);
        self.stats.record(kind, bytes, ns);
        ns
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset statistics (capacity accounting is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(MemTier::Fast, TierSpec::paper_fastmem(), 1024)
    }

    #[test]
    fn reserve_and_release_track_usage() {
        let mut d = dev();
        d.reserve(1000).unwrap();
        assert_eq!(d.used(), 1000);
        assert_eq!(d.free(), 24);
        d.release(600);
        assert_eq!(d.free(), 624);
    }

    #[test]
    fn over_reserve_fails_without_side_effects() {
        let mut d = dev();
        d.reserve(1000).unwrap();
        let err = d.reserve(100).unwrap_err();
        assert_eq!(
            err,
            CapacityError::OutOfMemory {
                requested: 100,
                free: 24
            }
        );
        assert_eq!(d.used(), 1000, "failed reserve must not change usage");
    }

    #[test]
    fn access_records_stats() {
        let mut d = dev();
        let ns = d.access_ns(AccessKind::Read, 64);
        assert!(ns > 65.0);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().read_bytes, 64);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
    }
}
