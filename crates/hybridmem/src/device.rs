//! Per-tier memory device: capacity accounting plus access timing.

use crate::degrade::{DegradationProfile, TierFactors};
use crate::spec::{AccessKind, TierId, TierSpec};
use crate::stats::AccessStats;
use std::sync::Arc;

/// Precomputed per-kind charge coefficients: `latency_ns + bytes /
/// bandwidth` is the whole nominal charge, so the per-access dispatch
/// over [`TierSpec::access_ns`]'s write factors happens once at
/// construction instead of on every access.
#[derive(Debug, Clone, Copy)]
struct ChargeRow {
    /// Fixed latency term (read latency, or read latency times the
    /// write latency factor).
    latency_ns: f64,
    /// Effective transfer bandwidth (raw, or scaled by the write
    /// overlap factor) in bytes per nanosecond.
    bandwidth: f64,
}

impl ChargeRow {
    fn table(spec: &TierSpec) -> [ChargeRow; 2] {
        [
            ChargeRow {
                latency_ns: spec.read_latency_ns,
                bandwidth: spec.bandwidth_bytes_per_ns,
            },
            ChargeRow {
                // The same products `TierSpec::access_ns` computes per
                // write, hoisted: identical operations on identical
                // inputs, so the charges stay bit-identical.
                latency_ns: spec.read_latency_ns * spec.write_latency_factor,
                bandwidth: spec.bandwidth_bytes_per_ns * spec.write_overlap_factor,
            },
        ]
    }
}

/// One memory device (a NUMA node in the paper's testbed).
#[derive(Debug, Clone)]
pub struct Device {
    tier: TierId,
    spec: TierSpec,
    capacity: u64,
    used: u64,
    stats: AccessStats,
    /// Device-local view of simulated time, set by the driving server.
    now_ns: u128,
    /// Optional time-varying degradation, consulted on every access
    /// charge and reservation at `now_ns`.
    degradation: Option<Arc<DegradationProfile>>,
    /// Per-kind flattened charge table (see [`ChargeRow`]).
    charge: [ChargeRow; 2],
    /// Degradation factors in effect at `now_ns`, re-resolved only on
    /// [`Device::set_now_ns`]/[`Device::set_degradation`] boundaries so
    /// the access path never walks the profile's windows.
    active: Option<TierFactors>,
}

/// Capacity errors raised by a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// The requested reservation exceeds free capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
    },
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} bytes, {free} free")
            }
        }
    }
}

impl std::error::Error for CapacityError {}

impl Device {
    /// Create a device of `capacity` bytes with the given timing. The
    /// tier id keys degradation-profile lookups; legacy `MemTier` values
    /// convert implicitly.
    pub fn new(tier: impl Into<TierId>, spec: TierSpec, capacity: u64) -> Device {
        let charge = ChargeRow::table(&spec);
        Device {
            tier: tier.into(),
            spec,
            capacity,
            used: 0,
            stats: AccessStats::default(),
            now_ns: 0,
            degradation: None,
            charge,
            active: None,
        }
    }

    /// Install (or clear) a degradation profile. Shared via `Arc` so both
    /// devices of a system consult the same compiled plan.
    pub fn set_degradation(&mut self, profile: Option<Arc<DegradationProfile>>) {
        self.degradation = profile;
        self.refresh_active();
    }

    /// Advance the device's view of simulated time (monotonicity is the
    /// caller's concern; the profile lookup is a pure function of time).
    pub fn set_now_ns(&mut self, now_ns: u128) {
        self.now_ns = now_ns;
        self.refresh_active();
    }

    /// The device's current view of simulated time.
    pub fn now_ns(&self) -> u128 {
        self.now_ns
    }

    /// Re-resolve the degradation factors in effect at `now_ns`. Called
    /// only on time/profile boundaries, so the per-access path is a
    /// branch on a cached, almost-always-`None` option instead of a
    /// window walk.
    fn refresh_active(&mut self) {
        self.active = self.degradation.as_deref().and_then(|profile| {
            let f = profile.factors_at(self.tier, self.now_ns);
            if f.is_nominal() {
                None
            } else {
                Some(f)
            }
        });
    }

    /// The degradation factors in effect right now; `None` when nominal.
    fn active_factors(&self) -> Option<TierFactors> {
        self.active
    }

    /// Which tier this device implements.
    pub fn tier(&self) -> TierId {
        self.tier
    }

    /// The timing specification.
    pub fn spec(&self) -> &TierSpec {
        self.spec_ref()
    }

    fn spec_ref(&self) -> &TierSpec {
        &self.spec
    }

    /// Total nominal capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Capacity usable right now: nominal capacity minus any active
    /// degradation shrink. Existing reservations are never revoked — a
    /// shrink below `used` only blocks *new* reservations.
    pub fn effective_capacity(&self) -> u64 {
        let shrink = self
            .active_factors()
            .map(|f| f.capacity_shrink)
            .unwrap_or(0);
        self.capacity.saturating_sub(shrink)
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free under the current effective capacity.
    pub fn free(&self) -> u64 {
        self.effective_capacity().saturating_sub(self.used)
    }

    /// Reserve `bytes`; fails when the device is full.
    pub fn reserve(&mut self, bytes: u64) -> Result<(), CapacityError> {
        if bytes > self.free() {
            return Err(CapacityError::OutOfMemory {
                requested: bytes,
                free: self.free(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Release a prior reservation.
    pub fn release(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.used, "releasing more than reserved");
        self.used = self.used.saturating_sub(bytes);
    }

    /// The nanosecond charge for one access, without recording it. The
    /// flattened row reproduces `TierSpec::access_ns` exactly (same
    /// float operations on the same inputs), and the degraded split —
    /// latency multiplied, transfer divided — matches the window
    /// arithmetic bit for bit since `access_ns(kind, 0)` is the latency
    /// term itself.
    fn charge_ns(&self, kind: AccessKind, bytes: u64) -> f64 {
        let row = match kind {
            AccessKind::Read => self.charge[0],
            AccessKind::Write => self.charge[1],
        };
        let full = row.latency_ns + bytes as f64 / row.bandwidth;
        match self.active {
            Some(f) => row.latency_ns * f.latency_mult + (full - row.latency_ns) / f.bandwidth_mult,
            None => full,
        }
    }

    /// Nanoseconds to serve `bytes` from this device, recorded in stats.
    /// With an active degradation window the latency component is
    /// multiplied and the transfer component divided by the window's
    /// bandwidth factor; nominal accesses take the original single-call
    /// path so undegraded runs stay bit-identical to before.
    pub fn access_ns(&mut self, kind: AccessKind, bytes: u64) -> f64 {
        let ns = self.charge_ns(kind, bytes);
        self.stats.record(kind, bytes, ns);
        ns
    }

    /// Charge `n` identical accesses in one call, returning their summed
    /// cost. The per-access charge is resolved once and accumulated by
    /// repeated addition, so both the stats and the returned total are
    /// bit-identical to `n` separate [`Device::access_ns`] calls.
    pub fn access_ns_n(&mut self, kind: AccessKind, bytes: u64, n: u64) -> f64 {
        let ns = self.charge_ns(kind, bytes);
        self.stats.record_n(kind, bytes, ns, n);
        let mut total = 0.0;
        for _ in 0..n {
            total += ns;
        }
        total
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset statistics (capacity accounting is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MemTier;

    fn dev() -> Device {
        Device::new(MemTier::Fast, TierSpec::paper_fastmem(), 1024)
    }

    #[test]
    fn reserve_and_release_track_usage() {
        let mut d = dev();
        d.reserve(1000).unwrap();
        assert_eq!(d.used(), 1000);
        assert_eq!(d.free(), 24);
        d.release(600);
        assert_eq!(d.free(), 624);
    }

    #[test]
    fn over_reserve_fails_without_side_effects() {
        let mut d = dev();
        d.reserve(1000).unwrap();
        let err = d.reserve(100).unwrap_err();
        assert_eq!(
            err,
            CapacityError::OutOfMemory {
                requested: 100,
                free: 24
            }
        );
        assert_eq!(d.used(), 1000, "failed reserve must not change usage");
    }

    #[test]
    fn degradation_scales_latency_and_bandwidth() {
        use crate::degrade::{DegradationProfile, DegradationWindow};
        let mut d = dev();
        let nominal = d.access_ns(AccessKind::Read, 14_900);
        let profile = DegradationProfile::new().with(DegradationWindow {
            latency_mult: 2.0,
            bandwidth_mult: 0.5,
            ..DegradationWindow::nominal(MemTier::Fast, 1000, 2000)
        });
        d.set_degradation(Some(Arc::new(profile)));
        // Outside the window: unchanged (bit-identical path).
        assert_eq!(d.access_ns(AccessKind::Read, 14_900), nominal);
        d.set_now_ns(1500);
        let degraded = d.access_ns(AccessKind::Read, 14_900);
        // 65.7 * 2 + 1000 / 0.5 = 2131.4 vs nominal 1065.7.
        assert!(
            (degraded - (65.7 * 2.0 + 2000.0)).abs() < 1e-6,
            "{degraded}"
        );
        d.set_now_ns(2000);
        assert_eq!(d.access_ns(AccessKind::Read, 14_900), nominal);
    }

    #[test]
    fn capacity_shrink_blocks_new_reservations_only() {
        use crate::degrade::{DegradationProfile, DegradationWindow};
        let mut d = dev();
        d.reserve(1000).unwrap();
        let profile = DegradationProfile::new().with(DegradationWindow {
            capacity_shrink: 512,
            ..DegradationWindow::nominal(MemTier::Fast, 0, u128::MAX)
        });
        d.set_degradation(Some(Arc::new(profile)));
        // 1024 - 512 shrink leaves effective capacity below used: nothing
        // is revoked, but no new bytes fit.
        assert_eq!(d.effective_capacity(), 512);
        assert_eq!(d.used(), 1000);
        assert_eq!(d.free(), 0);
        assert!(d.reserve(1).is_err());
        d.release(600);
        // 512 effective - 400 used = 112 free again.
        assert_eq!(d.free(), 112);
        d.reserve(100).unwrap();
    }

    #[test]
    fn batched_access_is_bit_identical_to_n_singles() {
        use crate::degrade::{DegradationProfile, DegradationWindow};
        let mut singles = dev();
        let mut batched = dev();
        let profile = DegradationProfile::new().with(DegradationWindow {
            latency_mult: 1.7,
            bandwidth_mult: 0.3,
            ..DegradationWindow::nominal(MemTier::Fast, 0, 1000)
        });
        singles.set_degradation(Some(Arc::new(profile.clone())));
        batched.set_degradation(Some(Arc::new(profile)));
        for now in [500u128, 5000] {
            singles.set_now_ns(now);
            batched.set_now_ns(now);
            let mut sum = 0.0;
            for _ in 0..9 {
                sum += singles.access_ns(AccessKind::Read, 100);
            }
            let total = batched.access_ns_n(AccessKind::Read, 100, 9);
            assert_eq!(sum.to_bits(), total.to_bits(), "now={now}");
            assert_eq!(singles.stats(), batched.stats(), "now={now}");
            assert_eq!(
                singles.stats().read_ns.to_bits(),
                batched.stats().read_ns.to_bits()
            );
        }
    }

    #[test]
    fn access_records_stats() {
        let mut d = dev();
        let ns = d.access_ns(AccessKind::Read, 64);
        assert!(ns > 65.0);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().read_bytes, 64);
        d.reset_stats();
        assert_eq!(d.stats().reads, 0);
    }
}
