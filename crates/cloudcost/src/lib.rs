//! Cloud VM memory-cost substrate for the Mnemo reproduction.
//!
//! The Mnemo paper motivates hybrid-memory cost sizing by estimating what
//! fraction of a cloud VM's hourly price is attributable to memory (its
//! Fig. 1), using the methodology of Amur et al.: model every VM instance
//! price as
//!
//! ```text
//! VM cost = vCPU x C + GB x M
//! ```
//!
//! and solve for the per-vCPU rate `C` and the per-GB rate `M` with least
//! squares over a provider's whole instance catalogue. This crate provides:
//!
//! * [`catalog`] — an embedded November-2018 on-demand price catalogue for
//!   the three providers the paper samples (AWS ElastiCache, Google Compute
//!   Engine, Microsoft Azure), including the memory-optimized families the
//!   paper reports on (`cache.r5`, `n1-ultramem`/`n1-megamem`, `E`/`M`).
//! * [`regression`] — the closed-form two-variable least-squares solver and
//!   the per-instance memory-share computation behind Fig. 1.
//! * [`model`] — the hybrid memory cost-reduction model `R(p)` of Section II
//!   (Table II), which converts a FastMem:SlowMem capacity split into a
//!   fraction of the FastMem-only memory cost.
//! * [`planner`] — prices a recommended byte split as actual cloud
//!   instances (a DRAM VM + an NVM-carrier VM), closing the paper's
//!   "capacity sizings of VMs with DRAM and VMs with NVM" loop.
//!
//! # Quick example
//!
//! ```
//! use cloudcost::{catalog::Provider, regression::CostSplit, model::CostModel};
//!
//! // What share of an AWS memory-optimized instance's price is memory?
//! let split = CostSplit::fit(&Provider::aws().instances).unwrap();
//! let r5 = Provider::aws().memory_optimized();
//! let share = split.memory_share(&r5[0]);
//! assert!(share > 0.4 && share < 1.0);
//!
//! // And what does a 30:70 Fast:Slow split cost relative to Fast-only,
//! // with SlowMem at 0.2x the per-byte price (the paper's fixed p)?
//! let model = CostModel::new(0.2);
//! let r = model.reduction_for_ratio(0.3);
//! assert!((r - 0.44).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod model;
pub mod planner;
pub mod regression;

pub use catalog::{Instance, Provider, ProviderKind};
pub use model::{CostModel, CostPoint};
pub use planner::{plan, VmPlan};
pub use regression::CostSplit;
