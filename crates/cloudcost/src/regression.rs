//! Least-squares split of VM prices into per-vCPU and per-GB components.
//!
//! Following Amur et al. (SoCC '13), the paper models each instance price
//! as `price = vcpus * C + memory_gb * M` and solves the overdetermined
//! system across a provider's catalogue with ordinary least squares. With
//! only two unknowns the normal equations are a 2x2 system solved in closed
//! form — no linear-algebra dependency required.

use crate::catalog::Instance;

/// The fitted per-resource hourly rates for one provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSplit {
    /// Hourly cost of one vCPU, USD.
    pub per_vcpu: f64,
    /// Hourly cost of one GiB of memory, USD.
    pub per_gb: f64,
    /// Root-mean-square relative residual of the fit (diagnostic).
    pub rms_relative_error: f64,
}

/// Errors from fitting the cost split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two instances were supplied.
    TooFewInstances,
    /// The instance shapes are collinear (single fixed GiB:vCPU ratio), so
    /// the per-vCPU and per-GB rates cannot be separated.
    Degenerate,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewInstances => write!(f, "need at least two instances to fit"),
            FitError::Degenerate => {
                write!(
                    f,
                    "instance shapes are collinear; cannot separate vCPU and GB rates"
                )
            }
        }
    }
}

impl std::error::Error for FitError {}

impl CostSplit {
    /// Fit `price = vcpus*C + memory_gb*M` over `instances` with ordinary
    /// least squares (no intercept, as in the paper's equation).
    pub fn fit(instances: &[Instance]) -> Result<CostSplit, FitError> {
        if instances.len() < 2 {
            return Err(FitError::TooFewInstances);
        }
        // Normal equations for X = [vcpus, gb], y = price:
        //   [ Σv²  Σvg ] [C]   [ Σvy ]
        //   [ Σvg  Σg² ] [M] = [ Σgy ]
        let (mut svv, mut svg, mut sgg, mut svy, mut sgy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for i in instances {
            svv += i.vcpus * i.vcpus;
            svg += i.vcpus * i.memory_gb;
            sgg += i.memory_gb * i.memory_gb;
            svy += i.vcpus * i.hourly_usd;
            sgy += i.memory_gb * i.hourly_usd;
        }
        let det = svv * sgg - svg * svg;
        // Relative determinant threshold: the absolute determinant scales
        // with the magnitudes, so normalise before comparing.
        if det.abs() < 1e-9 * svv * sgg {
            return Err(FitError::Degenerate);
        }
        let per_vcpu = (svy * sgg - sgy * svg) / det;
        let per_gb = (sgy * svv - svy * svg) / det;

        let mut sq = 0.0;
        for i in instances {
            let pred = per_vcpu * i.vcpus + per_gb * i.memory_gb;
            let rel = (pred - i.hourly_usd) / i.hourly_usd;
            sq += rel * rel;
        }
        let rms_relative_error = (sq / instances.len() as f64).sqrt();

        Ok(CostSplit {
            per_vcpu,
            per_gb,
            rms_relative_error,
        })
    }

    /// Predicted hourly price of an instance under this split.
    pub fn predict(&self, instance: &Instance) -> f64 {
        self.per_vcpu * instance.vcpus + self.per_gb * instance.memory_gb
    }

    /// Fraction of the instance's *actual* hourly price attributable to
    /// memory — the quantity plotted in the paper's Fig. 1.
    pub fn memory_share(&self, instance: &Instance) -> f64 {
        (self.per_gb * instance.memory_gb) / instance.hourly_usd
    }

    /// Fraction of the *predicted* price attributable to memory. Less
    /// sensitive to per-instance pricing noise than [`Self::memory_share`].
    pub fn memory_share_of_predicted(&self, instance: &Instance) -> f64 {
        let pred = self.predict(instance);
        (self.per_gb * instance.memory_gb) / pred
    }
}

/// Fig. 1 row: memory share of cost for one memory-optimized instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryShareRow {
    /// Instance type name.
    pub instance: &'static str,
    /// Memory share of the actual hourly price, in [0, 1]-ish (can exceed
    /// 1 marginally if the fit over-attributes memory for an outlier).
    pub share: f64,
}

/// Compute the Fig. 1 series for a provider: fit the split over the whole
/// catalogue, then report the memory share of every memory-optimized
/// instance.
pub fn memory_share_series(instances: &[Instance]) -> Result<Vec<MemoryShareRow>, FitError> {
    let split = CostSplit::fit(instances)?;
    Ok(instances
        .iter()
        .filter(|i| i.memory_optimized)
        .map(|i| MemoryShareRow {
            instance: i.name,
            share: split.memory_share(i),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Provider, ProviderKind};

    fn synth(vcpus: f64, gb: f64, c: f64, m: f64) -> Instance {
        Instance {
            name: "synthetic",
            vcpus,
            memory_gb: gb,
            hourly_usd: vcpus * c + gb * m,
            memory_optimized: false,
        }
    }

    #[test]
    fn recovers_exact_rates_from_noiseless_data() {
        let (c, m) = (0.03, 0.006);
        let data = vec![
            synth(2.0, 8.0, c, m),
            synth(4.0, 32.0, c, m),
            synth(8.0, 16.0, c, m),
            synth(64.0, 1024.0, c, m),
        ];
        let fit = CostSplit::fit(&data).unwrap();
        assert!((fit.per_vcpu - c).abs() < 1e-10, "C={}", fit.per_vcpu);
        assert!((fit.per_gb - m).abs() < 1e-10, "M={}", fit.per_gb);
        assert!(fit.rms_relative_error < 1e-10);
    }

    #[test]
    fn collinear_shapes_are_rejected() {
        let (c, m) = (0.03, 0.006);
        // All instances share exactly 4 GiB per vCPU.
        let data = vec![
            synth(1.0, 4.0, c, m),
            synth(2.0, 8.0, c, m),
            synth(16.0, 64.0, c, m),
        ];
        assert_eq!(CostSplit::fit(&data).unwrap_err(), FitError::Degenerate);
    }

    #[test]
    fn too_few_instances_is_an_error() {
        assert_eq!(
            CostSplit::fit(&[synth(1.0, 4.0, 0.1, 0.01)]).unwrap_err(),
            FitError::TooFewInstances
        );
    }

    #[test]
    fn memory_share_matches_paper_band_for_all_providers() {
        // Section I: "the cost of memory approximately constitutes 60% to
        // 85% of the overall VM cost" for the memory-optimized instances.
        // Allow a modest margin around the band since the shares are
        // per-instance, not averaged.
        for kind in ProviderKind::ALL {
            let p = Provider::new(kind);
            let rows = memory_share_series(&p.instances).unwrap();
            assert!(!rows.is_empty());
            let avg: f64 = rows.iter().map(|r| r.share).sum::<f64>() / rows.len() as f64;
            assert!(
                (0.50..=0.95).contains(&avg),
                "{kind:?}: average memory share {avg:.3} outside sanity band"
            );
        }
    }

    #[test]
    fn fit_quality_is_good_on_real_catalogues() {
        for kind in ProviderKind::ALL {
            let p = Provider::new(kind);
            let fit = CostSplit::fit(&p.instances).unwrap();
            assert!(
                fit.rms_relative_error < 0.35,
                "{kind:?}: rms {:.3}",
                fit.rms_relative_error
            );
            assert!(fit.per_gb > 0.0, "{kind:?}: per-GB rate must be positive");
            assert!(
                fit.per_vcpu > 0.0,
                "{kind:?}: per-vCPU rate must be positive"
            );
        }
    }

    #[test]
    fn predicted_share_is_bounded() {
        let p = Provider::gcp();
        let fit = CostSplit::fit(&p.instances).unwrap();
        for i in &p.instances {
            let s = fit.memory_share_of_predicted(i);
            assert!((0.0..=1.0).contains(&s), "{}: {s}", i.name);
        }
    }
}
