//! The hybrid memory cost-reduction model of Section II (Table II).
//!
//! With a total dataset of `C` bytes split into `F` bytes of FastMem and
//! `S = C - F` bytes of SlowMem, and SlowMem priced at `p` times FastMem
//! per byte, the memory system costs
//!
//! ```text
//! R(p) = (F + (C - F) * p) / C,   0 < p < 1
//! ```
//!
//! of the FastMem-only configuration. `R` runs from `p` (everything in
//! SlowMem — the cheapest possible system) to `1` (everything in FastMem).
//! The paper fixes `p = 0.2` throughout, based on NVDIMM price projections.

use serde::{Deserialize, Serialize};

/// The paper's fixed SlowMem:FastMem per-byte price factor.
pub const DEFAULT_PRICE_FACTOR: f64 = 0.2;

/// Hybrid memory cost model parameterised by the price factor `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// SlowMem per-byte price as a fraction of FastMem per-byte price.
    pub price_factor: f64,
}

/// One point of a cost sweep: a capacity split and its relative cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostPoint {
    /// FastMem bytes.
    pub fast_bytes: u64,
    /// SlowMem bytes.
    pub slow_bytes: u64,
    /// Cost relative to FastMem-only (`R(p)`), in `[p, 1]`.
    pub reduction_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(DEFAULT_PRICE_FACTOR)
    }
}

impl CostModel {
    /// Create a model with the given price factor. Panics if `p` is not in
    /// `(0, 1)` — a SlowMem at least as expensive as FastMem makes the
    /// whole trade-off vacuous.
    pub fn new(price_factor: f64) -> Self {
        assert!(
            price_factor > 0.0 && price_factor < 1.0,
            "price factor must be in (0, 1), got {price_factor}"
        );
        CostModel { price_factor }
    }

    /// `R(p)` for an explicit byte split.
    pub fn reduction(&self, fast_bytes: u64, slow_bytes: u64) -> f64 {
        let total = fast_bytes + slow_bytes;
        if total == 0 {
            return 1.0;
        }
        let f = fast_bytes as f64;
        let c = total as f64;
        (f + (c - f) * self.price_factor) / c
    }

    /// `R(p)` for a FastMem capacity *ratio* in `[0, 1]`.
    pub fn reduction_for_ratio(&self, fast_ratio: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&fast_ratio),
            "ratio {fast_ratio} out of [0,1]"
        );
        fast_ratio + (1.0 - fast_ratio) * self.price_factor
    }

    /// Invert the model: which FastMem ratio yields a given relative cost?
    /// Returns `None` when `reduction` is outside the attainable `[p, 1]`.
    pub fn ratio_for_reduction(&self, reduction: f64) -> Option<f64> {
        if reduction < self.price_factor - 1e-12 || reduction > 1.0 + 1e-12 {
            return None;
        }
        let r = (reduction - self.price_factor) / (1.0 - self.price_factor);
        Some(r.clamp(0.0, 1.0))
    }

    /// The lowest attainable relative cost (everything in SlowMem).
    pub fn floor(&self) -> f64 {
        self.price_factor
    }

    /// Sweep the capacity split of a `total_bytes` dataset in `steps`
    /// evenly spaced FastMem ratios from 0 to 1 inclusive (Table II's
    /// best/in-between/worst rows are the ends plus the interior).
    pub fn sweep(&self, total_bytes: u64, steps: usize) -> Vec<CostPoint> {
        assert!(steps >= 2, "need at least the two extreme points");
        (0..steps)
            .map(|s| {
                let ratio = s as f64 / (steps - 1) as f64;
                let fast = (total_bytes as f64 * ratio).round() as u64;
                let fast = fast.min(total_bytes);
                CostPoint {
                    fast_bytes: fast,
                    slow_bytes: total_bytes - fast,
                    reduction_factor: self.reduction(fast, total_bytes - fast),
                }
            })
            .collect()
    }

    /// Table II of the paper: the three named baseline rows for a dataset
    /// of `total_bytes` with the in-between row at `fast_ratio`.
    pub fn table2(&self, total_bytes: u64, fast_ratio: f64) -> [(String, CostPoint); 3] {
        let mid_fast = (total_bytes as f64 * fast_ratio).round() as u64;
        let row = |fast: u64| CostPoint {
            fast_bytes: fast,
            slow_bytes: total_bytes - fast,
            reduction_factor: self.reduction(fast, total_bytes - fast),
        };
        [
            ("Best Case".to_string(), row(total_bytes)),
            ("In between".to_string(), row(mid_fast)),
            ("Worst Case".to_string(), row(0)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn extremes_match_table2() {
        let m = CostModel::default();
        // All FastMem: full cost. All SlowMem: cost factor p.
        assert!((m.reduction(100, 0) - 1.0).abs() < 1e-12);
        assert!((m.reduction(0, 100) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_example_trending() {
        // Section III: "sizing FastMem such that it only holds the hot
        // keys will reduce the system's memory cost to be only 36% of the
        // cost of using only FastMem" — with p=0.2 that corresponds to a
        // 20:80 Fast:Slow split.
        let m = CostModel::default();
        assert!((m.reduction_for_ratio(0.2) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn section5_worked_example() {
        // Section V-A quotes "70:30 FastMem:SlowMem (76% of FastMem-only
        // cost)", which R(0.2) reproduces exactly. The same passage quotes
        // "50:50 ... and only 52%", which is inconsistent with the paper's
        // own formula (50:50 gives 60%; 52% corresponds to a 40:60 split) —
        // we follow the formula.
        let m = CostModel::default();
        assert!((m.reduction_for_ratio(0.7) - 0.76).abs() < 1e-12);
        assert!((m.reduction_for_ratio(0.5) - 0.60).abs() < 1e-12);
        assert!((m.reduction_for_ratio(0.4) - 0.52).abs() < 1e-12);
    }

    #[test]
    fn empty_system_costs_full() {
        let m = CostModel::default();
        assert_eq!(m.reduction(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "price factor")]
    fn rejects_price_factor_of_one() {
        let _ = CostModel::new(1.0);
    }

    #[test]
    fn sweep_is_monotonic_and_bounded() {
        let m = CostModel::default();
        let pts = m.sweep(1 << 30, 11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].fast_bytes, 0);
        assert_eq!(pts[10].slow_bytes, 0);
        for w in pts.windows(2) {
            assert!(w[1].reduction_factor >= w[0].reduction_factor);
        }
    }

    #[test]
    fn table2_rows() {
        let m = CostModel::default();
        let rows = m.table2(1000, 0.2);
        assert_eq!(rows[0].1.reduction_factor, 1.0);
        assert!((rows[1].1.reduction_factor - 0.36).abs() < 1e-9);
        assert!((rows[2].1.reduction_factor - 0.2).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn reduction_always_in_band(p in 0.01f64..0.99, fast in 0u64..1_000_000, slow in 0u64..1_000_000) {
            prop_assume!(fast + slow > 0);
            let m = CostModel::new(p);
            let r = m.reduction(fast, slow);
            prop_assert!(r >= p - 1e-12 && r <= 1.0 + 1e-12);
        }

        #[test]
        fn ratio_roundtrips(p in 0.01f64..0.99, ratio in 0.0f64..=1.0) {
            let m = CostModel::new(p);
            let red = m.reduction_for_ratio(ratio);
            let back = m.ratio_for_reduction(red).unwrap();
            prop_assert!((back - ratio).abs() < 1e-9);
        }

        #[test]
        fn reduction_monotone_in_fast_share(p in 0.01f64..0.99, a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let m = CostModel::new(p);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.reduction_for_ratio(lo) <= m.reduction_for_ratio(hi) + 1e-12);
        }
    }
}
