//! VM planning: from a FastMem/SlowMem byte split to a cloud bill.
//!
//! The paper envisions Mnemo helping users "quickly understand what
//! capacity sizings of VMs with DRAM and VMs with NVM provide the best
//! tradeoffs". This module closes that loop: given the byte split a
//! consultation recommends, it prices the configuration against a
//! provider's catalogue — either as a pair of instances (a DRAM VM plus
//! an NVM-equipped VM, the deployment Google announced for Optane DC) or
//! against the fitted per-GB rate with the NVM price factor applied.

use crate::catalog::{Instance, Provider};
use crate::regression::CostSplit;
use serde::Serialize;

/// Bytes per GiB.
const GIB: f64 = (1u64 << 30) as f64;

/// A priced deployment plan for a hybrid capacity split.
#[derive(Debug, Clone, Serialize)]
pub struct VmPlan {
    /// Chosen DRAM-backed instance (smallest that fits the FastMem GiB).
    pub dram_instance: String,
    /// Chosen NVM-carrier instance (smallest that fits the SlowMem GiB;
    /// its memory is billed at the NVM price factor).
    pub nvm_instance: Option<String>,
    /// Hourly bill in USD.
    pub hourly_usd: f64,
    /// Hourly bill of the all-DRAM alternative in USD.
    pub dram_only_hourly_usd: f64,
}

impl VmPlan {
    /// Savings fraction vs the all-DRAM deployment.
    pub fn savings(&self) -> f64 {
        if self.dram_only_hourly_usd <= 0.0 {
            return 0.0;
        }
        1.0 - self.hourly_usd / self.dram_only_hourly_usd
    }
}

/// Planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// No catalogue instance is big enough for the requested capacity.
    NoInstanceFits {
        /// GiB requested.
        gib: f64,
        /// Largest instance available, GiB.
        largest: f64,
    },
    /// The catalogue could not be fitted (see [`CostSplit::fit`]).
    Fit(crate::regression::FitError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoInstanceFits { gib, largest } => {
                write!(
                    f,
                    "no instance fits {gib:.1} GiB (largest is {largest:.1} GiB)"
                )
            }
            PlanError::Fit(e) => write!(f, "catalogue fit failed: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// The smallest instance with at least `gib` of memory (ties broken by
/// price). Memory-optimized instances are preferred only through their
/// price; the whole catalogue competes.
pub fn smallest_fitting(provider: &Provider, gib: f64) -> Result<&Instance, PlanError> {
    provider
        .instances
        .iter()
        .filter(|i| i.memory_gb >= gib)
        .min_by(|a, b| a.hourly_usd.total_cmp(&b.hourly_usd))
        .ok_or_else(|| PlanError::NoInstanceFits {
            gib,
            largest: provider
                .instances
                .iter()
                .map(|i| i.memory_gb)
                .fold(0.0, f64::max),
        })
}

/// Price a FastMem/SlowMem byte split against a provider.
///
/// The DRAM side is billed as the smallest fitting instance at list
/// price. The NVM side is billed as the smallest fitting instance with
/// its *memory component re-priced* by `nvm_price_factor` (the paper's
/// `p`): NVM carriers keep the instance's vCPU cost but replace the
/// fitted per-GB DRAM rate with `p` times it. A zero-byte side
/// contributes nothing.
pub fn plan(
    provider: &Provider,
    fast_bytes: u64,
    slow_bytes: u64,
    nvm_price_factor: f64,
) -> Result<VmPlan, PlanError> {
    assert!(
        nvm_price_factor > 0.0 && nvm_price_factor < 1.0,
        "price factor must be in (0,1)"
    );
    let split = CostSplit::fit(&provider.instances).map_err(PlanError::Fit)?;
    let fast_gib = fast_bytes as f64 / GIB;
    let slow_gib = slow_bytes as f64 / GIB;
    let total_gib = fast_gib + slow_gib;

    let dram_only = smallest_fitting(provider, total_gib)?;
    let dram_only_hourly = dram_only.hourly_usd;

    let mut hourly = 0.0;
    let dram_instance = if fast_gib > 0.0 {
        let inst = smallest_fitting(provider, fast_gib)?;
        hourly += inst.hourly_usd;
        inst.name.to_string()
    } else {
        "(none)".to_string()
    };
    let nvm_instance = if slow_gib > 0.0 {
        let inst = smallest_fitting(provider, slow_gib)?;
        // Re-price the memory component at the NVM rate.
        let dram_memory_cost = split.per_gb * inst.memory_gb;
        let nvm_memory_cost = dram_memory_cost * nvm_price_factor;
        hourly += inst.hourly_usd - dram_memory_cost + nvm_memory_cost;
        Some(inst.name.to_string())
    } else {
        None
    };

    Ok(VmPlan {
        dram_instance,
        nvm_instance,
        hourly_usd: hourly,
        dram_only_hourly_usd: dram_only_hourly,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ProviderKind;

    #[test]
    fn smallest_fitting_picks_cheapest_adequate() {
        let p = Provider::gcp();
        let inst = smallest_fitting(&p, 1000.0).unwrap();
        // 1000 GiB needs megamem/ultramem; the cheapest fitting is
        // megamem-96 (1433 GiB, $10.67) over ultramem-80 ($12.61).
        assert_eq!(inst.name, "n1-megamem-96");
        let small = smallest_fitting(&p, 3.0).unwrap();
        assert_eq!(small.name, "n1-standard-1", "smallest cheap instance wins");
    }

    #[test]
    fn oversize_requests_error() {
        let p = Provider::aws();
        let err = smallest_fitting(&p, 100_000.0).unwrap_err();
        assert!(matches!(err, PlanError::NoInstanceFits { .. }));
    }

    #[test]
    fn hybrid_plan_beats_dram_only() {
        for kind in ProviderKind::ALL {
            let p = Provider::new(kind);
            // 20:80 split of a 256 GiB dataset (fits every catalogue).
            let fast = (256u64 << 30) / 5;
            let slow = (256u64 << 30) - fast;
            let plan = plan(&p, fast, slow, 0.2).unwrap();
            assert!(
                plan.hourly_usd < plan.dram_only_hourly_usd,
                "{kind:?}: hybrid {} vs dram {}",
                plan.hourly_usd,
                plan.dram_only_hourly_usd
            );
            assert!(
                plan.savings() > 0.15,
                "{kind:?}: savings {:.3}",
                plan.savings()
            );
            assert!(plan.nvm_instance.is_some());
        }
    }

    #[test]
    fn all_fast_plan_has_no_nvm_instance() {
        let p = Provider::gcp();
        let plan = plan(&p, 1 << 36, 0, 0.2).unwrap();
        assert!(plan.nvm_instance.is_none());
        assert!(plan.savings().abs() < 1e-9, "all-DRAM split saves nothing");
    }

    #[test]
    fn all_slow_plan_still_needs_a_dram_host() {
        // Degenerate all-slow split: no DRAM instance, one NVM carrier.
        let p = Provider::gcp();
        let plan = plan(&p, 0, 1 << 36, 0.2).unwrap();
        assert_eq!(plan.dram_instance, "(none)");
        assert!(plan.savings() > 0.3);
    }

    #[test]
    fn savings_shrink_as_the_fast_share_grows() {
        // (Instance-size granularity means even a 90:10 split can save a
        // bit — the single all-DRAM instance often overshoots the needed
        // capacity — but savings must still fall monotonically-ish with
        // the DRAM share.)
        let p = Provider::gcp();
        let total = 256u64 << 30;
        let at = |fast_share: f64| {
            let fast = (total as f64 * fast_share) as u64;
            plan(&p, fast, total - fast, 0.2).unwrap().savings()
        };
        assert!(at(0.2) > at(0.9), "20% fast saves more than 90% fast");
        assert!(at(0.9) >= -0.2, "granularity penalties stay bounded");
    }

    #[test]
    fn cheaper_nvm_saves_more() {
        let p = Provider::azure();
        let fast = (256u64 << 30) / 10;
        let slow = (256u64 << 30) - fast;
        let cheap = plan(&p, fast, slow, 0.15).unwrap();
        let pricey = plan(&p, fast, slow, 0.5).unwrap();
        assert!(cheap.hourly_usd < pricey.hourly_usd);
    }
}
