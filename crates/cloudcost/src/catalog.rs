//! Embedded November-2018 on-demand VM price catalogue.
//!
//! The Mnemo paper (Section I) estimates the memory share of VM cost for
//! select *Memory Optimized* instances across AWS, Google Cloud and
//! Microsoft Azure, by regressing over "all VM instances per cloud
//! provider". This module embeds the public on-demand price points the
//! paper's figure is built from (us-east / Nov 2018 list prices; hourly,
//! Linux, on-demand). Prices are constants of the reproduction — they do
//! not need network access and never change under test.

use serde::{Deserialize, Serialize};

/// One virtual machine instance type: its shape and hourly list price.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Instance {
    /// Instance type name as the provider lists it, e.g. `cache.r5.xlarge`.
    pub name: &'static str,
    /// Number of virtual CPUs.
    pub vcpus: f64,
    /// Memory capacity in GiB.
    pub memory_gb: f64,
    /// Hourly on-demand price in USD.
    pub hourly_usd: f64,
    /// Whether the provider markets this type as memory optimized.
    pub memory_optimized: bool,
}

impl Instance {
    /// GiB of memory per vCPU — the "shape" of the instance.
    pub fn gb_per_vcpu(&self) -> f64 {
        self.memory_gb / self.vcpus
    }
}

/// Which cloud provider a catalogue belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProviderKind {
    /// Amazon Web Services (ElastiCache node types).
    Aws,
    /// Google Compute Engine (n1 predefined + megamem/ultramem).
    Gcp,
    /// Microsoft Azure (Dv3/Ev3/M series).
    Azure,
}

impl ProviderKind {
    /// All providers in the paper's Fig. 1, in presentation order.
    pub const ALL: [ProviderKind; 3] = [ProviderKind::Aws, ProviderKind::Gcp, ProviderKind::Azure];

    /// Human-readable provider name.
    pub fn name(self) -> &'static str {
        match self {
            ProviderKind::Aws => "AWS ElastiCache",
            ProviderKind::Gcp => "Google Compute Engine",
            ProviderKind::Azure => "Microsoft Azure",
        }
    }
}

/// A provider's instance catalogue.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Provider {
    /// Which provider this is.
    pub kind: ProviderKind,
    /// Every instance type used in the regression.
    pub instances: Vec<Instance>,
}

impl Provider {
    /// Catalogue for a given provider kind.
    pub fn new(kind: ProviderKind) -> Self {
        match kind {
            ProviderKind::Aws => Self::aws(),
            ProviderKind::Gcp => Self::gcp(),
            ProviderKind::Azure => Self::azure(),
        }
    }

    /// AWS ElastiCache node types (us-east-1, Nov 2018). The `cache.m5`
    /// general-purpose family varies the GiB:vCPU ratio against the
    /// memory-optimized `cache.r5` family, which is what makes the
    /// least-squares split identifiable.
    pub fn aws() -> Self {
        let i = |name, vcpus: f64, memory_gb: f64, hourly_usd: f64, mo| Instance {
            name,
            vcpus,
            memory_gb,
            hourly_usd,
            memory_optimized: mo,
        };
        Provider {
            kind: ProviderKind::Aws,
            instances: vec![
                i("cache.t2.medium", 2.0, 3.22, 0.068, false),
                i("cache.m5.large", 2.0, 6.38, 0.156, false),
                i("cache.m5.xlarge", 4.0, 12.93, 0.311, false),
                i("cache.m5.2xlarge", 8.0, 26.04, 0.622, false),
                i("cache.m5.4xlarge", 16.0, 52.26, 1.245, false),
                i("cache.m5.12xlarge", 48.0, 157.12, 3.734, false),
                i("cache.m5.24xlarge", 96.0, 314.32, 7.469, false),
                i("cache.r5.large", 2.0, 13.07, 0.216, true),
                i("cache.r5.xlarge", 4.0, 26.32, 0.431, true),
                i("cache.r5.2xlarge", 8.0, 52.82, 0.862, true),
                i("cache.r5.4xlarge", 16.0, 105.81, 1.723, true),
                i("cache.r5.12xlarge", 48.0, 317.77, 5.170, true),
                i("cache.r5.24xlarge", 96.0, 635.61, 10.340, true),
            ],
        }
    }

    /// Google Compute Engine predefined types (us-central1, Nov 2018),
    /// spanning standard (3.75 GiB/vCPU), highmem (6.5), megamem (~14.9)
    /// and ultramem (~24) shapes. The paper reports `n1-ultramem` and
    /// `n1-megamem`.
    pub fn gcp() -> Self {
        let i = |name, vcpus: f64, memory_gb: f64, hourly_usd: f64, mo| Instance {
            name,
            vcpus,
            memory_gb,
            hourly_usd,
            memory_optimized: mo,
        };
        Provider {
            kind: ProviderKind::Gcp,
            instances: vec![
                i("n1-standard-1", 1.0, 3.75, 0.0475, false),
                i("n1-standard-4", 4.0, 15.0, 0.1900, false),
                i("n1-standard-16", 16.0, 60.0, 0.7600, false),
                i("n1-standard-64", 64.0, 240.0, 3.0400, false),
                i("n1-standard-96", 96.0, 360.0, 4.5600, false),
                i("n1-highmem-2", 2.0, 13.0, 0.1184, false),
                i("n1-highmem-8", 8.0, 52.0, 0.4736, false),
                i("n1-highmem-32", 32.0, 208.0, 1.8944, false),
                i("n1-highmem-96", 96.0, 624.0, 5.6832, false),
                i("n1-megamem-96", 96.0, 1433.6, 10.6740, true),
                i("n1-ultramem-40", 40.0, 961.0, 6.3039, true),
                i("n1-ultramem-80", 80.0, 1922.0, 12.6078, true),
                i("n1-ultramem-160", 160.0, 3844.0, 25.2156, true),
            ],
        }
    }

    /// Microsoft Azure Linux VM types (East US, Nov 2018): Dv3 general
    /// purpose, Ev3 memory optimized and the Extreme-memory M series the
    /// paper reports on.
    pub fn azure() -> Self {
        let i = |name, vcpus: f64, memory_gb: f64, hourly_usd: f64, mo| Instance {
            name,
            vcpus,
            memory_gb,
            hourly_usd,
            memory_optimized: mo,
        };
        Provider {
            kind: ProviderKind::Azure,
            instances: vec![
                i("D2s v3", 2.0, 8.0, 0.096, false),
                i("D4s v3", 4.0, 16.0, 0.192, false),
                i("D8s v3", 8.0, 32.0, 0.384, false),
                i("D16s v3", 16.0, 64.0, 0.768, false),
                i("D32s v3", 32.0, 128.0, 1.536, false),
                i("D64s v3", 64.0, 256.0, 3.072, false),
                i("E2s v3", 2.0, 16.0, 0.126, true),
                i("E8s v3", 8.0, 64.0, 0.504, true),
                i("E32s v3", 32.0, 256.0, 2.016, true),
                i("E64s v3", 64.0, 432.0, 3.629, true),
                i("M64s", 64.0, 1024.0, 6.669, true),
                i("M64ms", 64.0, 1792.0, 10.337, true),
                i("M128s", 128.0, 2048.0, 13.338, true),
                i("M128ms", 128.0, 3892.0, 26.688, true),
            ],
        }
    }

    /// The memory-optimized subset — the instances Fig. 1 reports.
    pub fn memory_optimized(&self) -> Vec<Instance> {
        self.instances
            .iter()
            .filter(|i| i.memory_optimized)
            .cloned()
            .collect()
    }

    /// Look an instance up by name.
    pub fn instance(&self, name: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogues_are_nonempty_and_sane() {
        for kind in ProviderKind::ALL {
            let p = Provider::new(kind);
            assert!(p.instances.len() >= 10, "{kind:?} too small");
            for i in &p.instances {
                assert!(i.vcpus > 0.0, "{}: vcpus", i.name);
                assert!(i.memory_gb > 0.0, "{}: memory", i.name);
                assert!(i.hourly_usd > 0.0, "{}: price", i.name);
            }
        }
    }

    #[test]
    fn each_provider_has_memory_optimized_instances() {
        for kind in ProviderKind::ALL {
            let p = Provider::new(kind);
            assert!(!p.memory_optimized().is_empty());
        }
    }

    #[test]
    fn memory_optimized_instances_have_fatter_shapes() {
        // Memory-optimized families must carry more GiB per vCPU than the
        // general-purpose ones, otherwise the regression has nothing to
        // tease apart.
        for kind in ProviderKind::ALL {
            let p = Provider::new(kind);
            let avg = |mo: bool| {
                let xs: Vec<f64> = p
                    .instances
                    .iter()
                    .filter(|i| i.memory_optimized == mo)
                    .map(Instance::gb_per_vcpu)
                    .collect();
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            assert!(avg(true) > avg(false), "{kind:?}");
        }
    }

    #[test]
    fn price_scales_roughly_linearly_within_a_family() {
        let aws = Provider::aws();
        let large = aws.instance("cache.r5.large").unwrap();
        let xl24 = aws.instance("cache.r5.24xlarge").unwrap();
        let per_vcpu_small = large.hourly_usd / large.vcpus;
        let per_vcpu_big = xl24.hourly_usd / xl24.vcpus;
        let ratio = per_vcpu_big / per_vcpu_small;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lookup_by_name() {
        let gcp = Provider::gcp();
        assert!(gcp.instance("n1-ultramem-160").is_some());
        assert!(gcp.instance("does-not-exist").is_none());
    }
}
