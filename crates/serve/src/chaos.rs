//! Deterministic kill/restart chaos harness for the durable daemon.
//!
//! The harness drives a replay input through a journaled session
//! exactly the way the socket loop would (write-ahead append, apply,
//! periodic watermarked dump), kills the session at seeded event
//! indices — including a mid-dump point (partial temp file, no rename)
//! and a mid-segment-rotation point — applies the active storage fault
//! effects to the persisted bytes (`torn_write` discards unsynced tail
//! bytes, `bit_flip` flips one persisted journal bit, `dump_corrupt`
//! flips one state-dump bit), restarts via the same
//! [`crate::recover_engine`] path the daemon uses, and resends the
//! input from the recovered sequence (an at-least-once client).
//!
//! Convergence is exact, not approximate: the state dump covers
//! sequences `1..=w`, the journal tail replays `w+1..=s`, and the
//! resend covers `s+1..=n`, so every request is applied exactly once in
//! order regardless of where the kills landed or which bytes were lost.
//! [`run_chaos`] byte-diffs the final transcript and final state dump
//! against an uninterrupted golden run of the same input and reports
//! any divergence — the CI chaos-smoke job gates on that report.

use crate::engine::{ServeConfig, ServeEngine};
use crate::journal::{self, JournalConfig, JournalWriter};
use crate::proto::{self, Request, ServeError};
use crate::{recover_engine, state, JournalPolicy, StatePolicy};
use mnemo_faults::StorageFaults;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The harness's own seeded draws (kill indices, crash-effect byte
/// positions). Independent of the fault plan seed so the same fault
/// plan can be exercised under many kill schedules.
#[derive(Debug, Clone, Copy)]
struct ChaosRng {
    seed: u64,
}

impl ChaosRng {
    fn draw(&self, salt: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        splitmix64(self.seed ^ splitmix64(salt)) % bound
    }
}

/// Chaos harness configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the kill schedule and crash-effect draws.
    pub seed: u64,
    /// Kill count (the mid-dump and mid-rotation points count toward
    /// it; at least those two always run when the input produces them).
    pub kills: usize,
    /// Dump every N scheduler ticks.
    pub every_ticks: u64,
    /// Journal sizing; the default uses small segments and a relaxed
    /// sync cadence so rotations and torn writes actually happen within
    /// test-sized inputs.
    pub journal: JournalConfig,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            kills: 8,
            every_ticks: 1,
            journal: JournalConfig {
                segment_bytes: 8 * 1024,
                sync_every: 4,
            },
        }
    }
}

/// How a scheduled kill strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillKind {
    /// Kill right after the event is applied.
    Seeded,
    /// Kill halfway through the state dump that event triggers (the
    /// temp sibling holds a prefix, the rename never happens).
    MidDump,
    /// Kill right after the event whose append rotated the segment.
    MidRotation,
}

impl KillKind {
    fn name(&self) -> &'static str {
        match self {
            KillKind::Seeded => "seeded",
            KillKind::MidDump => "mid_dump",
            KillKind::MidRotation => "mid_rotation",
        }
    }
}

/// One kill and the recovery that followed it.
#[derive(Debug, Clone)]
pub struct KillReport {
    /// Input index the session was killed at.
    pub index: usize,
    /// How it struck.
    pub kind: KillKind,
    /// Input index the restarted session resumed from.
    pub resumed_at: usize,
    /// Journal records replayed during the restart.
    pub replayed: u64,
    /// Torn tail records truncated during the restart.
    pub truncated: u64,
    /// Journal segments quarantined during the restart.
    pub quarantined: u64,
    /// Whether the state dump was rejected as corrupt (degraded to a
    /// full journal replay).
    pub dump_corrupt: bool,
}

/// The harness verdict.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Durable requests driven through both runs.
    pub events: usize,
    /// Every kill, in execution order.
    pub kills: Vec<KillReport>,
    /// Final chaos transcript == golden transcript, byte for byte.
    pub transcript_identical: bool,
    /// Final chaos state dump == golden state dump, byte for byte.
    pub state_identical: bool,
    /// Quarantined segments counted across every restart.
    pub quarantined_total: u64,
    /// `*.quarantined` files actually present in the journal directory
    /// afterwards — must equal `quarantined_total` (no silent leaks).
    pub quarantine_files: u64,
    /// The golden transcript (for diffing on failure).
    pub golden_transcript: String,
    /// The chaos-run transcript.
    pub final_transcript: String,
}

impl ChaosReport {
    /// The gate the CLI and CI enforce: byte-identical convergence and
    /// fully accounted quarantines.
    pub fn converged(&self) -> bool {
        self.transcript_identical
            && self.state_identical
            && self.quarantine_files == self.quarantined_total
    }

    /// One deterministic JSON row summarising the run.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"v\":1,\"row\":\"chaos\",\"events\":{},\"restarts\":{},\"kills\":[",
            self.events,
            self.kills.len()
        );
        for (i, k) in self.kills.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                concat!(
                    "{{\"index\":{},\"kind\":\"{}\",\"resumed_at\":{},\"replayed\":{},",
                    "\"truncated\":{},\"quarantined\":{},\"dump_corrupt\":{}}}"
                ),
                k.index,
                k.kind.name(),
                k.resumed_at,
                k.replayed,
                k.truncated,
                k.quarantined,
                k.dump_corrupt,
            );
        }
        let _ = write!(
            out,
            concat!(
                "],\"transcript_identical\":{},\"state_identical\":{},",
                "\"quarantined_total\":{},\"quarantine_files\":{},\"converged\":{}}}"
            ),
            self.transcript_identical,
            self.state_identical,
            self.quarantined_total,
            self.quarantine_files,
            self.converged(),
        );
        out
    }
}

/// Parse the replay input down to its durable requests (ingest and
/// advise — the requests the daemon journals). `shutdown` truncates the
/// input; read-only commands are skipped.
fn durable_requests(input: &str) -> Result<Vec<String>, ServeError> {
    let mut requests = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match proto::parse_request(line, i + 1)? {
            Request::Ingest(_) | Request::Advise { .. } => requests.push(line.to_string()),
            Request::Shutdown => break,
            Request::Status | Request::Snapshot | Request::Follow => {}
        }
    }
    Ok(requests)
}

/// What one [`DurableSession::apply`] did.
struct Applied {
    rows: Vec<String>,
    rotated: bool,
    dumped: bool,
}

/// One daemon lifetime: engine + journal writer + dump policy, driving
/// the same write-ahead discipline as the socket loop. Input index `i`
/// maps to journal sequence `i + 1` — the session resumes appending
/// exactly where recovery left off, so resent requests take the same
/// sequence numbers they lost.
struct DurableSession {
    engine: ServeEngine,
    writer: JournalWriter,
    state: StatePolicy,
    last_dumped_tick: u64,
}

impl DurableSession {
    fn start(
        config: &ServeConfig,
        state: &StatePolicy,
    ) -> Result<(DurableSession, crate::Recovered), ServeError> {
        let mut engine = ServeEngine::new(config.clone())?;
        let mut recovered = recover_engine(&mut engine, state)?;
        let Some(writer) = recovered.writer.take() else {
            return Err(ServeError::Usage(
                "chaos sessions require a journal policy".into(),
            ));
        };
        let last_dumped_tick = engine.ticks();
        Ok((
            DurableSession {
                engine,
                writer,
                state: state.clone(),
                last_dumped_tick,
            },
            recovered,
        ))
    }

    /// The input index this session should (re)start applying from.
    fn resume_index(&self) -> usize {
        self.engine.journal_seq() as usize
    }

    /// Append, apply, and run the per-event dump check — the same order
    /// as the socket loop. `kill_mid_dump` turns a due dump into a
    /// simulated crash halfway through the atomic write.
    fn apply(
        &mut self,
        index: usize,
        line: &str,
        kill_mid_dump: bool,
    ) -> Result<Applied, ServeError> {
        let rotations_before = self.writer.stats().rotations;
        let seq = self.writer.append(self.engine.now_ns(), line)?;
        self.engine.set_journal_seq(seq);
        self.engine.note("serve.journal.appended", 1);
        let rows = match proto::parse_request(line, index + 1)? {
            Request::Ingest(event) => self.engine.ingest(event)?,
            Request::Advise { tenant } => vec![self.engine.advise_now(&tenant)],
            _ => Vec::new(),
        };
        let rotated = self.writer.stats().rotations > rotations_before;
        let mut dumped = false;
        let every = self.state.every_ticks.max(1);
        let ticks = self.engine.ticks();
        if ticks > self.last_dumped_tick && ticks % every == 0 {
            if let Some(path) = self.state.path.clone() {
                if kill_mid_dump {
                    // Die halfway through write_atomic: the temp
                    // sibling holds a prefix of the dump, the rename
                    // never happens, the previous dump stays intact.
                    let content = state::dump(&self.engine);
                    let mut tmp = path.as_os_str().to_owned();
                    tmp.push(".tmp");
                    let tmp = PathBuf::from(tmp);
                    std::fs::write(&tmp, &content.as_bytes()[..content.len() / 2]).map_err(
                        |e| ServeError::Io(format!("cannot write '{}': {e}", tmp.display())),
                    )?;
                } else if self.writer.sync(self.engine.now_ns())? {
                    state::write_atomic(&path, &state::dump(&self.engine))?;
                    self.last_dumped_tick = ticks;
                    dumped = true;
                } else {
                    self.engine.note("serve.state.dump_skipped", 1);
                }
            }
        }
        Ok(Applied {
            rows,
            rotated,
            dumped,
        })
    }

    /// End of input: final tick, then the final watermarked dump.
    fn finish(&mut self) -> Result<Vec<String>, ServeError> {
        let rows = self.engine.finish();
        if let Some(path) = self.state.path.clone() {
            if self.writer.sync(self.engine.now_ns())? {
                state::write_atomic(&path, &state::dump(&self.engine))?;
            } else {
                self.engine.note("serve.state.dump_skipped", 1);
            }
        }
        Ok(rows)
    }
}

/// A finished session chain: per-event transcript slots plus the golden
/// schedule anchors.
struct ChainOutcome {
    slots: Vec<Vec<String>>,
    kills: Vec<KillReport>,
    quarantined_total: u64,
    first_dump: Option<usize>,
    first_rotation: Option<usize>,
}

/// Simulate the storage faults active at crash time against the bytes
/// on disk. Pure process kills lose nothing (the page cache survives a
/// process); these effects model the power-loss cases.
fn apply_crash_effects(
    journal_dir: &Path,
    state_path: &Path,
    sync_point: (PathBuf, u64),
    now_ns: u128,
    faults: &StorageFaults,
    rng: ChaosRng,
    kill_ordinal: u64,
) -> Result<(), ServeError> {
    let salt = kill_ordinal.wrapping_mul(11_400_714_819_323_198_485);
    let io = |what: &str, p: &Path, e: std::io::Error| {
        ServeError::Io(format!("{what} '{}': {e}", p.display()))
    };
    if faults.torn_write_at(now_ns) {
        // Power loss: bytes past the last fsync may vanish. Keep a
        // seeded prefix of the unsynced tail (possibly none).
        let (tail, synced) = sync_point;
        if tail.exists() {
            let len = std::fs::metadata(&tail)
                .map_err(|e| io("cannot stat", &tail, e))?
                .len();
            if len > synced {
                let keep = synced + rng.draw(salt ^ 1, len - synced);
                let file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&tail)
                    .map_err(|e| io("cannot open", &tail, e))?;
                file.set_len(keep)
                    .map_err(|e| io("cannot truncate", &tail, e))?;
            }
        }
    }
    if faults.bit_flip_at(now_ns) {
        // Media corruption: flip one persisted journal bit, biased
        // toward non-tail segments so mid-journal quarantine (not just
        // tail truncation) gets exercised.
        let segments = journal::list_segments(journal_dir)?;
        if !segments.is_empty() {
            let candidates = if segments.len() > 1 {
                segments.len() - 1
            } else {
                1
            };
            let target = &segments[rng.draw(salt ^ 2, candidates as u64) as usize];
            let mut bytes = std::fs::read(target).map_err(|e| io("cannot read", target, e))?;
            if !bytes.is_empty() {
                let bit = rng.draw(salt ^ 3, bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                std::fs::write(target, &bytes).map_err(|e| io("cannot write", target, e))?;
            }
        }
    }
    if faults.dump_corrupt_at(now_ns) && state_path.exists() {
        let mut bytes = std::fs::read(state_path).map_err(|e| io("cannot read", state_path, e))?;
        if !bytes.is_empty() {
            let bit = rng.draw(salt ^ 4, bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            std::fs::write(state_path, &bytes).map_err(|e| io("cannot write", state_path, e))?;
        }
    }
    Ok(())
}

/// Drive `requests` through a chain of sessions in `dir`, killing per
/// `schedule` (empty = the uninterrupted golden run). Returns the
/// transcript slots, kill reports, and schedule anchors.
fn run_chain(
    requests: &[String],
    config: &ServeConfig,
    dir: &Path,
    chaos: &ChaosConfig,
    mut schedule: VecDeque<(usize, KillKind)>,
    rng: ChaosRng,
    faults: &StorageFaults,
) -> Result<ChainOutcome, ServeError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ServeError::Io(format!("cannot create '{}': {e}", dir.display())))?;
    let journal_dir = dir.join("journal");
    let state_path = dir.join("state.json");
    let policy = StatePolicy {
        path: Some(state_path.clone()),
        every_ticks: chaos.every_ticks,
        journal: Some(JournalPolicy {
            dir: journal_dir.clone(),
            config: chaos.journal,
        }),
    };
    let mut outcome = ChainOutcome {
        slots: vec![Vec::new(); requests.len() + 1],
        kills: Vec::new(),
        quarantined_total: 0,
        first_dump: None,
        first_rotation: None,
    };
    let (mut session, _) = DurableSession::start(config, &policy)?;
    loop {
        let mut struck: Option<(usize, KillKind)> = None;
        let start = session.resume_index().min(requests.len());
        for (index, request) in requests.iter().enumerate().skip(start) {
            let pending = schedule.front().copied().filter(|(k, _)| *k == index);
            let mid_dump = matches!(pending, Some((_, KillKind::MidDump)));
            let applied = session.apply(index, request, mid_dump)?;
            outcome.slots[index] = applied.rows;
            if applied.dumped && outcome.first_dump.is_none() {
                outcome.first_dump = Some(index);
            }
            if applied.rotated && outcome.first_rotation.is_none() {
                outcome.first_rotation = Some(index);
            }
            if pending.is_some() {
                schedule.pop_front();
                struck = pending;
                break;
            }
        }
        let Some((index, kind)) = struck else {
            outcome.slots[requests.len()] = session.finish()?;
            break;
        };
        // Kill: capture the durable frontier, drop the session (the
        // process dies — everything written survives, the faults below
        // decide what a power cut or bad media would have destroyed).
        let now_ns = session.engine.now_ns();
        let sync_point = session.writer.sync_point();
        drop(session);
        apply_crash_effects(
            &journal_dir,
            &state_path,
            sync_point,
            now_ns,
            faults,
            rng,
            outcome.kills.len() as u64 + 1,
        )?;
        let (next, recovered) = DurableSession::start(config, &policy)?;
        outcome.quarantined_total += recovered.quarantined;
        outcome.kills.push(KillReport {
            index,
            kind,
            resumed_at: next.resume_index(),
            replayed: recovered.replayed,
            truncated: recovered.truncated,
            quarantined: recovered.quarantined,
            dump_corrupt: recovered.dump_corrupt,
        });
        session = next;
    }
    Ok(outcome)
}

fn concat_slots(slots: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rows in slots {
        for row in rows {
            out.push_str(row);
            out.push('\n');
        }
    }
    out
}

fn count_quarantine_files(dir: &Path) -> Result<u64, ServeError> {
    if !dir.exists() {
        return Ok(0);
    }
    let mut n = 0u64;
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServeError::Io(format!("cannot list '{}': {e}", dir.display())))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| ServeError::Io(format!("cannot list '{}': {e}", dir.display())))?;
        if entry.file_name().to_string_lossy().contains(".quarantined") {
            n += 1;
        }
    }
    Ok(n)
}

/// Run the full harness: golden run, seeded kill schedule (anchored at
/// the golden run's first dump and first rotation), chained
/// kill/restart run, and the byte-diff verdict.
///
/// `workdir` gets two subdirectories, `golden/` and `run/`, each with
/// its own `journal/` and `state.json`; pre-existing contents of those
/// subdirectories are removed so reruns start clean.
pub fn run_chaos(
    input: &str,
    config: ServeConfig,
    workdir: &Path,
    chaos: &ChaosConfig,
) -> Result<ChaosReport, ServeError> {
    chaos.journal.validate()?;
    let requests = durable_requests(input)?;
    if requests.len() < 2 {
        return Err(ServeError::Usage(format!(
            "chaos needs at least 2 durable requests, input has {}",
            requests.len()
        )));
    }
    let rng = ChaosRng { seed: chaos.seed };
    let faults = config
        .faults
        .as_ref()
        .map(mnemo_faults::FaultPlan::storage_faults)
        .unwrap_or_default();
    let golden_dir = workdir.join("golden");
    let run_dir = workdir.join("run");
    for dir in [&golden_dir, &run_dir] {
        if dir.exists() {
            std::fs::remove_dir_all(dir)
                .map_err(|e| ServeError::Io(format!("cannot clear '{}': {e}", dir.display())))?;
        }
    }
    let golden = run_chain(
        &requests,
        &config,
        &golden_dir,
        chaos,
        VecDeque::new(),
        rng,
        &faults,
    )?;

    // Kill schedule: anchor the structural points from the golden run,
    // then fill with seeded draws until `chaos.kills` distinct indices.
    let mut schedule: Vec<(usize, KillKind)> = Vec::new();
    if let Some(d) = golden.first_dump {
        schedule.push((d, KillKind::MidDump));
    }
    if let Some(r) = golden
        .first_rotation
        .filter(|r| Some(*r) != golden.first_dump)
    {
        schedule.push((r, KillKind::MidRotation));
    }
    let mut salt = 0u64;
    while schedule.len() < chaos.kills && schedule.len() < requests.len() - 1 {
        let index = 1 + rng.draw(salt, requests.len() as u64 - 1) as usize;
        salt += 1;
        if schedule.iter().any(|(k, _)| *k == index) {
            continue;
        }
        schedule.push((index, KillKind::Seeded));
    }
    schedule.sort_by_key(|(k, _)| *k);

    let run = run_chain(
        &requests,
        &config,
        &run_dir,
        chaos,
        schedule.into(),
        rng,
        &faults,
    )?;

    let golden_transcript = concat_slots(&golden.slots);
    let final_transcript = concat_slots(&run.slots);
    let read = |p: &Path| {
        std::fs::read(p).map_err(|e| ServeError::Io(format!("cannot read '{}': {e}", p.display())))
    };
    let golden_state = read(&golden_dir.join("state.json"))?;
    let run_state = read(&run_dir.join("state.json"))?;
    Ok(ChaosReport {
        events: requests.len(),
        transcript_identical: final_transcript == golden_transcript,
        state_identical: run_state == golden_state,
        quarantined_total: run.quarantined_total,
        quarantine_files: count_quarantine_files(&run_dir.join("journal"))?,
        kills: run.kills,
        golden_transcript,
        final_transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemo_stream::{DriftConfig, StreamConfig};

    fn small_config(faults: Option<mnemo_faults::FaultPlan>) -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                drift: DriftConfig {
                    epoch_len: 150,
                    ..DriftConfig::default()
                },
                ..StreamConfig::with_budget_bytes(16 * 1024)
            },
            tick_events: 300,
            calib_keys: 120,
            calib_requests: 1_500,
            faults,
            ..ServeConfig::default()
        }
    }

    fn sample_input(events_each: u64) -> String {
        let mut input = String::new();
        for i in 0..events_each {
            for t in ["alpha", "beta"] {
                input.push_str(&format!(
                    "{{\"v\":1,\"tenant\":\"{t}\",\"key\":{},\"op\":\"{}\",\"bytes\":{}}}\n",
                    i * 17 % 70,
                    if i % 3 == 0 { "update" } else { "read" },
                    80 + i % 160,
                ));
            }
            if i % 100 == 99 {
                input.push_str("{\"v\":1,\"cmd\":\"advise\",\"tenant\":\"alpha\"}\n");
            }
        }
        input
    }

    fn workdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mnemo-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn clean_kills_converge_byte_identically() {
        let dir = workdir("clean");
        let report = run_chaos(
            &sample_input(700),
            small_config(None),
            &dir,
            &ChaosConfig {
                kills: 4,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        assert!(report.kills.len() >= 4, "{}", report.render());
        assert!(
            report.kills.iter().any(|k| k.kind == KillKind::MidDump),
            "{}",
            report.render()
        );
        assert!(report.converged(), "{}", report.render());
        assert!(!report.golden_transcript.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn storage_faults_still_converge() {
        use mnemo_faults::{FaultEvent, FaultPlan};
        let plan = FaultPlan::new(11)
            .with(FaultEvent::TornWrite {
                start_ns: 0,
                end_ns: u128::MAX,
            })
            .with(FaultEvent::BitFlip {
                start_ns: 0,
                end_ns: u128::MAX,
            });
        let dir = workdir("faulted");
        let report = run_chaos(
            &sample_input(700),
            small_config(Some(plan)),
            &dir,
            &ChaosConfig::default(),
        )
        .unwrap();
        assert!(report.kills.len() >= 8, "{}", report.render());
        assert!(report.converged(), "{}", report.render());
        // Bit flips under an always-on window must have cost something.
        let touched: u64 = report
            .kills
            .iter()
            .map(|k| k.truncated + k.quarantined)
            .sum();
        assert!(touched > 0, "{}", report.render());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
