//! The serving engine: per-tenant warm profilers behind bounded queues,
//! a scheduler epoch driven by the offered-event count, and periodic
//! shared-capacity re-planning.
//!
//! # Determinism contract
//!
//! Every response row is a pure function of the request sequence:
//!
//! * the scheduler "tick" fires every [`ServeConfig::tick_events`]
//!   *offered* ingest calls — dropped events count too, so backpressure
//!   can never shift an epoch boundary;
//! * the tick drains the per-tenant queues as one job per tenant on the
//!   bounded [`mnemo_par::Pool`], with results reassembled in tenant
//!   admission order — byte-identical for any `--jobs N`;
//! * a tenant's advise rows fire at its *own* profiler's drift-epoch
//!   boundaries and carry its own event count, so tenant B's advice is
//!   invariant under tenant A's traffic (as long as B is not starved
//!   idle for a whole scheduler epoch — then the idle decay is B's
//!   correct behaviour, not interference);
//! * virtual time is `offered_events × ns_per_event`; fault windows are
//!   scheduled against it, never against the wall clock.
//!
//! Advise latency is the one deliberately wall-domain measurement
//! (`span.serve.advise.wall_ns` histograms, excluded from gated
//! exports).

use crate::proto::{self, EventV1, ServeError};
use kvsim::StoreKind;
use mnemo::advisor::{
    Advisor, AdvisorConfig, DegradedReason, Recommendation, ResilientRecommendation,
};
use mnemo::multi::TenantDemand;
use mnemo::sensitivity::{Baselines, SensitivityEngine};
use mnemo_faults::{FaultEvent, FaultPlan};
use mnemo_stream::{Drift, StreamConfig, StreamProfiler};
use mnemo_telemetry::{Recorder, Snapshot};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};
use ycsb::{AccessEvent, WorkloadSpec};

/// Poison-tolerant lock: a panicked worker must not wedge the daemon,
/// so a poisoned tenant is recovered as-is (its state is still the last
/// consistent write — all mutations happen under the lock).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Store the calibration baselines are measured against.
    pub store: StoreKind,
    /// Slowdown budget for every advise, in `[0, 1]`.
    pub slo: f64,
    /// Advisor pipeline configuration (model, ordering, price factor).
    pub advisor: AdvisorConfig,
    /// Per-tenant profiler sizing (including the drift epoch length).
    pub stream: StreamConfig,
    /// Offered ingest events per scheduler tick.
    pub tick_events: u64,
    /// Bounded per-tenant queue capacity; events past it are dropped
    /// (and counted) rather than growing memory without limit.
    pub queue_cap: usize,
    /// Admission ceiling: ingest for tenants beyond this is rejected.
    pub max_tenants: usize,
    /// Shared FastMem budget split across tenants at each re-plan.
    pub share_bytes: u64,
    /// Scheduler ticks between shared-capacity re-plans.
    pub replan_every: u64,
    /// Fault plan; tenant-scoped events apply only to their tenant.
    pub faults: Option<FaultPlan>,
    /// Calibration workload size (keys) for baseline measurement.
    pub calib_keys: u64,
    /// Calibration workload size (requests).
    pub calib_requests: usize,
    /// Calibration workload seed.
    pub calib_seed: u64,
    /// Virtual nanoseconds per offered event (the serve clock).
    pub ns_per_event: u128,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store: StoreKind::Redis,
            slo: 0.10,
            advisor: AdvisorConfig::default(),
            stream: StreamConfig::default(),
            tick_events: 2_048,
            queue_cap: 8_192,
            max_tenants: 64,
            share_bytes: 64 << 20,
            replan_every: 1,
            faults: None,
            calib_keys: 400,
            calib_requests: 6_000,
            calib_seed: 42,
            ns_per_event: 1_000,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if !(0.0..=1.0).contains(&self.slo) {
            return Err(ServeError::Usage(format!("slo {} out of [0,1]", self.slo)));
        }
        if self.tick_events == 0 {
            return Err(ServeError::Usage("tick_events must be >= 1".into()));
        }
        if self.queue_cap == 0 {
            return Err(ServeError::Usage("queue_cap must be >= 1".into()));
        }
        if self.max_tenants == 0 {
            return Err(ServeError::Usage("max_tenants must be >= 1".into()));
        }
        if self.replan_every == 0 {
            return Err(ServeError::Usage("replan_every must be >= 1".into()));
        }
        if self.ns_per_event == 0 {
            return Err(ServeError::Usage("ns_per_event must be >= 1".into()));
        }
        Ok(())
    }
}

/// A tenant-scoped crash compiled against the serve clock: at `at_ns`
/// the tenant's profiler cold-resets and its ingest drops until
/// `until_ns` (restart plus per-key rebuild of the monitored head).
#[derive(Debug, Clone, Copy)]
struct CrashWindow {
    at_ns: u128,
    until_ns: u128,
    applied: bool,
}

/// One tenant's serving state. All mutation happens under the tenant's
/// mutex; the scheduler tick hands each tenant to exactly one pool job.
struct Tenant {
    name: String,
    profiler: StreamProfiler,
    /// Drift that caused the last profiler reset, attached as the
    /// trigger of the advice emitted one epoch later (the same two-step
    /// loop as `mnemo_stream::OnlineAdvisor`, inlined here so the state
    /// dump can reach the profiler).
    pending: Option<Drift>,
    queue: VecDeque<AccessEvent>,
    offered: u64,
    dropped: u64,
    crash_dropped: u64,
    advice_rows: u64,
    baselines: Baselines,
    crashes: Vec<CrashWindow>,
    recorder: Recorder,
}

impl Tenant {
    /// The two-step drift loop over one drained event: `Initial` epochs
    /// advise, significant drift resets and advises one epoch later.
    // mnemo-lint: allow(R003, "reachable expects guard unconstructible states: estimate() never emits an empty curve")
    fn on_event(&mut self, event: &AccessEvent, advisor: &Advisor, slo: f64) -> Option<String> {
        let drift = self.profiler.observe(event)?;
        match drift {
            Drift::Initial => {
                let trigger = self.pending.take().unwrap_or(Drift::Initial);
                Some(self.advise_row(&trigger, advisor, slo))
            }
            drift if drift.is_significant() => {
                self.pending = Some(drift);
                self.profiler.reset();
                None
            }
            _ => None,
        }
    }

    /// Consult from the current sketch state; never absent. Wall-domain
    /// advise latency lands in `span.serve.advise.wall_ns`.
    // mnemo-lint: allow(R003, "fast_only's expect fires only on an empty curve, which estimate() cannot produce")
    fn advise(&mut self, advisor: &Advisor, slo: f64) -> ResilientRecommendation {
        if self.profiler.events() == 0 {
            // Cold sketch: a consultation would "succeed" on an empty
            // pattern and emit an untagged zero placement. Tag it.
            self.recorder.count("serve.advise.cold", 1);
            return empty_recommendation();
        }
        let approx = self.profiler.approx_pattern();
        let baselines = self.baselines.clone();
        self.recorder.time_wall("serve.advise", 1, || {
            match advisor.consult_with_pattern(baselines, approx.pattern) {
                Ok(c) => c.recommend_resilient(slo),
                Err(_) => empty_recommendation(),
            }
        })
    }

    /// A fresh allocator demand from the current profiler state, for
    /// the shared-capacity re-plan. Deriving it from *current* state
    /// (instead of caching anything from the last advise) keeps the
    /// whole engine a pure function of the dumped fields, so a warm
    /// restart emits byte-identical re-plan rows. A demand is only the
    /// model fit plus the pattern — no ordering, no estimate curve —
    /// which is all the shared allocator consumes.
    fn demand(&mut self, advisor: &Advisor) -> Option<TenantDemand> {
        if self.profiler.events() == 0 {
            return None;
        }
        let approx = self.profiler.approx_pattern();
        Some(advisor.demand_with_pattern(self.baselines.clone(), approx.pattern))
    }

    // mnemo-lint: allow(R003, "delegates to advise; the reachable curve expect cannot fire for non-empty estimates")
    fn advise_row(&mut self, trigger: &Drift, advisor: &Advisor, slo: f64) -> String {
        let resilient = self.advise(advisor, slo);
        self.advice_rows += 1;
        self.recorder.count("serve.advise.rows", 1);
        proto::advise_row(&self.name, self.profiler.events(), trigger, &resilient)
    }

    fn crash_active(&self, now_ns: u128) -> bool {
        self.crashes
            .iter()
            .any(|c| c.applied && now_ns < c.until_ns)
    }

    /// Apply any crash whose time has come: cold-reset once, report the
    /// outage window. Returns the rows to emit.
    fn apply_due_crashes(&mut self, now_ns: u128) -> Vec<String> {
        let mut rows = Vec::new();
        for i in 0..self.crashes.len() {
            if !self.crashes[i].applied && now_ns >= self.crashes[i].at_ns {
                self.crashes[i].applied = true;
                self.profiler.reset();
                self.pending = None;
                self.queue.clear();
                self.recorder.count("serve.crash.applied", 1);
                rows.push(proto::crash_row(
                    &self.name,
                    self.crashes[i].at_ns,
                    self.crashes[i].until_ns,
                ));
            }
        }
        rows
    }
}

/// The never-absent fallback when even consultation fails: a zero-sized
/// placement tagged as degraded.
fn empty_recommendation() -> ResilientRecommendation {
    ResilientRecommendation {
        recommendation: Recommendation {
            prefix: 0,
            fast_bytes: 0,
            fast_ratio: 0.0,
            cost_reduction: 0.0,
            est_throughput_ops_s: 0.0,
            est_slowdown: 0.0,
        },
        degraded: Some(DegradedReason::EmptyCurve),
    }
}

/// The long-lived advisor daemon state.
pub struct ServeEngine {
    config: ServeConfig,
    advisor: Advisor,
    healthy_baselines: Baselines,
    calib_trace: ycsb::Trace,
    tenants: Vec<Mutex<Tenant>>,
    names: BTreeMap<String, usize>,
    offered_total: u64,
    ticks: u64,
    journal_seq: u64,
    recorder: Recorder,
    snapshots: Vec<Snapshot>,
}

impl ServeEngine {
    /// Build the engine: validates the configuration and measures the
    /// shared healthy calibration baselines once, up front.
    pub fn new(config: ServeConfig) -> Result<ServeEngine, ServeError> {
        config.validate()?;
        if let Some(plan) = &config.faults {
            plan.validate()
                .map_err(|e| ServeError::Usage(format!("fault plan: {e}")))?;
        }
        let calib_trace = WorkloadSpec::trending()
            .scaled(config.calib_keys, config.calib_requests)
            .generate(config.calib_seed);
        let healthy_baselines =
            SensitivityEngine::new(config.advisor.spec.clone(), config.advisor.noise)
                .measure(config.store, &calib_trace)
                .map_err(|e| ServeError::Engine(format!("baseline measurement failed: {e}")))?;
        let advisor = Advisor::new(config.advisor.clone());
        Ok(ServeEngine {
            advisor,
            healthy_baselines,
            calib_trace,
            tenants: Vec::new(),
            names: BTreeMap::new(),
            offered_total: 0,
            ticks: 0,
            journal_seq: 0,
            recorder: Recorder::new(),
            snapshots: Vec::new(),
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The serve clock: virtual time derived from offered events.
    pub fn now_ns(&self) -> u128 {
        self.offered_total as u128 * self.config.ns_per_event
    }

    /// Completed scheduler ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Offered ingest events (admitted, dropped, and crash-dropped).
    pub fn offered(&self) -> u64 {
        self.offered_total
    }

    /// The journal watermark: the sequence number of the last journaled
    /// request applied to this engine (0 = nothing journaled).
    pub fn journal_seq(&self) -> u64 {
        self.journal_seq
    }

    /// Advance the journal watermark (set by the front end right after
    /// each append, and by state restore / journal replay).
    pub fn set_journal_seq(&mut self, seq: u64) {
        self.journal_seq = seq;
    }

    /// Bump a daemon-level counter from the front end (journal and
    /// recovery metrics land in the same merged telemetry snapshots as
    /// the engine's own counters).
    pub(crate) fn note(&mut self, name: &'static str, n: u64) {
        self.recorder.count(name, n);
    }

    /// Admitted tenant names, in admission order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.iter().map(|t| lock(t).name.clone()).collect()
    }

    /// Look up or admit a tenant. Admission measures the tenant's
    /// baselines — against the faulted testbed when the fault plan has
    /// events scoped to (or unscoped over) this tenant.
    fn tenant_index(&mut self, name: &str) -> Result<usize, String> {
        if let Some(&i) = self.names.get(name) {
            return Ok(i);
        }
        if self.tenants.len() >= self.config.max_tenants {
            self.recorder.count("serve.admission.rejected", 1);
            return Err(format!(
                "tenant `{name}` rejected: at the {}-tenant admission ceiling",
                self.config.max_tenants
            ));
        }
        let scoped = self.config.faults.as_ref().map(|p| p.for_tenant(name));
        // Storage faults hit the journal, not the memory testbed — a
        // plan with only storage events keeps the healthy baselines.
        let baselines = match &scoped {
            Some(plan) if plan.events.iter().any(|e| !e.is_storage()) => {
                SensitivityEngine::new(self.config.advisor.spec.clone(), self.config.advisor.noise)
                    .with_fault_plan(plan.clone())
                    .measure(self.config.store, &self.calib_trace)
                    .map_err(|e| format!("baseline measurement for `{name}` failed: {e}"))?
            }
            _ => self.healthy_baselines.clone(),
        };
        // Tenant-scoped crashes compile to serve-clock outage windows;
        // unscoped crashes hit the baseline simulation above instead of
        // the serving path (they have no tenant to take down).
        let mut crashes = Vec::new();
        if let Some(plan) = &self.config.faults {
            for (i, event) in plan.events.iter().enumerate() {
                if plan.tenant_of(i) != Some(name) {
                    continue;
                }
                if let FaultEvent::ShardCrash {
                    at_ns,
                    restart_ns,
                    rebuild_ns_per_key,
                    ..
                } = event
                {
                    let recovery =
                        restart_ns + rebuild_ns_per_key * self.config.stream.top_k as f64;
                    crashes.push(CrashWindow {
                        at_ns: *at_ns,
                        until_ns: at_ns.saturating_add(recovery.max(0.0) as u128),
                        applied: false,
                    });
                }
            }
        }
        let index = self.tenants.len();
        self.tenants.push(Mutex::new(Tenant {
            name: name.to_string(),
            profiler: StreamProfiler::new(self.config.stream),
            pending: None,
            queue: VecDeque::new(),
            offered: 0,
            dropped: 0,
            crash_dropped: 0,
            advice_rows: 0,
            baselines,
            crashes,
            recorder: Recorder::new(),
        }));
        self.names.insert(name.to_string(), index);
        self.recorder.count("serve.admission.accepted", 1);
        Ok(index)
    }

    /// Offer one event. Returns the rows this event caused: admission
    /// errors, crash activations, and — when it completes a scheduler
    /// tick — the tick's advise and re-plan rows.
    // mnemo-lint: allow(R003, "the expects on this path assert parser/estimator invariants, not input-dependent states")
    pub fn ingest(&mut self, event: EventV1) -> Result<Vec<String>, ServeError> {
        let mut rows = Vec::new();
        self.offered_total += 1;
        self.recorder.count("serve.ingest.offered", 1);
        let now = self.now_ns();
        match self.tenant_index(&event.tenant) {
            Err(reason) => {
                self.recorder.count("serve.ingest.rejected", 1);
                rows.push(proto::error_row(&reason));
            }
            Ok(index) => {
                let mut tenant = lock(&self.tenants[index]);
                tenant.offered += 1;
                rows.extend(tenant.apply_due_crashes(now));
                if tenant.crash_active(now) {
                    tenant.crash_dropped += 1;
                    tenant.recorder.count("serve.ingest.crash_dropped", 1);
                } else if tenant.queue.len() >= self.config.queue_cap {
                    tenant.dropped += 1;
                    tenant.recorder.count("serve.ingest.dropped", 1);
                } else {
                    tenant.queue.push_back(AccessEvent {
                        key: event.key,
                        op: event.op,
                        bytes: event.bytes,
                    });
                }
            }
        }
        if self.offered_total % self.config.tick_events == 0 {
            rows.extend(self.tick());
        }
        Ok(rows)
    }

    /// One scheduler tick: activate due crashes, drain every tenant's
    /// queue (one pool job per tenant, reassembled in admission order),
    /// decay idle tenants, and re-plan the shared budget when due.
    // mnemo-lint: allow(R003, "reachable panics are invariant asserts: non-empty curve, pre-initialized fault section")
    fn tick(&mut self) -> Vec<String> {
        self.ticks += 1;
        let now = self.now_ns();
        let mut rows: Vec<String> = Vec::new();
        for tenant in &self.tenants {
            rows.extend(lock(tenant).apply_due_crashes(now));
        }
        let advisor = &self.advisor;
        let slo = self.config.slo;
        let tenants = &self.tenants;
        // mnemo-lint: allow(D007, "predict's sum is a per-key dot product inside one tenant job; rows reassemble in admission order")
        let drained: Vec<Vec<String>> = mnemo_par::Pool::current().run_jobs(tenants.len(), |i| {
            let mut tenant = lock(&tenants[i]);
            let mut out = Vec::new();
            let had_events = !tenant.queue.is_empty();
            while let Some(event) = tenant.queue.pop_front() {
                tenant.recorder.count("serve.tenant.events", 1);
                if let Some(row) = tenant.on_event(&event, advisor, slo) {
                    out.push(row);
                }
            }
            if !had_events && tenant.profiler.events() > 0 {
                // A warm tenant saw no traffic this scheduler epoch:
                // relax its summary instead of freezing it.
                tenant.profiler.note_idle_epoch();
                tenant.recorder.count("serve.tenant.idle_epochs", 1);
            }
            out
        });
        rows.extend(drained.into_iter().flatten());
        self.recorder.count("serve.ticks", 1);
        self.recorder
            .gauge("serve.tenants", self.tenants.len() as f64);
        if self.ticks % self.config.replan_every == 0 {
            rows.extend(self.replan());
        }
        let mut snap = self.recorder.take_snapshot(self.ticks);
        for tenant in &self.tenants {
            snap.merge(&lock(tenant).recorder.take_snapshot(self.ticks));
        }
        self.snapshots.push(snap);
        rows
    }

    /// Re-plan the shared FastMem budget across every warm tenant,
    /// emitting one grant row per participant. Each participant's
    /// demand is fitted fresh from its current profiler state.
    // mnemo-lint: allow(R003, "parse_toml's expect reads a section the parser always initializes before use")
    fn replan(&mut self) -> Vec<String> {
        let mut participants: Vec<usize> = Vec::new();
        let mut demands: Vec<TenantDemand> = Vec::new();
        for (i, tenant) in self.tenants.iter().enumerate() {
            if let Some(d) = lock(tenant).demand(&self.advisor) {
                participants.push(i);
                demands.push(d);
            }
        }
        if demands.is_empty() {
            return Vec::new();
        }
        self.recorder.count("serve.replan.runs", 1);
        let allocation = mnemo::multi::allocate_demands(&demands, self.config.share_bytes);
        let mut rows = Vec::with_capacity(allocation.tenants.len());
        for grant in &allocation.tenants {
            let name = lock(&self.tenants[participants[grant.tenant]]).name.clone();
            self.recorder.count("serve.replan.rows", 1);
            rows.push(proto::replan_row(
                self.ticks,
                &name,
                grant.fast_bytes,
                allocation.budget_bytes,
                grant.est_slowdown,
            ));
        }
        rows
    }

    /// Answer an `advise` command immediately from the tenant's current
    /// profiler state (events still queued fold in at the next tick —
    /// that bound, not the queue depth, is the advise latency). Unknown
    /// tenants are admitted cold, so the answer is a degraded
    /// `empty_curve` row rather than an error.
    // mnemo-lint: allow(R003, "the curve expect guards an empty-curve state estimate() is documented never to emit")
    pub fn advise_now(&mut self, name: &str) -> String {
        match self.tenant_index(name) {
            Err(reason) => proto::error_row(&reason),
            Ok(index) => {
                let advisor = &self.advisor;
                let slo = self.config.slo;
                let mut tenant = lock(&self.tenants[index]);
                tenant.apply_due_crashes(self.offered_total as u128 * self.config.ns_per_event);
                let resilient = tenant.advise(advisor, slo);
                proto::advise_row(
                    &tenant.name,
                    tenant.profiler.events(),
                    &Drift::Stable,
                    &resilient,
                )
            }
        }
    }

    /// A daemon status row: offered/tick totals plus one summary object
    /// per tenant, in admission order.
    pub fn status_row(&self) -> String {
        let mut row = format!(
            "{{\"v\":1,\"row\":\"status\",\"offered\":{},\"ticks\":{},\"tenants\":[",
            self.offered_total, self.ticks
        );
        for (i, tenant) in self.tenants.iter().enumerate() {
            let t = lock(tenant);
            if i > 0 {
                row.push(',');
            }
            let _ = write!(
                row,
                concat!(
                    "{{\"name\":\"{}\",\"events\":{},\"queued\":{},\"dropped\":{},",
                    "\"crash_dropped\":{},\"advice_rows\":{},\"profiler_bytes\":{}}}"
                ),
                proto::json_escape(&t.name),
                t.profiler.events(),
                t.queue.len(),
                t.dropped,
                t.crash_dropped,
                t.advice_rows,
                t.profiler.memory_bytes(),
            );
        }
        row.push_str("]}");
        row
    }

    /// Cumulative merged telemetry as one row: every sim-domain counter,
    /// plus per-span observation counts (values for wall-domain spans
    /// are deliberately omitted — they are not deterministic).
    pub fn snapshot_row(&self) -> String {
        let folded = self.folded_snapshot();
        let mut row = String::from("{\"v\":1,\"row\":\"snapshot\",\"counters\":{");
        for (i, (name, value)) in folded.counters().enumerate() {
            if i > 0 {
                row.push(',');
            }
            let _ = write!(row, "\"{}\":{}", proto::json_escape(name), value);
        }
        row.push_str("},\"spans\":{");
        for (i, (name, _, hist)) in folded.histograms().enumerate() {
            if i > 0 {
                row.push(',');
            }
            let _ = write!(row, "\"{}\":{}", proto::json_escape(name), hist.count());
        }
        row.push_str("}}");
        row
    }

    /// Fold of all completed tick snapshots (cumulative totals).
    pub fn folded_snapshot(&self) -> Snapshot {
        let mut folded = Snapshot::empty(0);
        for snap in &self.snapshots {
            folded.fold(snap);
        }
        folded
    }

    /// The per-tick snapshots taken so far.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// End of input: run one final tick so queued events, idle decay,
    /// and the re-plan all land, then snapshot. Deterministic because
    /// it runs at a fixed point of the request sequence.
    pub fn finish(&mut self) -> Vec<String> {
        self.tick()
    }

    // -- state dump/reload plumbing (see `crate::state`) ---------------

    pub(crate) fn tenant_states(&self) -> Vec<crate::state::TenantState> {
        self.tenants
            .iter()
            .map(|tenant| {
                let t = lock(tenant);
                crate::state::TenantState {
                    name: t.name.clone(),
                    offered: t.offered,
                    dropped: t.dropped,
                    crash_dropped: t.crash_dropped,
                    advice_rows: t.advice_rows,
                    pending: t.pending,
                    profiler: t.profiler.export_state(),
                }
            })
            .collect()
    }

    pub(crate) fn clock_state(&self) -> (u64, u64) {
        (self.offered_total, self.ticks)
    }

    /// Rebuild warm tenants from a state dump. Each tenant is admitted
    /// through the normal path (so baselines and crash windows are
    /// re-derived from the *current* configuration) and then has its
    /// profiler and counters restored.
    pub(crate) fn restore(
        &mut self,
        offered: u64,
        ticks: u64,
        tenants: Vec<crate::state::TenantState>,
    ) -> Result<(), ServeError> {
        for saved in tenants {
            let index = self.tenant_index(&saved.name).map_err(ServeError::Engine)?;
            let profiler = StreamProfiler::from_state(self.config.stream, &saved.profiler)
                .map_err(|e| {
                    ServeError::Engine(format!("state for `{}` does not fit: {e}", saved.name))
                })?;
            let mut tenant = lock(&self.tenants[index]);
            tenant.profiler = profiler;
            tenant.pending = saved.pending;
            tenant.offered = saved.offered;
            tenant.dropped = saved.dropped;
            tenant.crash_dropped = saved.crash_dropped;
            tenant.advice_rows = saved.advice_rows;
        }
        self.offered_total = offered;
        self.ticks = ticks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemo_stream::DriftConfig;
    use ycsb::Op;

    fn small_config() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                drift: DriftConfig {
                    epoch_len: 200,
                    ..DriftConfig::default()
                },
                ..StreamConfig::with_budget_bytes(16 * 1024)
            },
            tick_events: 400,
            calib_keys: 120,
            calib_requests: 1_500,
            ..ServeConfig::default()
        }
    }

    fn event(tenant: &str, key: u64) -> EventV1 {
        EventV1 {
            tenant: tenant.into(),
            key,
            op: if key % 4 == 0 { Op::Update } else { Op::Read },
            bytes: 100 + key % 300,
        }
    }

    #[test]
    fn ticks_fire_on_offered_events_and_advise() {
        let mut engine = ServeEngine::new(small_config()).unwrap();
        let mut rows = Vec::new();
        for i in 0..800u64 {
            rows.extend(engine.ingest(event("alpha", i * 37 % 90)).unwrap());
        }
        assert_eq!(engine.ticks(), 2);
        assert_eq!(engine.offered(), 800);
        let advise: Vec<&String> = rows.iter().filter(|r| r.contains("\"advise\"")).collect();
        assert!(!advise.is_empty(), "warm tenant must advise: {rows:?}");
        assert!(
            rows.iter().any(|r| r.contains("\"replan\"")),
            "a consulted tenant must appear in the re-plan: {rows:?}"
        );
    }

    #[test]
    fn cold_advise_is_degraded_not_absent() {
        let mut engine = ServeEngine::new(small_config()).unwrap();
        let row = engine.advise_now("never-seen");
        assert!(row.contains("\"degraded\":\"empty_curve\""), "{row}");
        assert!(row.contains("\"at_event\":0"), "{row}");
    }

    #[test]
    fn admission_ceiling_rejects_with_a_row() {
        let mut engine = ServeEngine::new(ServeConfig {
            max_tenants: 1,
            ..small_config()
        })
        .unwrap();
        assert!(engine.ingest(event("a", 1)).unwrap().is_empty());
        let rows = engine.ingest(event("b", 1)).unwrap();
        assert!(rows[0].contains("\"row\":\"error\""), "{rows:?}");
        assert!(rows[0].contains("admission ceiling"), "{rows:?}");
    }

    #[test]
    fn bounded_queues_drop_and_count() {
        let mut engine = ServeEngine::new(ServeConfig {
            queue_cap: 10,
            ..small_config()
        })
        .unwrap();
        for i in 0..399u64 {
            engine.ingest(event("alpha", i)).unwrap();
        }
        let status = engine.status_row();
        assert!(status.contains("\"queued\":10"), "{status}");
        assert!(status.contains("\"dropped\":389"), "{status}");
    }
}
