//! The serve write-ahead journal: a checksummed, segmented log of every
//! admitted mutating request, so a warm restart is *dump + replay of the
//! journal tail since the dump's sequence watermark* and converges to
//! the exact state an uninterrupted run would have reached.
//!
//! # On-disk format
//!
//! A journal is a directory of segment files named
//! `wal-<first_seq, 20 digits>.log`. Each segment starts with a 32-byte
//! header and then holds length-framed records:
//!
//! ```text
//! header:  magic "MNEMOWAL" (8) | version u64 LE | first_seq u64 LE
//!          | fnv64(first 24 bytes) u64 LE
//! record:  payload_len u32 LE | seq u64 LE | payload bytes
//!          | fnv64(seq LE bytes ++ payload) u64 LE
//! ```
//!
//! Sequence numbers are monotonic across segments (record `seq` must be
//! exactly the previous record's plus one, and a segment's first record
//! carries the header's `first_seq`). Segments rotate by size; rotation
//! points are hard synchronisation barriers — the finished segment and
//! the directory are fsynced before the next header is written.
//!
//! # Recovery
//!
//! [`recover`] scans the segments in order and is *total*: it never
//! panics and never refuses to produce an engine-startable result.
//!
//! * A torn tail — an incomplete record at the end of the **last**
//!   segment — is physically truncated at the last valid frame and
//!   counted (`serve.journal.truncated`).
//! * A corrupt record anywhere else (bad checksum, sequence jump,
//!   absurd length, a mid-journal short write) quarantines the segment:
//!   the file is renamed `*.quarantined`, a frame-numbered
//!   [`ServeError::Corrupt`] report is attached, the counter
//!   (`serve.journal.quarantined`) moves, and recovery continues with
//!   the next segment in `degraded` mode.
//! * After a quarantine the replay chain is broken; a later segment
//!   re-anchors it only if its `first_seq` proves no needed record was
//!   lost in the gap (everything skipped is at or below the already-
//!   applied watermark). Unreachable segments are quarantined too, so a
//!   later recovery never replays records out of order.
//!
//! The storage fault kinds in [`mnemo_faults`] (`torn_write`,
//! `bit_flip`, `fsync_fail`, `dump_corrupt`) drive the deterministic
//! chaos harness in [`crate::chaos`]; the writer itself consults only
//! `fsync_fail` (a simulated sync failure holds the durable watermark
//! back without erroring the daemon).

use crate::proto::{ServeError, MAX_FRAME_BYTES};
use mnemo_faults::StorageFaults;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Segment magic, fixed for all versions.
pub const JOURNAL_MAGIC: &[u8; 8] = b"MNEMOWAL";

/// Segment format version this build writes and the newest it reads.
pub const JOURNAL_VERSION: u64 = 1;

/// Segment header size in bytes.
pub const HEADER_BYTES: usize = 32;

/// Per-record framing overhead (length + sequence + checksum).
pub const RECORD_OVERHEAD: usize = 4 + 8 + 8;

/// Records larger than this are rejected at append time and treated as
/// corruption at recovery time (a flipped length byte must not allocate
/// gigabytes). Shared with the socket framing limit.
pub const MAX_RECORD_BYTES: usize = MAX_FRAME_BYTES;

/// FNV-1a over raw bytes — the same artifact checksum the perf harness
/// uses, small enough to hand-roll and strong enough to catch any
/// single-bit flip in a frame.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_chain(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv64_chain(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> ServeError {
    ServeError::Io(format!("{context} '{}': {e}", path.display()))
}

/// Journal sizing and sync policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one would exceed this
    /// many bytes (a segment always holds at least one record).
    pub segment_bytes: u64,
    /// fsync after every N appended records (1 = every record). Dumps
    /// and rotations sync unconditionally regardless of this cadence.
    pub sync_every: u64,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            segment_bytes: 64 * 1024,
            sync_every: 1,
        }
    }
}

impl JournalConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.segment_bytes < (HEADER_BYTES + RECORD_OVERHEAD) as u64 {
            return Err(ServeError::Usage(format!(
                "journal segment_bytes must be >= {}, got {}",
                HEADER_BYTES + RECORD_OVERHEAD,
                self.segment_bytes
            )));
        }
        if self.sync_every == 0 {
            return Err(ServeError::Usage("journal sync_every must be >= 1".into()));
        }
        Ok(())
    }
}

/// Writer-side counters, exported by the front ends as
/// `serve.journal.{appended,fsync_failed,rotations}`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended.
    pub appended: u64,
    /// Per-record fsyncs the fault plan failed (the durable watermark
    /// did not advance).
    pub fsync_failed: u64,
    /// Segment rotations performed.
    pub rotations: u64,
}

/// The name of the segment whose first record is `first_seq`.
pub fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// Encode one record frame.
pub fn encode_record(seq: u64, payload: &str) -> Vec<u8> {
    let p = payload.as_bytes();
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + p.len());
    out.extend_from_slice(&(p.len() as u32).to_le_bytes());
    let seq_le = seq.to_le_bytes();
    out.extend_from_slice(&seq_le);
    out.extend_from_slice(p);
    let check = fnv64_chain(fnv64_chain(0xcbf2_9ce4_8422_2325, &seq_le), p);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

fn encode_header(first_seq: u64) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[..8].copy_from_slice(JOURNAL_MAGIC);
    out[8..16].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out[16..24].copy_from_slice(&first_seq.to_le_bytes());
    let check = fnv64(&out[..24]);
    out[24..32].copy_from_slice(&check.to_le_bytes());
    out
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    let mut le = [0u8; 8];
    le.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(le)
}

/// Header parse outcome: `Ok(first_seq)`, or why not.
enum HeaderCheck {
    Ok(u64),
    /// Too few bytes for a header — can only be a torn rotation point.
    Torn,
    /// Structurally complete but invalid.
    Corrupt(String),
}

fn decode_header(bytes: &[u8]) -> HeaderCheck {
    if bytes.len() < HEADER_BYTES {
        return HeaderCheck::Torn;
    }
    if &bytes[..8] != JOURNAL_MAGIC {
        return HeaderCheck::Corrupt("bad segment magic".into());
    }
    let check = u64_at(bytes, 24);
    if check != fnv64(&bytes[..24]) {
        return HeaderCheck::Corrupt("segment header checksum mismatch".into());
    }
    let version = u64_at(bytes, 8);
    if version > JOURNAL_VERSION {
        return HeaderCheck::Corrupt(format!(
            "segment version {version} too new (this build speaks <= {JOURNAL_VERSION})"
        ));
    }
    HeaderCheck::Ok(u64_at(bytes, 16))
}

/// One record decode step at byte offset `at`.
enum Decoded {
    /// A valid record; `next` is the offset after it.
    Record { payload: String, next: usize },
    /// Clean end of segment.
    End,
    /// The bytes stop mid-record — a torn write, if this is the tail.
    Torn(String),
    /// A structurally complete but invalid record.
    Corrupt(String),
}

fn decode_at(bytes: &[u8], at: usize, expect_seq: u64) -> Decoded {
    let remaining = bytes.len() - at;
    if remaining == 0 {
        return Decoded::End;
    }
    if remaining < RECORD_OVERHEAD {
        return Decoded::Torn(format!(
            "{remaining} trailing bytes, record needs >= {RECORD_OVERHEAD}"
        ));
    }
    let mut len_le = [0u8; 4];
    len_le.copy_from_slice(&bytes[at..at + 4]);
    let len = u32::from_le_bytes(len_le) as usize;
    if len > MAX_RECORD_BYTES {
        return Decoded::Corrupt(format!("record length {len} exceeds {MAX_RECORD_BYTES}"));
    }
    let total = RECORD_OVERHEAD + len;
    if remaining < total {
        return Decoded::Torn(format!("record promises {total} bytes, {remaining} remain"));
    }
    let seq = u64_at(bytes, at + 4);
    let payload = &bytes[at + 12..at + 12 + len];
    let check = u64_at(bytes, at + 12 + len);
    let want = fnv64_chain(
        fnv64_chain(0xcbf2_9ce4_8422_2325, &seq.to_le_bytes()),
        payload,
    );
    if check != want {
        return Decoded::Corrupt("record checksum mismatch".into());
    }
    if seq != expect_seq {
        return Decoded::Corrupt(format!("sequence jump: expected {expect_seq}, found {seq}"));
    }
    match std::str::from_utf8(payload) {
        Ok(text) => Decoded::Record {
            payload: text.to_string(),
            next: at + total,
        },
        Err(_) => Decoded::Corrupt("record payload is not UTF-8".into()),
    }
}

/// Live (non-quarantined) segments in replay order, keyed by the
/// sequence number embedded in the file name (ordering only — the
/// header is authoritative).
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, ServeError> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("cannot list journal", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("cannot list journal", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|n| n.strip_suffix(".log"))
        else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else {
            continue;
        };
        segments.push((seq, entry.path()));
    }
    segments.sort();
    Ok(segments.into_iter().map(|(_, p)| p).collect())
}

fn quarantine(path: &Path) -> Result<PathBuf, ServeError> {
    let base = format!("{}.quarantined", path.display());
    let mut target = PathBuf::from(&base);
    let mut n = 1u32;
    while target.exists() {
        target = PathBuf::from(format!("{base}.{n}"));
        n += 1;
    }
    std::fs::rename(path, &target).map_err(|e| io_err("cannot quarantine", path, e))?;
    Ok(target)
}

fn corrupt_report(path: &Path, record: usize, reason: String) -> ServeError {
    ServeError::Corrupt {
        path: path.display().to_string(),
        line: record,
        reason,
    }
}

/// What [`recover`] found.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Contiguous `(seq, payload)` records with `seq > from_seq`, in
    /// order — the journal tail to replay through the engine.
    pub frames: Vec<(u64, String)>,
    /// The highest applied-or-replayable sequence number: the resumed
    /// writer starts at `last_seq + 1`, and an at-least-once client
    /// resends everything after it.
    pub last_seq: u64,
    /// Torn tail records dropped (and physically truncated).
    pub truncated: u64,
    /// Segments quarantined (renamed `*.quarantined`).
    pub quarantined: u64,
    /// One record-numbered report per quarantined segment.
    pub reports: Vec<ServeError>,
}

/// Scan `dir` and reconstruct the longest contiguous record chain after
/// `from_seq` (the state dump's watermark). Total: every way the bytes
/// can be wrong maps to truncation or quarantine, never an `Err` —
/// `Err` is reserved for live I/O failures (unreadable directory).
pub fn recover(dir: &Path, from_seq: u64) -> Result<Recovery, ServeError> {
    let mut out = Recovery {
        last_seq: from_seq,
        ..Recovery::default()
    };
    if !dir.exists() {
        return Ok(out);
    }
    let segments = list_segments(dir)?;
    let last_index = segments.len().saturating_sub(1);
    for (index, path) in segments.iter().enumerate() {
        let is_tail = index == last_index;
        let bytes = std::fs::read(path).map_err(|e| io_err("cannot read segment", path, e))?;
        let first_seq = match decode_header(&bytes) {
            HeaderCheck::Ok(first_seq) => first_seq,
            HeaderCheck::Torn if is_tail => {
                // A rotation died before the new header landed; the
                // segment never held a record.
                out.truncated += 1;
                std::fs::remove_file(path)
                    .map_err(|e| io_err("cannot drop torn segment", path, e))?;
                continue;
            }
            HeaderCheck::Torn => {
                out.quarantined += 1;
                out.reports.push(corrupt_report(
                    path,
                    0,
                    "short segment header mid-journal".into(),
                ));
                quarantine(path)?;
                continue;
            }
            HeaderCheck::Corrupt(reason) => {
                out.quarantined += 1;
                out.reports.push(corrupt_report(path, 0, reason));
                quarantine(path)?;
                continue;
            }
        };
        if first_seq > out.last_seq + 1 {
            // Records between the chain head and this segment were lost
            // in a quarantined predecessor; replaying from here would
            // apply records out of order.
            out.quarantined += 1;
            out.reports.push(corrupt_report(
                path,
                0,
                format!(
                    "unreachable segment: first record {first_seq} but chain ends at {}",
                    out.last_seq
                ),
            ));
            quarantine(path)?;
            continue;
        }
        let mut expect = first_seq;
        let mut at = HEADER_BYTES;
        let mut record = 0usize;
        loop {
            match decode_at(&bytes, at, expect) {
                Decoded::End => break,
                Decoded::Record { payload, next } => {
                    record += 1;
                    if expect > out.last_seq {
                        out.frames.push((expect, payload));
                        out.last_seq = expect;
                    }
                    expect += 1;
                    at = next;
                }
                Decoded::Torn(reason) if is_tail => {
                    out.truncated += 1;
                    let file = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| io_err("cannot truncate segment", path, e))?;
                    file.set_len(at as u64)
                        .map_err(|e| io_err("cannot truncate segment", path, e))?;
                    let _ = reason;
                    break;
                }
                Decoded::Torn(reason) | Decoded::Corrupt(reason) => {
                    out.quarantined += 1;
                    out.reports.push(corrupt_report(path, record + 1, reason));
                    quarantine(path)?;
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// The append side of the journal. One writer owns the directory at a
/// time; it always starts a fresh segment at `first_seq` (recovery has
/// already truncated or quarantined anything that conflicts).
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    config: JournalConfig,
    file: File,
    seg_path: PathBuf,
    seg_bytes: u64,
    next_seq: u64,
    synced_seq: u64,
    synced_bytes: u64,
    faults: Option<StorageFaults>,
    stats: JournalStats,
}

impl JournalWriter {
    /// Open the journal for appending: create `dir` if needed and start
    /// a new segment whose first record will be `first_seq`. `faults`
    /// (if any) drives simulated `fsync_fail` windows.
    pub fn open(
        dir: &Path,
        config: JournalConfig,
        first_seq: u64,
        faults: Option<StorageFaults>,
    ) -> Result<JournalWriter, ServeError> {
        config.validate()?;
        if first_seq == 0 {
            return Err(ServeError::Usage("journal sequences start at 1".into()));
        }
        std::fs::create_dir_all(dir).map_err(|e| io_err("cannot create journal", dir, e))?;
        let mut writer = JournalWriter {
            dir: dir.to_path_buf(),
            config,
            // Placeholder; replaced by `start_segment` below.
            file: File::open(dir).map_err(|e| io_err("cannot open journal", dir, e))?,
            seg_path: PathBuf::new(),
            seg_bytes: 0,
            next_seq: first_seq,
            synced_seq: first_seq - 1,
            synced_bytes: 0,
            faults: faults.filter(|f| !f.is_empty()),
            stats: JournalStats::default(),
        };
        writer.start_segment()?;
        Ok(writer)
    }

    /// Begin a fresh segment at `next_seq`: write + sync the header,
    /// then sync the directory so the file itself is durable.
    fn start_segment(&mut self) -> Result<(), ServeError> {
        let path = self.dir.join(segment_name(self.next_seq));
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("cannot create segment", &path, e))?;
        file.write_all(&encode_header(self.next_seq))
            .map_err(|e| io_err("cannot write segment header", &path, e))?;
        file.sync_data()
            .map_err(|e| io_err("cannot sync segment", &path, e))?;
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("cannot sync journal dir", &self.dir, e))?;
        self.file = file;
        self.seg_path = path;
        self.seg_bytes = HEADER_BYTES as u64;
        self.synced_bytes = HEADER_BYTES as u64;
        self.synced_seq = self.next_seq - 1;
        Ok(())
    }

    /// Append one record at virtual time `now_ns`, rotating and syncing
    /// per policy. Returns the record's sequence number.
    pub fn append(&mut self, now_ns: u128, payload: &str) -> Result<u64, ServeError> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(ServeError::Usage(format!(
                "journal record of {} bytes exceeds {MAX_RECORD_BYTES}",
                payload.len()
            )));
        }
        let record = encode_record(self.next_seq, payload);
        if self.seg_bytes > HEADER_BYTES as u64
            && self.seg_bytes + record.len() as u64 > self.config.segment_bytes
        {
            self.rotate()?;
        }
        self.file
            .write_all(&record)
            .map_err(|e| io_err("cannot append to segment", &self.seg_path, e))?;
        self.seg_bytes += record.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.appended += 1;
        if self.next_seq - 1 - self.synced_seq >= self.config.sync_every {
            self.sync(now_ns)?;
        }
        Ok(seq)
    }

    /// Rotation: hard-sync the finished segment (fault-exempt — rotation
    /// points are durability barriers) and open the next one.
    fn rotate(&mut self) -> Result<(), ServeError> {
        self.file
            .sync_data()
            .map_err(|e| io_err("cannot sync segment", &self.seg_path, e))?;
        self.synced_seq = self.next_seq - 1;
        self.stats.rotations += 1;
        self.start_segment()
    }

    /// fsync pending records. Inside a simulated `fsync_fail` window the
    /// sync is skipped and counted, the durable watermark holds, and the
    /// daemon carries on — returns whether the tail is durable.
    pub fn sync(&mut self, now_ns: u128) -> Result<bool, ServeError> {
        if self.synced_seq + 1 == self.next_seq {
            return Ok(true);
        }
        if self.faults.as_ref().is_some_and(|f| f.fsync_fails(now_ns)) {
            self.stats.fsync_failed += 1;
            return Ok(false);
        }
        self.file
            .sync_data()
            .map_err(|e| io_err("cannot sync segment", &self.seg_path, e))?;
        self.synced_seq = self.next_seq - 1;
        self.synced_bytes = self.seg_bytes;
        Ok(true)
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next append will take.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The highest sequence number known durable.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq
    }

    /// The current segment and the byte offset of the durable prefix
    /// within it — everything past this offset is at risk in a
    /// `torn_write` power-loss window.
    pub fn sync_point(&self) -> (PathBuf, u64) {
        (self.seg_path.clone(), self.synced_bytes)
    }

    /// Writer-side counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemo_faults::{FaultEvent, FaultPlan};
    use proptest::prelude::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mnemo-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn write_records(dir: &Path, config: JournalConfig, payloads: &[String]) -> JournalWriter {
        let mut w = JournalWriter::open(dir, config, 1, None).unwrap();
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(w.append(i as u128, p).unwrap(), i as u64 + 1);
        }
        w.sync(payloads.len() as u128).unwrap();
        w
    }

    #[test]
    fn append_then_recover_round_trips() {
        let dir = tmp_dir("roundtrip");
        let payloads: Vec<String> = (0..40)
            .map(|i| {
                format!("{{\"v\":1,\"tenant\":\"a\",\"key\":{i},\"op\":\"read\",\"bytes\":64}}")
            })
            .collect();
        write_records(&dir, JournalConfig::default(), &payloads);
        let rec = recover(&dir, 0).unwrap();
        assert_eq!(rec.last_seq, 40);
        assert_eq!(rec.truncated, 0);
        assert_eq!(rec.quarantined, 0);
        let got: Vec<String> = rec.frames.iter().map(|(_, p)| p.clone()).collect();
        assert_eq!(got, payloads);
        // A watermark skips the prefix.
        let tail = recover(&dir, 25).unwrap();
        assert_eq!(tail.frames.len(), 15);
        assert_eq!(tail.frames[0].0, 26);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_produces_contiguous_segments() {
        let dir = tmp_dir("rotate");
        let payloads: Vec<String> = (0..60).map(|i| format!("payload-{i:04}")).collect();
        let config = JournalConfig {
            segment_bytes: 256,
            sync_every: 1,
        };
        let w = write_records(&dir, config, &payloads);
        assert!(w.stats().rotations >= 3, "{:?}", w.stats());
        assert!(list_segments(&dir).unwrap().len() >= 4);
        let rec = recover(&dir, 0).unwrap();
        assert_eq!(rec.last_seq, 60);
        assert_eq!(rec.frames.len(), 60);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_at_every_byte_offset() {
        // The satellite property, exhaustively: cutting the journal
        // anywhere inside the last record must recover exactly the
        // records before it and count one truncation.
        let dir = tmp_dir("torn");
        let payloads: Vec<String> = (0..5).map(|i| format!("record-number-{i}")).collect();
        write_records(&dir, JournalConfig::default(), &payloads);
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let full = std::fs::read(&seg).unwrap();
        let last_len = RECORD_OVERHEAD + payloads[4].len();
        let keep = full.len() - last_len;
        for cut in keep..full.len() - 1 {
            std::fs::write(&seg, &full[..cut]).unwrap();
            let rec = recover(&dir, 0).unwrap();
            assert_eq!(rec.last_seq, 4, "cut at {cut}");
            assert_eq!(rec.frames.len(), 4, "cut at {cut}");
            // A cut exactly on the record boundary is a clean prefix,
            // not a torn tail; anything inside the record is torn.
            assert_eq!(rec.truncated, u64::from(cut > keep), "cut at {cut}");
            assert_eq!(rec.quarantined, 0, "cut at {cut}");
            // Recovery physically truncated the torn bytes.
            assert_eq!(std::fs::read(&seg).unwrap().len(), keep, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_segment_corruption_quarantines_and_reanchors() {
        let dir = tmp_dir("quarantine");
        let payloads: Vec<String> = (0..60).map(|i| format!("payload-{i:04}")).collect();
        let config = JournalConfig {
            segment_bytes: 256,
            sync_every: 1,
        };
        write_records(&dir, config, &payloads);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Flip one payload bit in the first segment.
        let target = &segments[0];
        let mut bytes = std::fs::read(target).unwrap();
        let at = HEADER_BYTES + 13;
        bytes[at] ^= 0x10;
        std::fs::write(target, &bytes).unwrap();
        // With a watermark past the damage, the chain re-anchors and the
        // tail still replays; the bad segment is quarantined, not fatal.
        let rec = recover(&dir, 30).unwrap();
        assert_eq!(rec.quarantined, 1, "{:?}", rec.reports);
        assert_eq!(rec.last_seq, 60);
        assert!(rec.frames.iter().all(|(s, _)| *s > 30));
        assert!(matches!(rec.reports[0], ServeError::Corrupt { line, .. } if line >= 1));
        assert!(
            list_segments(&dir).unwrap().len() == segments.len() - 1,
            "quarantined segment left the live set"
        );
        // With a cold watermark the gap is unreachable: everything after
        // the corruption quarantines too, and the chain ends at 0.
        let dir2 = tmp_dir("quarantine-cold");
        write_records(&dir2, config, &payloads);
        let segments2 = list_segments(&dir2).unwrap();
        let mut bytes = std::fs::read(&segments2[0]).unwrap();
        bytes[HEADER_BYTES + 13] ^= 0x10;
        std::fs::write(&segments2[0], &bytes).unwrap();
        let rec = recover(&dir2, 0).unwrap();
        assert_eq!(rec.quarantined as usize, segments2.len());
        assert_eq!(rec.last_seq, 0);
        assert!(rec.frames.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn version_too_new_is_quarantined_with_a_clear_reason() {
        let dir = tmp_dir("version");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_name(1));
        let mut header = [0u8; HEADER_BYTES];
        header[..8].copy_from_slice(JOURNAL_MAGIC);
        header[8..16].copy_from_slice(&99u64.to_le_bytes());
        header[16..24].copy_from_slice(&1u64.to_le_bytes());
        let check = fnv64(&header[..24]);
        header[24..32].copy_from_slice(&check.to_le_bytes());
        std::fs::write(&path, header).unwrap();
        let rec = recover(&dir, 0).unwrap();
        assert_eq!(rec.quarantined, 1);
        assert!(
            rec.reports[0].to_string().contains("too new"),
            "{}",
            rec.reports[0]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_fail_window_holds_the_durable_watermark() {
        let dir = tmp_dir("fsync");
        let faults = FaultPlan::new(3)
            .with(FaultEvent::FsyncFail {
                start_ns: 10,
                end_ns: 20,
            })
            .storage_faults();
        let mut w = JournalWriter::open(&dir, JournalConfig::default(), 1, Some(faults)).unwrap();
        assert_eq!(w.append(5, "before").unwrap(), 1);
        assert_eq!(w.synced_seq(), 1);
        w.append(15, "inside").unwrap();
        assert_eq!(w.synced_seq(), 1, "sync failed inside the window");
        assert_eq!(w.stats().fsync_failed, 1);
        w.append(25, "after").unwrap();
        assert_eq!(w.synced_seq(), 3, "sync resumes past the window");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn record_encode_decode_round_trips(
            seq in 1u64..u64::MAX / 2,
            payload in proptest::collection::vec(32u8..127, 0..200),
        ) {
            let text: String = payload.iter().map(|&b| b as char).collect();
            let frame = encode_record(seq, &text);
            prop_assert_eq!(frame.len(), RECORD_OVERHEAD + text.len());
            match decode_at(&frame, 0, seq) {
                Decoded::Record { payload, next } => {
                    prop_assert_eq!(payload, text);
                    prop_assert_eq!(next, frame.len());
                }
                _ => prop_assert!(false, "valid frame failed to decode"),
            }
            // A wrong expected sequence is corruption, not a record.
            prop_assert!(matches!(decode_at(&frame, 0, seq + 1), Decoded::Corrupt(_)));
        }

        #[test]
        fn truncated_journals_recover_the_longest_valid_prefix(
            count in 2usize..12,
            cut_back in 1usize..40,
        ) {
            let dir = tmp_dir(&format!("prop-{count}-{cut_back}"));
            let payloads: Vec<String> =
                (0..count).map(|i| format!("prop-payload-{i:03}")).collect();
            write_records(&dir, JournalConfig::default(), &payloads);
            let seg = list_segments(&dir).unwrap().pop().unwrap();
            let full = std::fs::read(&seg).unwrap();
            let cut = full.len().saturating_sub(cut_back).max(HEADER_BYTES);
            std::fs::write(&seg, &full[..cut]).unwrap();
            let rec = recover(&dir, 0).unwrap();
            // Longest valid prefix: every surviving record intact, in order.
            let mut expected = 0u64;
            let mut offset = HEADER_BYTES;
            for p in &payloads {
                let next = offset + RECORD_OVERHEAD + p.len();
                if next > cut { break; }
                expected += 1;
                offset = next;
            }
            prop_assert_eq!(rec.last_seq, expected);
            prop_assert_eq!(rec.frames.len() as u64, expected);
            prop_assert_eq!(rec.quarantined, 0);
            // Torn only when the cut lands strictly inside a record;
            // a cut on a boundary is a clean (shorter) journal.
            prop_assert_eq!(rec.truncated, u64::from(cut > offset));
            for (i, (seq, p)) in rec.frames.iter().enumerate() {
                prop_assert_eq!(*seq, i as u64 + 1);
                prop_assert_eq!(p, &payloads[i]);
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
