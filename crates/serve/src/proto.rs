//! The serve wire protocol: versioned JSONL requests, deterministic
//! JSONL response rows, and length-delimited socket framing.
//!
//! Every request is one JSON object. Schema version 1:
//!
//! * ingest — `{"v":1,"tenant":"alpha","key":17,"op":"read","bytes":128}`
//! * advise — `{"v":1,"cmd":"advise","tenant":"alpha"}`
//! * status — `{"v":1,"cmd":"status"}`
//! * snapshot — `{"v":1,"cmd":"snapshot"}`
//! * follow — `{"v":1,"cmd":"follow"}` (socket clients only: subscribe
//!   to every emitted row)
//! * shutdown — `{"v":1,"cmd":"shutdown"}`
//!
//! On stdin and in `--replay` files requests are newline-framed; on the
//! Unix socket both directions use 4-byte little-endian length prefixes
//! ([`encode_frame`] / [`FrameBuffer`]), so a row containing a newline
//! can never split a message.
//!
//! Response rows are also single JSON objects (`"row"` keyed), rendered
//! with [`mnemo_telemetry::export::fmt_f64`] so float fields are
//! shortest-roundtrip and the whole transcript is byte-stable across
//! worker counts and replays.

use mnemo::advisor::{DegradedReason, ResilientRecommendation};
use mnemo_stream::Drift;
use mnemo_telemetry::export::fmt_f64;
use std::fmt;
use ycsb::Op;

/// The protocol schema version this build speaks.
pub const PROTO_VERSION: u64 = 1;

/// Frames larger than this are rejected as protocol errors rather than
/// buffered (a corrupt length prefix must not allocate gigabytes).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Typed serve-layer error. [`ServeError::exit_code`] maps onto the CLI
/// exit-code contract: usage 2, I/O 3, protocol/parse 4, engine 5.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Invalid invocation or configuration.
    Usage(String),
    /// The environment failed us: socket, file, or stream I/O.
    Io(String),
    /// A request violated the wire protocol; `line` is 1-based within
    /// the input (or the frame ordinal on a socket).
    Proto {
        /// 1-based input line / frame ordinal.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The advising engine failed.
    Engine(String),
    /// Persisted bytes (a state dump or journal segment) failed
    /// validation; `line` is the 1-based record ordinal within `path`.
    Corrupt {
        /// The file that failed validation.
        path: String,
        /// 1-based record ordinal inside the file (0 = header).
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl ServeError {
    /// Process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            ServeError::Usage(_) => 2,
            ServeError::Io(_) => 3,
            ServeError::Proto { .. } => 4,
            ServeError::Engine(_) => 5,
            ServeError::Corrupt { .. } => 4,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Usage(m) => write!(f, "usage: {m}"),
            ServeError::Io(m) => write!(f, "io: {m}"),
            ServeError::Proto { line, reason } => write!(f, "protocol (line {line}): {reason}"),
            ServeError::Engine(m) => write!(f, "engine: {m}"),
            ServeError::Corrupt { path, line, reason } => {
                write!(f, "corrupt: {path} record {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One ingest event, schema v1.
#[derive(Debug, Clone, PartialEq)]
pub struct EventV1 {
    /// Tenant the event belongs to.
    pub tenant: String,
    /// Accessed key.
    pub key: u64,
    /// Operation kind.
    pub op: Op,
    /// Record size in bytes.
    pub bytes: u64,
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Feed one access event into a tenant's profiler.
    Ingest(EventV1),
    /// Answer with a fresh advise row for the tenant, immediately.
    Advise {
        /// Tenant to advise.
        tenant: String,
    },
    /// Answer with a daemon status row.
    Status,
    /// Answer with a merged telemetry snapshot row.
    Snapshot,
    /// Subscribe this connection to every emitted row.
    Follow,
    /// Stop the daemon.
    Shutdown,
}

// ---------------------------------------------------------------------
// JSON value + parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw token so 64-bit integers
/// round-trip exactly (an `f64` detour would corrupt values above 2^53,
/// e.g. the distinct-counter bitmap words in a state dump).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw token.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse exactly one JSON value spanning the whole input.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, or an error naming `what`.
    pub fn obj(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(members) => Ok(members),
            _ => Err(format!("{what} must be an object")),
        }
    }

    /// The array elements, or an error naming `what`.
    pub fn arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("{what} must be an array")),
        }
    }

    /// The string value, or an error naming `what`.
    pub fn str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what} must be a string")),
        }
    }

    /// The value as a `u64`, or an error naming `what`.
    pub fn u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| format!("{what} must be an unsigned integer, got {raw}")),
            _ => Err(format!("{what} must be a number")),
        }
    }

    /// The value as a `u128`, or an error naming `what`.
    pub fn u128(&self, what: &str) -> Result<u128, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<u128>()
                .map_err(|_| format!("{what} must be an unsigned integer, got {raw}")),
            _ => Err(format!("{what} must be a number")),
        }
    }

    /// The value as an `f64`, or an error naming `what`.
    pub fn f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("{what} must be a number, got {raw}")),
            _ => Err(format!("{what} must be a number")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| "non-utf8 number token".to_string())?;
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("invalid number at byte {start}"));
    }
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| "non-utf8 string".to_string())?;
                if let Some(c) = s.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected member name at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        if members.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key `{key}`"));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

// ---------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------

fn proto_err(line: usize, reason: impl Into<String>) -> ServeError {
    ServeError::Proto {
        line,
        reason: reason.into(),
    }
}

fn check_keys(obj: &Json, known: &[&str], line: usize) -> Result<(), ServeError> {
    for (key, _) in obj.obj("request").map_err(|e| proto_err(line, e))? {
        if !known.contains(&key.as_str()) {
            return Err(proto_err(line, format!("unknown key `{key}`")));
        }
    }
    Ok(())
}

/// Decode one request line. `line` is the 1-based input line (or frame
/// ordinal), reported in protocol errors.
pub fn parse_request(input: &str, line: usize) -> Result<Request, ServeError> {
    let value = Json::parse(input).map_err(|e| proto_err(line, e))?;
    let v = value
        .get("v")
        .ok_or_else(|| proto_err(line, "missing `v` (schema version)"))?
        .u64("`v`")
        .map_err(|e| proto_err(line, e))?;
    if v != PROTO_VERSION {
        return Err(proto_err(
            line,
            format!("unsupported schema version {v} (this build speaks {PROTO_VERSION})"),
        ));
    }
    if let Some(cmd) = value.get("cmd") {
        let cmd = cmd.str("`cmd`").map_err(|e| proto_err(line, e))?;
        return match cmd {
            "advise" => {
                check_keys(&value, &["v", "cmd", "tenant"], line)?;
                let tenant = value
                    .get("tenant")
                    .ok_or_else(|| proto_err(line, "`advise` needs a `tenant`"))?
                    .str("`tenant`")
                    .map_err(|e| proto_err(line, e))?;
                if tenant.is_empty() {
                    return Err(proto_err(line, "`tenant` must not be empty"));
                }
                Ok(Request::Advise {
                    tenant: tenant.to_string(),
                })
            }
            "status" | "snapshot" | "follow" | "shutdown" => {
                check_keys(&value, &["v", "cmd"], line)?;
                Ok(match cmd {
                    "status" => Request::Status,
                    "snapshot" => Request::Snapshot,
                    "follow" => Request::Follow,
                    _ => Request::Shutdown,
                })
            }
            other => Err(proto_err(line, format!("unknown cmd `{other}`"))),
        };
    }
    // No `cmd`: an ingest event.
    check_keys(&value, &["v", "tenant", "key", "op", "bytes"], line)?;
    let tenant = value
        .get("tenant")
        .ok_or_else(|| proto_err(line, "event needs a `tenant`"))?
        .str("`tenant`")
        .map_err(|e| proto_err(line, e))?;
    if tenant.is_empty() {
        return Err(proto_err(line, "`tenant` must not be empty"));
    }
    let key = value
        .get("key")
        .ok_or_else(|| proto_err(line, "event needs a `key`"))?
        .u64("`key`")
        .map_err(|e| proto_err(line, e))?;
    let op = match value
        .get("op")
        .ok_or_else(|| proto_err(line, "event needs an `op`"))?
        .str("`op`")
        .map_err(|e| proto_err(line, e))?
    {
        "read" => Op::Read,
        "update" | "write" => Op::Update,
        other => {
            return Err(proto_err(
                line,
                format!("unknown op `{other}` (read|update)"),
            ))
        }
    };
    let bytes = match value.get("bytes") {
        Some(b) => b.u64("`bytes`").map_err(|e| proto_err(line, e))?,
        None => 0,
    };
    Ok(Request::Ingest(EventV1 {
        tenant: tenant.to_string(),
        key,
        op,
        bytes,
    }))
}

// ---------------------------------------------------------------------
// Response rows
// ---------------------------------------------------------------------

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable wire label for a drift trigger.
pub fn drift_json(drift: &Drift) -> &'static str {
    match drift {
        Drift::Initial => "initial",
        Drift::Theta { .. } => "theta",
        Drift::HotSet { .. } => "hot_set",
        Drift::Stable => "stable",
    }
}

/// `null` or the stable wire label for a degradation reason.
pub fn degraded_json(degraded: &Option<DegradedReason>) -> &'static str {
    match degraded {
        None => "null",
        Some(DegradedReason::SloClamped { .. }) => "\"slo_clamped\"",
        Some(DegradedReason::SloUnattainable { .. }) => "\"slo_unattainable\"",
        Some(DegradedReason::EmptyCurve) => "\"empty_curve\"",
    }
}

/// One advise row: emitted at a tenant's drift-epoch boundary, or in
/// response to an `advise` command. `at_event` counts the *tenant's own*
/// profiled events, so a tenant's advise rows are invariant under other
/// tenants' traffic.
pub fn advise_row(
    tenant: &str,
    at_event: u64,
    trigger: &Drift,
    resilient: &ResilientRecommendation,
) -> String {
    let r = &resilient.recommendation;
    format!(
        concat!(
            "{{\"v\":1,\"row\":\"advise\",\"tenant\":\"{}\",\"at_event\":{},",
            "\"trigger\":\"{}\",\"prefix\":{},\"fast_bytes\":{},\"fast_ratio\":{},",
            "\"cost_reduction\":{},\"est_slowdown\":{},\"degraded\":{}}}"
        ),
        json_escape(tenant),
        at_event,
        drift_json(trigger),
        r.prefix,
        r.fast_bytes,
        fmt_f64(r.fast_ratio),
        fmt_f64(r.cost_reduction),
        fmt_f64(r.est_slowdown),
        degraded_json(&resilient.degraded),
    )
}

/// One re-plan row: the shared-capacity grant a tenant received at a
/// scheduler epoch. Carries the *global* epoch: re-planning is a
/// cross-tenant decision and is excluded from per-tenant isolation.
pub fn replan_row(
    epoch: u64,
    tenant: &str,
    fast_bytes: u64,
    budget_bytes: u64,
    est_slowdown: f64,
) -> String {
    format!(
        concat!(
            "{{\"v\":1,\"row\":\"replan\",\"epoch\":{},\"tenant\":\"{}\",",
            "\"fast_bytes\":{},\"budget_bytes\":{},\"est_slowdown\":{}}}"
        ),
        epoch,
        json_escape(tenant),
        fast_bytes,
        budget_bytes,
        fmt_f64(est_slowdown),
    )
}

/// One crash row: a tenant-scoped shard crash took effect; the tenant's
/// profiler was cold-reset and its ingest drops until `until_ns`.
pub fn crash_row(tenant: &str, at_ns: u128, until_ns: u128) -> String {
    format!(
        "{{\"v\":1,\"row\":\"crash\",\"tenant\":\"{}\",\"at_ns\":{},\"until_ns\":{}}}",
        json_escape(tenant),
        at_ns,
        until_ns,
    )
}

/// One error row (unknown tenant, rejected admission, …). Kept as a row
/// rather than a hard error so a daemon serving many clients degrades
/// per-request instead of dying.
pub fn error_row(reason: &str) -> String {
    format!(
        "{{\"v\":1,\"row\":\"error\",\"reason\":\"{}\"}}",
        json_escape(reason)
    )
}

// ---------------------------------------------------------------------
// Socket framing
// ---------------------------------------------------------------------

/// Frame a payload for the socket: 4-byte little-endian length prefix.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Incremental decoder for length-prefixed frames arriving in arbitrary
/// chunks.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append raw bytes from the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one is buffered. `frame_no` is
    /// reported in protocol errors (oversized frame, non-UTF-8 payload).
    pub fn next_frame(&mut self, frame_no: usize) -> Result<Option<String>, ServeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(proto_err(
                frame_no,
                format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| proto_err(frame_no, "frame payload is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_and_commands_decode() {
        let ev = parse_request(
            r#"{"v":1,"tenant":"alpha","key":17,"op":"read","bytes":128}"#,
            1,
        )
        .unwrap();
        assert_eq!(
            ev,
            Request::Ingest(EventV1 {
                tenant: "alpha".into(),
                key: 17,
                op: Op::Read,
                bytes: 128,
            })
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"advise","tenant":"beta"}"#, 1).unwrap(),
            Request::Advise {
                tenant: "beta".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"v":1,"cmd":"shutdown"}"#, 1).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn protocol_errors_carry_the_line() {
        let cases = [
            (r#"{"tenant":"a","key":1,"op":"read"}"#, "missing `v`"),
            (r#"{"v":2,"cmd":"status"}"#, "unsupported schema version"),
            (r#"{"v":1,"cmd":"warp"}"#, "unknown cmd"),
            (r#"{"v":1,"tenant":"a","key":1,"op":"scan"}"#, "unknown op"),
            (
                r#"{"v":1,"tenant":"a","key":1,"op":"read","x":1}"#,
                "unknown key",
            ),
            (
                r#"{"v":1,"tenant":"","key":1,"op":"read"}"#,
                "must not be empty",
            ),
            (r#"{"v":1,"cmd":"advise"}"#, "needs a `tenant`"),
            ("{]", "expected member name"),
        ];
        for (input, want) in cases {
            match parse_request(input, 7) {
                Err(ServeError::Proto { line, reason }) => {
                    assert_eq!(line, 7, "{input}");
                    assert!(reason.contains(want), "{input}: got `{reason}`");
                }
                other => panic!("{input}: expected protocol error, got {other:?}"),
            }
        }
    }

    #[test]
    fn json_numbers_round_trip_u64_exactly() {
        let v = Json::parse("{\"w\":18446744073709551615}").unwrap();
        assert_eq!(v.get("w").unwrap().u64("w").unwrap(), u64::MAX);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn framing_round_trips_in_chunks() {
        let frames = ["{\"v\":1,\"cmd\":\"status\"}", "short", ""];
        let mut wire = Vec::new();
        for f in frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        let mut buf = FrameBuffer::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            buf.extend(chunk);
            while let Some(frame) = buf.next_frame(got.len() + 1).unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversized_frames_are_protocol_errors() {
        let mut buf = FrameBuffer::new();
        buf.extend(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            buf.next_frame(1),
            Err(ServeError::Proto { line: 1, .. })
        ));
    }

    #[test]
    fn rows_are_single_json_objects() {
        use mnemo::advisor::Recommendation;
        let resilient = ResilientRecommendation {
            recommendation: Recommendation {
                prefix: 3,
                fast_bytes: 4096,
                fast_ratio: 0.25,
                cost_reduction: 0.4,
                est_throughput_ops_s: 1e6,
                est_slowdown: 0.05,
            },
            degraded: Some(DegradedReason::EmptyCurve),
        };
        let row = advise_row("a\"b", 42, &Drift::Initial, &resilient);
        let parsed = Json::parse(&row).unwrap();
        assert_eq!(parsed.get("tenant").unwrap().str("t").unwrap(), "a\"b");
        assert_eq!(parsed.get("at_event").unwrap().u64("e").unwrap(), 42);
        assert_eq!(
            parsed.get("degraded").unwrap().str("d").unwrap(),
            "empty_curve"
        );
        let replan = replan_row(2, "alpha", 1 << 20, 1 << 26, 0.1);
        assert!(Json::parse(&replan).is_ok());
        assert!(Json::parse(&crash_row("beta", 100, 200)).is_ok());
        assert!(Json::parse(&error_row("unknown tenant `x`")).is_ok());
    }
}
