//! Crash-safe daemon state: a JSON dump of every tenant's profiler for
//! warm restarts.
//!
//! The dump is one JSON document holding, per tenant, the full exported
//! [`mnemo_stream::ProfilerState`] plus the serving counters. Floats
//! are rendered shortest-roundtrip ([`fmt_f64`]) and 64-bit integers
//! are kept as raw tokens end to end (see [`crate::proto::Json`]), so
//! `dump → load → dump` is byte-identical and a reloaded daemon
//! continues *exactly* where the dumped one stopped.
//!
//! [`write_atomic`] writes via a temporary sibling plus rename, so a
//! crash mid-dump leaves the previous state intact rather than a torn
//! file.
//!
//! Version 2 dumps add a `journal_seq` watermark (the last journaled
//! request folded into the dump — warm restart replays the journal tail
//! after it) and an FNV-64 trailer line (`#fnv64:<16 hex>`) over the
//! document, so a bit-flipped dump is rejected as
//! [`ServeError::Corrupt`] rather than half-loaded. Version 1 dumps
//! (no trailer, no watermark) stay loadable; versions newer than this
//! build are rejected with a distinct "too new" message.

use crate::engine::ServeEngine;
use crate::proto::{json_escape, Json, ServeError};
use mnemo_stream::TopEntry;
use mnemo_stream::{
    DistinctState, Drift, EpochSummary, ProfilerState, SketchState, TopKState, TrackerState,
};
use mnemo_telemetry::export::fmt_f64;
use std::fmt::Write as _;
use std::path::Path;

/// Dump format version this build writes (and the newest it reads).
pub const STATE_VERSION: u64 = 2;

/// Prefix of the checksum trailer line appended to v2 dumps.
pub const CHECKSUM_PREFIX: &str = "#fnv64:";

/// One tenant's saved serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantState {
    /// Tenant name.
    pub name: String,
    /// Events offered to this tenant.
    pub offered: u64,
    /// Events dropped by backpressure.
    pub dropped: u64,
    /// Events dropped inside crash windows.
    pub crash_dropped: u64,
    /// Advise rows emitted.
    pub advice_rows: u64,
    /// Drift awaiting its post-reset advice epoch.
    pub pending: Option<Drift>,
    /// The full profiler state.
    pub profiler: ProfilerState,
}

/// A parsed state dump.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedState {
    /// Offered-event clock at dump time.
    pub offered: u64,
    /// Scheduler ticks at dump time.
    pub ticks: u64,
    /// Journal watermark at dump time: the sequence number of the last
    /// journaled request folded into this dump (0 in v1 dumps and in
    /// journal-less daemons).
    pub journal_seq: u64,
    /// Tenants in admission order.
    pub tenants: Vec<TenantState>,
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn write_top(out: &mut String, top: &TopKState) {
    out.push_str("{\"entries\":[");
    for (i, e) in top.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "[{},{},{},{},{},{}]",
            e.key,
            e.count,
            e.error,
            e.reads,
            e.writes,
            fmt_f64(e.size_ewma)
        );
    }
    let _ = write!(out, "],\"observed\":{}}}", top.observed);
}

fn write_sketch(out: &mut String, sketch: &SketchState) {
    let _ = write!(
        out,
        "{{\"width\":{},\"depth\":{},\"total\":{},\"counters\":[",
        sketch.width, sketch.depth, sketch.total
    );
    for (i, c) in sketch.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push_str("]}");
}

fn write_distinct(out: &mut String, distinct: &DistinctState) {
    out.push_str("{\"bits\":[");
    for (i, w) in distinct.bits.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    out.push_str("]}");
}

fn write_summary(out: &mut String, summary: &Option<EpochSummary>) {
    match summary {
        None => out.push_str("null"),
        Some(s) => {
            let _ = write!(
                out,
                "{{\"index\":{},\"events\":{},\"theta\":",
                s.index, s.events
            );
            match s.theta {
                None => out.push_str("null"),
                Some(t) => out.push_str(&fmt_f64(t)),
            }
            out.push_str(",\"hot_keys\":[");
            for (i, k) in s.hot_keys.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k}");
            }
            out.push_str("]}");
        }
    }
}

fn write_tracker(out: &mut String, skew: &TrackerState) {
    out.push_str("{\"window\":");
    write_top(out, &skew.window);
    let _ = write!(
        out,
        ",\"in_epoch\":{},\"completed\":{},\"idle_streak\":{},\"reference\":",
        skew.in_epoch, skew.completed, skew.idle_streak
    );
    write_summary(out, &skew.reference);
    out.push_str(",\"last\":");
    write_summary(out, &skew.last);
    out.push('}');
}

fn write_profiler(out: &mut String, p: &ProfilerState) {
    out.push_str("{\"top\":");
    write_top(out, &p.top);
    out.push_str(",\"cm_reads\":");
    write_sketch(out, &p.cm_reads);
    out.push_str(",\"cm_writes\":");
    write_sketch(out, &p.cm_writes);
    out.push_str(",\"distinct\":");
    write_distinct(out, &p.distinct);
    out.push_str(",\"skew\":");
    write_tracker(out, &p.skew);
    let _ = write!(
        out,
        ",\"events\":{},\"reads\":{},\"writes\":{},\"bytes_sum\":{}}}",
        p.events,
        p.reads,
        p.writes,
        fmt_f64(p.bytes_sum)
    );
}

fn write_pending(out: &mut String, pending: &Option<Drift>) {
    match pending {
        None => out.push_str("null"),
        Some(Drift::Initial) => out.push_str("{\"kind\":\"initial\"}"),
        Some(Drift::Stable) => out.push_str("{\"kind\":\"stable\"}"),
        Some(Drift::Theta { from, to }) => {
            let _ = write!(
                out,
                "{{\"kind\":\"theta\",\"from\":{},\"to\":{}}}",
                fmt_f64(*from),
                fmt_f64(*to)
            );
        }
        Some(Drift::HotSet { overlap }) => {
            let _ = write!(
                out,
                "{{\"kind\":\"hot_set\",\"overlap\":{}}}",
                fmt_f64(*overlap)
            );
        }
    }
}

/// Render the engine's full state as one JSON document followed by the
/// FNV-64 checksum trailer line.
pub fn dump(engine: &ServeEngine) -> String {
    let (offered, ticks) = engine.clock_state();
    let journal_seq = engine.journal_seq();
    let mut out = format!(
        "{{\"v\":{STATE_VERSION},\"offered\":{offered},\"ticks\":{ticks},\
         \"journal_seq\":{journal_seq},\"tenants\":["
    );
    for (i, t) in engine.tenant_states().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "{{\"name\":\"{}\",\"offered\":{},\"dropped\":{},",
                "\"crash_dropped\":{},\"advice_rows\":{},\"pending\":"
            ),
            json_escape(&t.name),
            t.offered,
            t.dropped,
            t.crash_dropped,
            t.advice_rows,
        );
        write_pending(&mut out, &t.pending);
        out.push_str(",\"profiler\":");
        write_profiler(&mut out, &t.profiler);
        out.push('}');
    }
    out.push_str("]}");
    let check = crate::journal::fnv64(out.as_bytes());
    let _ = write!(out, "\n{CHECKSUM_PREFIX}{check:016x}\n");
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn bad(reason: impl Into<String>) -> ServeError {
    ServeError::Proto {
        line: 1,
        reason: reason.into(),
    }
}

fn req<'a>(value: &'a Json, key: &str, what: &str) -> Result<&'a Json, ServeError> {
    value
        .get(key)
        .ok_or_else(|| bad(format!("{what}: missing `{key}`")))
}

fn read_top(value: &Json, what: &str) -> Result<TopKState, ServeError> {
    let mut entries = Vec::new();
    for (i, e) in req(value, "entries", what)?
        .arr("`entries`")
        .map_err(bad)?
        .iter()
        .enumerate()
    {
        let cols = e.arr("entry").map_err(bad)?;
        if cols.len() != 6 {
            return Err(bad(format!("{what}: entry {i} must have 6 columns")));
        }
        entries.push(TopEntry {
            key: cols[0].u64("key").map_err(bad)?,
            count: cols[1].u64("count").map_err(bad)?,
            error: cols[2].u64("error").map_err(bad)?,
            reads: cols[3].u64("reads").map_err(bad)?,
            writes: cols[4].u64("writes").map_err(bad)?,
            size_ewma: cols[5].f64("size_ewma").map_err(bad)?,
        });
    }
    Ok(TopKState {
        entries,
        observed: req(value, "observed", what)?
            .u64("`observed`")
            .map_err(bad)?,
    })
}

fn read_sketch(value: &Json, what: &str) -> Result<SketchState, ServeError> {
    let mut counters = Vec::new();
    for c in req(value, "counters", what)?
        .arr("`counters`")
        .map_err(bad)?
    {
        let wide = c.u64("counter").map_err(bad)?;
        counters.push(
            u32::try_from(wide).map_err(|_| bad(format!("{what}: counter {wide} exceeds u32")))?,
        );
    }
    Ok(SketchState {
        width: req(value, "width", what)?.u64("`width`").map_err(bad)? as usize,
        depth: req(value, "depth", what)?.u64("`depth`").map_err(bad)? as usize,
        total: req(value, "total", what)?.u64("`total`").map_err(bad)?,
        counters,
    })
}

fn read_distinct(value: &Json, what: &str) -> Result<DistinctState, ServeError> {
    let mut bits = Vec::new();
    for w in req(value, "bits", what)?.arr("`bits`").map_err(bad)? {
        bits.push(w.u64("bitmap word").map_err(bad)?);
    }
    Ok(DistinctState { bits })
}

fn read_summary(value: &Json, what: &str) -> Result<Option<EpochSummary>, ServeError> {
    if *value == Json::Null {
        return Ok(None);
    }
    let theta = match req(value, "theta", what)? {
        Json::Null => None,
        t => Some(t.f64("`theta`").map_err(bad)?),
    };
    let mut hot_keys = Vec::new();
    for k in req(value, "hot_keys", what)?
        .arr("`hot_keys`")
        .map_err(bad)?
    {
        hot_keys.push(k.u64("hot key").map_err(bad)?);
    }
    Ok(Some(EpochSummary {
        index: req(value, "index", what)?.u64("`index`").map_err(bad)?,
        events: req(value, "events", what)?.u64("`events`").map_err(bad)?,
        theta,
        hot_keys,
    }))
}

fn read_tracker(value: &Json, what: &str) -> Result<TrackerState, ServeError> {
    Ok(TrackerState {
        window: read_top(req(value, "window", what)?, what)?,
        in_epoch: req(value, "in_epoch", what)?
            .u64("`in_epoch`")
            .map_err(bad)?,
        completed: req(value, "completed", what)?
            .u64("`completed`")
            .map_err(bad)?,
        idle_streak: req(value, "idle_streak", what)?
            .u64("`idle_streak`")
            .map_err(bad)?,
        reference: read_summary(req(value, "reference", what)?, what)?,
        last: read_summary(req(value, "last", what)?, what)?,
    })
}

fn read_profiler(value: &Json, what: &str) -> Result<ProfilerState, ServeError> {
    Ok(ProfilerState {
        top: read_top(req(value, "top", what)?, what)?,
        cm_reads: read_sketch(req(value, "cm_reads", what)?, what)?,
        cm_writes: read_sketch(req(value, "cm_writes", what)?, what)?,
        distinct: read_distinct(req(value, "distinct", what)?, what)?,
        skew: read_tracker(req(value, "skew", what)?, what)?,
        events: req(value, "events", what)?.u64("`events`").map_err(bad)?,
        reads: req(value, "reads", what)?.u64("`reads`").map_err(bad)?,
        writes: req(value, "writes", what)?.u64("`writes`").map_err(bad)?,
        bytes_sum: req(value, "bytes_sum", what)?
            .f64("`bytes_sum`")
            .map_err(bad)?,
    })
}

fn read_pending(value: &Json, what: &str) -> Result<Option<Drift>, ServeError> {
    if *value == Json::Null {
        return Ok(None);
    }
    let kind = req(value, "kind", what)?.str("`kind`").map_err(bad)?;
    Ok(Some(match kind {
        "initial" => Drift::Initial,
        "stable" => Drift::Stable,
        "theta" => Drift::Theta {
            from: req(value, "from", what)?.f64("`from`").map_err(bad)?,
            to: req(value, "to", what)?.f64("`to`").map_err(bad)?,
        },
        "hot_set" => Drift::HotSet {
            overlap: req(value, "overlap", what)?.f64("`overlap`").map_err(bad)?,
        },
        other => return Err(bad(format!("{what}: unknown pending drift `{other}`"))),
    }))
}

fn corrupt(path: &str, reason: impl Into<String>) -> ServeError {
    ServeError::Corrupt {
        path: path.to_string(),
        line: 1,
        reason: reason.into(),
    }
}

/// Parse a state dump produced by [`dump`]. `path` labels corruption
/// reports; use [`parse`] when there is no meaningful file name.
///
/// The checksum trailer is verified *before* the JSON is parsed, so a
/// bit flip anywhere in a v2 document reports as `corrupt` rather than
/// as a confusing schema error. v1 dumps (no trailer) stay loadable.
pub fn parse_named(input: &str, path: &str) -> Result<SavedState, ServeError> {
    let mut lines = input.lines();
    let doc = lines.next().unwrap_or("");
    let trailer = lines.find(|l| !l.trim().is_empty());
    if let Some(extra) = trailer {
        let Some(hex) = extra.strip_prefix(CHECKSUM_PREFIX) else {
            return Err(corrupt(path, format!("unexpected trailing line `{extra}`")));
        };
        let want = u64::from_str_radix(hex.trim(), 16)
            .map_err(|_| corrupt(path, format!("malformed checksum trailer `{extra}`")))?;
        let got = crate::journal::fnv64(doc.as_bytes());
        if got != want {
            return Err(corrupt(
                path,
                format!(
                    "checksum mismatch: document hashes to {got:016x}, trailer says {want:016x}"
                ),
            ));
        }
    }
    let value = Json::parse(doc).map_err(bad)?;
    let v = req(&value, "v", "state")?.u64("`v`").map_err(bad)?;
    if v > STATE_VERSION {
        return Err(bad(format!(
            "state version {v} too new (this build speaks <= {STATE_VERSION})"
        )));
    }
    if v == 0 {
        return Err(bad("unsupported state version 0"));
    }
    if v >= 2 && trailer.is_none() {
        return Err(corrupt(path, "missing checksum trailer (truncated dump?)"));
    }
    let journal_seq = match value.get("journal_seq") {
        Some(seq) => seq.u64("`journal_seq`").map_err(bad)?,
        None if v == 1 => 0,
        None => return Err(bad("state: missing `journal_seq`")),
    };
    let mut tenants = Vec::new();
    for t in req(&value, "tenants", "state")?
        .arr("`tenants`")
        .map_err(bad)?
    {
        let name = req(t, "name", "tenant")?.str("`name`").map_err(bad)?;
        let what = format!("tenant `{name}`");
        tenants.push(TenantState {
            name: name.to_string(),
            offered: req(t, "offered", &what)?.u64("`offered`").map_err(bad)?,
            dropped: req(t, "dropped", &what)?.u64("`dropped`").map_err(bad)?,
            crash_dropped: req(t, "crash_dropped", &what)?
                .u64("`crash_dropped`")
                .map_err(bad)?,
            advice_rows: req(t, "advice_rows", &what)?
                .u64("`advice_rows`")
                .map_err(bad)?,
            pending: read_pending(req(t, "pending", &what)?, &what)?,
            profiler: read_profiler(req(t, "profiler", &what)?, &what)?,
        });
    }
    Ok(SavedState {
        offered: req(&value, "offered", "state")?
            .u64("`offered`")
            .map_err(bad)?,
        ticks: req(&value, "ticks", "state")?.u64("`ticks`").map_err(bad)?,
        journal_seq,
        tenants,
    })
}

/// [`parse_named`] without a file name.
pub fn parse(input: &str) -> Result<SavedState, ServeError> {
    parse_named(input, "state")
}

/// Load a state dump from disk and warm-restore it into the engine
/// (including the journal watermark). Returns the tenant count.
pub fn reload(engine: &mut ServeEngine, path: &Path) -> Result<usize, ServeError> {
    let bytes = std::fs::read(path)
        .map_err(|e| ServeError::Io(format!("cannot read state '{}': {e}", path.display())))?;
    let input = String::from_utf8(bytes)
        .map_err(|_| corrupt(&path.display().to_string(), "dump is not UTF-8"))?;
    let saved = parse_named(&input, &path.display().to_string())?;
    let n = saved.tenants.len();
    engine.set_journal_seq(saved.journal_seq);
    engine.restore(saved.offered, saved.ticks, saved.tenants)?;
    Ok(n)
}

/// Write `content` to `path` atomically: temporary sibling + rename.
pub fn write_atomic(path: &Path, content: &str) -> Result<(), ServeError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, content)
        .map_err(|e| ServeError::Io(format!("cannot write '{}': {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| ServeError::Io(format!("cannot rename into '{}': {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeConfig, ServeEngine};
    use crate::proto::EventV1;
    use mnemo_stream::{DriftConfig, StreamConfig};
    use ycsb::Op;

    fn small_engine() -> ServeEngine {
        ServeEngine::new(ServeConfig {
            stream: StreamConfig {
                drift: DriftConfig {
                    epoch_len: 150,
                    ..DriftConfig::default()
                },
                ..StreamConfig::with_budget_bytes(16 * 1024)
            },
            tick_events: 300,
            calib_keys: 120,
            calib_requests: 1_500,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn feed(engine: &mut ServeEngine, tenant: &str, range: std::ops::Range<u64>) {
        for i in range {
            engine
                .ingest(EventV1 {
                    tenant: tenant.into(),
                    key: i * 13 % 80,
                    op: if i % 3 == 0 { Op::Update } else { Op::Read },
                    bytes: 64 + i % 200,
                })
                .unwrap();
        }
    }

    #[test]
    fn dump_load_dump_is_byte_identical() {
        let mut engine = small_engine();
        feed(&mut engine, "alpha", 0..700);
        feed(&mut engine, "beta", 0..450);
        let first = dump(&engine);
        let saved = parse(&first).unwrap();
        assert_eq!(saved.tenants.len(), 2);
        let mut restored = small_engine();
        restored
            .restore(saved.offered, saved.ticks, saved.tenants)
            .unwrap();
        assert_eq!(dump(&restored), first);
    }

    #[test]
    fn corrupt_dumps_are_rejected_with_reasons() {
        // Newer-than-us is a distinct, explicit message — not "corrupt".
        match parse("{\"v\":99,\"offered\":0,\"ticks\":0,\"journal_seq\":0,\"tenants\":[]}") {
            Err(ServeError::Proto { reason, .. }) => {
                assert!(reason.contains("too new"), "{reason}")
            }
            other => panic!("expected a too-new error, got {other:?}"),
        }
        assert!(parse("{\"v\":1,\"ticks\":0,\"tenants\":[]}").is_err());
        assert!(parse("not json").is_err());
    }

    #[test]
    fn checksum_trailer_rejects_bit_flips_as_corrupt() {
        let mut engine = small_engine();
        feed(&mut engine, "alpha", 0..400);
        let good = dump(&engine);
        assert!(parse(&good).is_ok());
        // Flip one byte inside the document.
        let mut flipped = good.clone().into_bytes();
        let at = good.find("\"offered\"").unwrap() + 12;
        flipped[at] ^= 0x01;
        let flipped = String::from_utf8(flipped).unwrap();
        match parse_named(&flipped, "state.json") {
            Err(ServeError::Corrupt { path, line, reason }) => {
                assert_eq!(path, "state.json");
                assert_eq!(line, 1);
                assert!(reason.contains("checksum mismatch"), "{reason}");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        // A v2 dump with the trailer torn off is corrupt, not loadable.
        let torn = good.lines().next().unwrap().to_string();
        assert!(matches!(parse(&torn), Err(ServeError::Corrupt { .. })));
    }

    #[test]
    fn checksum_less_v1_dumps_stay_loadable() {
        let mut engine = small_engine();
        feed(&mut engine, "alpha", 0..400);
        // Rewrite the current dump as a v1 document: no journal_seq, no
        // trailer — exactly what a pre-journal daemon produced.
        let v2 = dump(&engine);
        let doc = v2.lines().next().unwrap();
        let v1 = doc
            .replacen("\"v\":2", "\"v\":1", 1)
            .replacen(",\"journal_seq\":0", "", 1)
            + "\n";
        let saved = parse(&v1).unwrap();
        assert_eq!(saved.journal_seq, 0);
        assert_eq!(saved.tenants.len(), 1);
    }

    #[test]
    fn atomic_write_replaces_not_tears() {
        let dir = std::env::temp_dir().join("mnemo-serve-state-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomic(&path, "first\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        std::fs::remove_file(&path).unwrap();
    }
}
