//! # mnemo-serve — the long-lived multi-tenant advisor daemon
//!
//! Everything before this crate answers one consultation and exits. A
//! production deployment instead runs Mnemo as a sidecar: many tenant
//! workloads stream access events at it continuously, each wants fresh
//! placement advice within a bounded delay, and the box's FastMem is a
//! *shared* pool that must be re-split as tenants come, go, and drift.
//! This crate is that daemon, layered as:
//!
//! * [`proto`] — the versioned JSONL wire protocol, deterministic
//!   response rows, and length-delimited socket framing;
//! * [`engine`] — the tenant registry: one warm
//!   [`mnemo_stream::StreamProfiler`] per tenant behind a bounded
//!   queue, a scheduler epoch driven by the offered-event count (drains
//!   run one-job-per-tenant on the bounded [`mnemo_par::Pool`]),
//!   never-absent degraded-tagged advising via
//!   `Consultation::recommend_resilient`, and periodic shared-capacity
//!   re-planning through [`mnemo::multi::allocate_shared`];
//! * [`state`] — crash-safe state dumps (atomic write, exact float and
//!   u64 round-trip) for warm restarts.
//!
//! The same engine serves three front ends: [`run_replay`] (a JSONL
//! file on the virtual clock — byte-identical transcripts for any
//! `--jobs N`), stdin line mode, and a Unix-domain socket
//! ([`ServeLoop`]) with framed requests, where [`follow`] streams every
//! emitted row to `mnemo watch --follow`.
//!
//! # Example
//!
//! ```
//! use mnemo_serve::{engine::ServeConfig, run_replay};
//! use mnemo_stream::{DriftConfig, StreamConfig};
//!
//! let config = ServeConfig {
//!     stream: StreamConfig {
//!         drift: DriftConfig { epoch_len: 100, ..DriftConfig::default() },
//!         ..StreamConfig::with_budget_bytes(16 * 1024)
//!     },
//!     tick_events: 200,
//!     calib_keys: 100,
//!     calib_requests: 1_000,
//!     ..ServeConfig::default()
//! };
//! let mut input = String::new();
//! for i in 0..300u64 {
//!     input.push_str(&format!(
//!         "{{\"v\":1,\"tenant\":\"a\",\"key\":{},\"op\":\"read\",\"bytes\":64}}\n",
//!         i % 40
//!     ));
//! }
//! let outcome = run_replay(&input, config).unwrap();
//! assert!(outcome.transcript.contains("\"row\":\"advise\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod engine;
pub mod journal;
pub mod proto;
pub mod state;

pub use engine::{ServeConfig, ServeEngine};
pub use journal::{JournalConfig, JournalStats};
pub use proto::{EventV1, Request, ServeError};

use mnemo_faults::Backoff;
use mnemo_telemetry::Snapshot;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

/// Result of replaying a request log through a fresh engine.
pub struct ReplayOutcome {
    /// Every emitted row, newline-joined with a trailing newline (empty
    /// when nothing was emitted).
    pub transcript: String,
    /// The engine after the replay (for state dumps and telemetry).
    pub engine: ServeEngine,
}

/// Drive `input` (newline-framed v1 requests; blank lines and `#`
/// comments skipped) through a fresh engine on the virtual clock. The
/// transcript is a pure function of `(input, config)` — byte-identical
/// for any worker count.
pub fn run_replay(input: &str, config: ServeConfig) -> Result<ReplayOutcome, ServeError> {
    let mut engine = ServeEngine::new(config)?;
    let rows = replay_into(&mut engine, input)?;
    Ok(ReplayOutcome {
        transcript: to_transcript(rows),
        engine,
    })
}

/// [`run_replay`] against an existing engine (used for warm restarts:
/// reload state, then continue the log). Runs the engine's final flush
/// at end of input.
pub fn replay_into(engine: &mut ServeEngine, input: &str) -> Result<Vec<String>, ServeError> {
    let mut rows = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match proto::parse_request(line, i + 1)? {
            Request::Ingest(event) => rows.extend(engine.ingest(event)?),
            Request::Advise { tenant } => rows.push(engine.advise_now(&tenant)),
            Request::Status => rows.push(engine.status_row()),
            Request::Snapshot => rows.push(engine.snapshot_row()),
            Request::Follow => {} // meaningless without a connection
            Request::Shutdown => break,
        }
    }
    rows.extend(engine.finish());
    Ok(rows)
}

fn to_transcript(rows: Vec<String>) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Write-ahead journal policy for the socket loop.
#[derive(Debug, Clone)]
pub struct JournalPolicy {
    /// Journal directory (segments live as `wal-*.log` inside it).
    pub dir: PathBuf,
    /// Segment sizing and sync cadence.
    pub config: JournalConfig,
}

/// Periodic state-dump policy for the socket loop.
#[derive(Debug, Clone, Default)]
pub struct StatePolicy {
    /// Dump target; `None` disables dumping.
    pub path: Option<PathBuf>,
    /// Dump every N scheduler ticks (0 behaves as 1).
    pub every_ticks: u64,
    /// Write-ahead journal; `None` disables journaling.
    pub journal: Option<JournalPolicy>,
}

struct ClientConn {
    stream: UnixStream,
    buf: proto::FrameBuffer,
    frames_seen: usize,
    follow: bool,
    dead: bool,
}

/// The socket front end: a single-threaded, steppable poll loop over a
/// Unix-domain listener. Requests and responses are length-framed
/// ([`proto::encode_frame`]); `follow` subscribers additionally receive
/// every emitted row.
pub struct ServeLoop {
    listener: UnixListener,
    engine: ServeEngine,
    clients: Vec<ClientConn>,
    state: StatePolicy,
    writer: Option<journal::JournalWriter>,
    last_dumped_tick: u64,
    done: bool,
}

/// What [`recover_engine`] did on a warm restart.
pub struct Recovered {
    /// The journal writer, open at the recovered sequence (`None` when
    /// journaling is disabled).
    pub writer: Option<journal::JournalWriter>,
    /// Journal records replayed through the engine.
    pub replayed: u64,
    /// Torn tail records truncated.
    pub truncated: u64,
    /// Journal segments quarantined.
    pub quarantined: u64,
    /// Whether the state dump was rejected as corrupt (recovery then
    /// degraded to a full journal replay).
    pub dump_corrupt: bool,
}

/// Warm-restore `engine` from an optional dump plus the journal tail,
/// and open the journal writer at the recovered sequence. Shared by the
/// socket loop and the chaos harness so both restart paths are the same
/// code. Recovery is total: a corrupt dump degrades to a full journal
/// replay (counted, never fatal); corrupt journal segments quarantine.
pub fn recover_engine(
    engine: &mut ServeEngine,
    state: &StatePolicy,
) -> Result<Recovered, ServeError> {
    let mut dump_corrupt = false;
    if let Some(dump_path) = state.path.as_ref().filter(|p| p.exists()) {
        match state::reload(engine, dump_path) {
            Ok(_) => {}
            Err(ServeError::Corrupt { .. }) if state.journal.is_some() => {
                // The dump is damaged but the journal holds the full
                // history (segments are never pruned): degrade to a
                // cold engine plus a complete replay.
                engine.note("serve.state.corrupt", 1);
                engine.set_journal_seq(0);
                dump_corrupt = true;
            }
            Err(e) => return Err(e),
        }
    }
    let Some(policy) = state.journal.as_ref() else {
        return Ok(Recovered {
            writer: None,
            replayed: 0,
            truncated: 0,
            quarantined: 0,
            dump_corrupt,
        });
    };
    let recovery = journal::recover(&policy.dir, engine.journal_seq())?;
    engine.note("serve.journal.truncated", recovery.truncated);
    engine.note("serve.journal.quarantined", recovery.quarantined);
    let mut replayed = 0u64;
    for (seq, payload) in &recovery.frames {
        // The journal only ever holds admitted requests, so a parse
        // failure here means damage the checksum missed; skip it and
        // count, keeping recovery total.
        match proto::parse_request(payload, *seq as usize) {
            Ok(Request::Ingest(event)) => {
                engine.ingest(event)?;
            }
            Ok(Request::Advise { tenant }) => {
                engine.advise_now(&tenant);
            }
            Ok(_) | Err(_) => {
                engine.note("serve.journal.replay_rejected", 1);
            }
        }
        engine.set_journal_seq(*seq);
        replayed += 1;
    }
    engine.note("serve.journal.replayed", replayed);
    engine.set_journal_seq(recovery.last_seq);
    let faults = engine
        .config()
        .faults
        .as_ref()
        .map(mnemo_faults::FaultPlan::storage_faults);
    let writer =
        journal::JournalWriter::open(&policy.dir, policy.config, recovery.last_seq + 1, faults)?;
    Ok(Recovered {
        writer: Some(writer),
        replayed,
        truncated: recovery.truncated,
        quarantined: recovery.quarantined,
        dump_corrupt,
    })
}

impl ServeLoop {
    /// Bind `path` (removing a stale socket file first) and build the
    /// engine. Warm-restores from `state.path` if it exists, then
    /// replays the journal tail past the dump's watermark.
    pub fn bind(
        path: &Path,
        config: ServeConfig,
        state: StatePolicy,
    ) -> Result<ServeLoop, ServeError> {
        if path.exists() {
            std::fs::remove_file(path).map_err(|e| {
                ServeError::Io(format!(
                    "cannot remove stale socket '{}': {e}",
                    path.display()
                ))
            })?;
        }
        let listener = UnixListener::bind(path)
            .map_err(|e| ServeError::Io(format!("cannot bind '{}': {e}", path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(format!("cannot set nonblocking: {e}")))?;
        let mut engine = ServeEngine::new(config)?;
        let recovered = recover_engine(&mut engine, &state)?;
        let last_dumped_tick = engine.ticks();
        Ok(ServeLoop {
            listener,
            engine,
            clients: Vec::new(),
            state,
            writer: recovered.writer,
            last_dumped_tick,
            done: false,
        })
    }

    /// Journal a mutating request before it is applied (write-ahead
    /// discipline: a crash after the append replays it, a crash before
    /// loses an unacknowledged request — never a half-applied one).
    fn journal_append(&mut self, payload: &str) -> Result<(), ServeError> {
        let Some(writer) = self.writer.as_mut() else {
            return Ok(());
        };
        let seq = writer.append(self.engine.now_ns(), payload)?;
        self.engine.set_journal_seq(seq);
        self.engine.note("serve.journal.appended", 1);
        Ok(())
    }

    /// The engine (for inspection in tests and for final dumps).
    pub fn engine(&self) -> &ServeEngine {
        &self.engine
    }

    /// Whether a `shutdown` command has been processed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Accept pending connections, read every readable client, handle
    /// complete frames, and fan emitted rows out to followers. Returns
    /// whether any work happened (callers sleep briefly when idle).
    pub fn poll_once(&mut self) -> Result<bool, ServeError> {
        let mut active = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| ServeError::Io(format!("cannot set nonblocking: {e}")))?;
                    self.clients.push(ClientConn {
                        stream,
                        buf: proto::FrameBuffer::new(),
                        frames_seen: 0,
                        follow: false,
                        dead: false,
                    });
                    active = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(ServeError::Io(format!("accept failed: {e}"))),
            }
        }
        let mut broadcast: Vec<String> = Vec::new();
        for i in 0..self.clients.len() {
            let mut chunk = [0u8; 4096];
            loop {
                match self.clients[i].stream.read(&mut chunk) {
                    Ok(0) => {
                        self.clients[i].dead = true;
                        break;
                    }
                    Ok(n) => {
                        self.clients[i].buf.extend(&chunk[..n]);
                        active = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        self.clients[i].dead = true;
                        break;
                    }
                }
            }
            loop {
                let frame_no = self.clients[i].frames_seen + 1;
                let frame = match self.clients[i].buf.next_frame(frame_no) {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(e) => {
                        // Protocol errors answer the offender and close
                        // it; the daemon keeps serving everyone else.
                        let _ = self.clients[i]
                            .stream
                            .write_all(&proto::encode_frame(&proto::error_row(&e.to_string())));
                        self.clients[i].dead = true;
                        break;
                    }
                };
                self.clients[i].frames_seen += 1;
                active = true;
                match proto::parse_request(&frame, frame_no) {
                    Err(e) => {
                        let _ = self.clients[i]
                            .stream
                            .write_all(&proto::encode_frame(&proto::error_row(&e.to_string())));
                    }
                    Ok(Request::Ingest(event)) => {
                        self.journal_append(&frame)?;
                        broadcast.extend(self.engine.ingest(event)?);
                        // Dump checks run per-ingest, not per-batch: a
                        // dump is only consistent with its journal
                        // watermark at the instant a tick completes
                        // (queues drained, nothing applied past the
                        // watermark).
                        self.maybe_dump_state()?;
                    }
                    Ok(Request::Advise { tenant }) => {
                        self.journal_append(&frame)?;
                        let row = self.engine.advise_now(&tenant);
                        self.reply(i, &row);
                        broadcast.push(row);
                    }
                    Ok(Request::Status) => {
                        let row = self.engine.status_row();
                        self.reply(i, &row);
                    }
                    Ok(Request::Snapshot) => {
                        let row = self.engine.snapshot_row();
                        self.reply(i, &row);
                    }
                    Ok(Request::Follow) => self.clients[i].follow = true,
                    Ok(Request::Shutdown) => self.done = true,
                }
            }
        }
        if !broadcast.is_empty() {
            for client in &mut self.clients {
                if client.follow && !client.dead {
                    for row in &broadcast {
                        if client.stream.write_all(&proto::encode_frame(row)).is_err() {
                            client.dead = true;
                            break;
                        }
                    }
                }
            }
        }
        self.clients.retain(|c| !c.dead);
        Ok(active)
    }

    fn reply(&mut self, client: usize, row: &str) {
        if self.clients[client]
            .stream
            .write_all(&proto::encode_frame(row))
            .is_err()
        {
            self.clients[client].dead = true;
        }
    }

    fn maybe_dump_state(&mut self) -> Result<(), ServeError> {
        let Some(path) = self.state.path.clone() else {
            return Ok(());
        };
        let every = self.state.every_ticks.max(1);
        let ticks = self.engine.ticks();
        if ticks > self.last_dumped_tick && ticks % every == 0 {
            if !self.sync_journal()? {
                // The journal tail is not durable (simulated fsync
                // failure): a dump now would claim a watermark the disk
                // cannot back. Skip; the next due tick retries.
                self.engine.note("serve.state.dump_skipped", 1);
                return Ok(());
            }
            state::write_atomic(&path, &state::dump(&self.engine))?;
            self.last_dumped_tick = ticks;
        }
        Ok(())
    }

    /// Force the journal durable. Returns false when a simulated fsync
    /// failure left unsynced records (dumps must not proceed).
    fn sync_journal(&mut self) -> Result<bool, ServeError> {
        match self.writer.as_mut() {
            None => Ok(true),
            Some(writer) => writer.sync(self.engine.now_ns()),
        }
    }

    /// Poll until shutdown, sleeping briefly when idle. On exit, flushes
    /// the engine and writes a final state dump if configured.
    pub fn run(&mut self) -> Result<Vec<String>, ServeError> {
        while !self.done {
            if !self.poll_once()? {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let rows = self.engine.finish();
        if let Some(path) = self.state.path.clone() {
            if self.sync_journal()? {
                state::write_atomic(&path, &state::dump(&self.engine))?;
            } else {
                self.engine.note("serve.state.dump_skipped", 1);
            }
        }
        Ok(rows)
    }
}

/// Connect to a running serve socket, subscribe with `follow`, and copy
/// rows (one per line) into `out` until `max_rows` (when `Some`) or the
/// daemon closes the connection. Returns the number of rows written.
pub fn follow(path: &Path, max_rows: Option<u64>, out: &mut dyn Write) -> Result<u64, ServeError> {
    let mut stream = UnixStream::connect(path)
        .map_err(|e| ServeError::Io(format!("cannot connect to '{}': {e}", path.display())))?;
    stream
        .write_all(&proto::encode_frame("{\"v\":1,\"cmd\":\"follow\"}"))
        .map_err(|e| ServeError::Io(format!("cannot subscribe: {e}")))?;
    let mut buf = proto::FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    let mut rows = 0u64;
    'read: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServeError::Io(format!("read failed: {e}"))),
        };
        buf.extend(&chunk[..n]);
        while let Some(row) = buf.next_frame(rows as usize + 1)? {
            writeln!(out, "{row}").map_err(|e| ServeError::Io(format!("write failed: {e}")))?;
            rows += 1;
            if max_rows.is_some_and(|limit| rows >= limit) {
                break 'read;
            }
        }
    }
    Ok(rows)
}

/// [`follow`] with reconnection: when the daemon socket drops mid-tail
/// (restart, crash, transient read error), reconnect with the faults
/// crate's capped exponential [`Backoff`] instead of exiting on the
/// first read error. Progress (a received row) resets the retry budget.
/// The tail ends cleanly once `max_rows` rows are written, or — after
/// at least one successful connection — once the daemon stays away for
/// a whole backoff budget (it shut down for good). A daemon that was
/// never reachable is still an error. Returns the rows written.
pub fn follow_retry(
    path: &Path,
    max_rows: Option<u64>,
    out: &mut dyn Write,
) -> Result<u64, ServeError> {
    let backoff = Backoff::default_policy();
    let mut rows = 0u64;
    let mut attempt = 0u32;
    let mut connected_once = false;
    loop {
        let stream = match UnixStream::connect(path) {
            Ok(s) => s,
            Err(e) => {
                if attempt >= backoff.max_retries {
                    return if connected_once {
                        Ok(rows)
                    } else {
                        Err(ServeError::Io(format!(
                            "cannot connect to '{}': {e}",
                            path.display()
                        )))
                    };
                }
                std::thread::sleep(std::time::Duration::from_nanos(
                    backoff.delay_ns(attempt) as u64
                ));
                attempt += 1;
                continue;
            }
        };
        connected_once = true;
        let before = rows;
        if tail_stream(stream, max_rows, &mut rows, out)? {
            return Ok(rows);
        }
        if rows > before {
            attempt = 0;
        }
    }
}

/// One `follow` session over an established connection. `Ok(true)`
/// means the row limit was reached; `Ok(false)` means the connection
/// dropped (close or read error) and the caller may reconnect. Only
/// local write failures are fatal.
fn tail_stream(
    mut stream: UnixStream,
    max_rows: Option<u64>,
    rows: &mut u64,
    out: &mut dyn Write,
) -> Result<bool, ServeError> {
    if stream
        .write_all(&proto::encode_frame("{\"v\":1,\"cmd\":\"follow\"}"))
        .is_err()
    {
        return Ok(false);
    }
    let mut buf = proto::FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Ok(false),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Ok(false),
        };
        buf.extend(&chunk[..n]);
        loop {
            match buf.next_frame(*rows as usize + 1) {
                Ok(Some(row)) => {
                    writeln!(out, "{row}")
                        .map_err(|e| ServeError::Io(format!("write failed: {e}")))?;
                    *rows += 1;
                    if max_rows.is_some_and(|limit| *rows >= limit) {
                        return Ok(true);
                    }
                }
                Ok(None) => break,
                // A garbled frame from a dying daemon: drop the
                // connection and let the reconnect start clean.
                Err(_) => return Ok(false),
            }
        }
    }
}

/// Snapshots accumulated by a replayed engine, for telemetry export.
pub fn snapshots(outcome: &ReplayOutcome) -> &[Snapshot] {
    outcome.engine.snapshots()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemo_stream::{DriftConfig, StreamConfig};

    fn small_config() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                drift: DriftConfig {
                    epoch_len: 150,
                    ..DriftConfig::default()
                },
                ..StreamConfig::with_budget_bytes(16 * 1024)
            },
            tick_events: 300,
            calib_keys: 120,
            calib_requests: 1_500,
            ..ServeConfig::default()
        }
    }

    fn sample_input(tenants: &[&str], events_each: u64) -> String {
        let mut input = String::new();
        for i in 0..events_each {
            for t in tenants {
                input.push_str(&format!(
                    "{{\"v\":1,\"tenant\":\"{t}\",\"key\":{},\"op\":\"{}\",\"bytes\":{}}}\n",
                    i * 17 % 70,
                    if i % 3 == 0 { "update" } else { "read" },
                    80 + i % 160,
                ));
            }
        }
        input
    }

    #[test]
    fn replay_emits_advice_and_is_deterministic() {
        let input = sample_input(&["alpha", "beta"], 400);
        let a = run_replay(&input, small_config()).unwrap();
        let b = run_replay(&input, small_config()).unwrap();
        assert_eq!(a.transcript, b.transcript);
        assert!(a.transcript.contains("\"row\":\"advise\""));
        assert!(a.transcript.contains("\"row\":\"replan\""));
    }

    #[test]
    fn replay_reports_protocol_errors_with_line_numbers() {
        let input = "{\"v\":1,\"tenant\":\"a\",\"key\":1,\"op\":\"read\",\"bytes\":1}\nnot json\n";
        match run_replay(input, small_config()) {
            Err(ServeError::Proto { line, .. }) => assert_eq!(line, 2),
            Err(other) => panic!("expected protocol error, got {other}"),
            Ok(_) => panic!("expected protocol error, got a transcript"),
        }
    }

    #[test]
    fn socket_round_trip_single_threaded() {
        let dir = std::env::temp_dir().join("mnemo-serve-sock-test");
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("mnemo.sock");
        let mut served = ServeLoop::bind(&sock, small_config(), StatePolicy::default()).unwrap();
        let mut client = UnixStream::connect(&sock).unwrap();
        client.set_nonblocking(true).unwrap();
        client
            .write_all(&proto::encode_frame("{\"v\":1,\"cmd\":\"status\"}"))
            .unwrap();
        let mut buf = proto::FrameBuffer::new();
        let mut reply = None;
        for _ in 0..100 {
            served.poll_once().unwrap();
            let mut chunk = [0u8; 4096];
            match client.read(&mut chunk) {
                Ok(n) => buf.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) => panic!("client read: {e}"),
            }
            if let Some(frame) = buf.next_frame(1).unwrap() {
                reply = Some(frame);
                break;
            }
        }
        let reply = reply.expect("no status reply");
        assert!(reply.contains("\"row\":\"status\""), "{reply}");
        client
            .write_all(&proto::encode_frame("{\"v\":1,\"cmd\":\"shutdown\"}"))
            .unwrap();
        for _ in 0..100 {
            served.poll_once().unwrap();
            if served.is_done() {
                break;
            }
        }
        assert!(served.is_done());
        std::fs::remove_file(&sock).unwrap();
    }
}
