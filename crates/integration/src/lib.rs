//! Integration-test host crate.
//!
//! The actual test sources live at the workspace root (`/tests`), wired
//! in through explicit `[[test]]` targets so they can span every crate
//! of the workspace. This library intentionally exports nothing.
