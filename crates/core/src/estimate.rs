//! The Estimate Engine (Fig. 6, component 3).
//!
//! Takes the performance baselines (via a fitted [`PerfModel`]), the
//! access pattern from the Pattern Engine and the cost-reduction factor
//! `p`, and calculates the workload's estimated throughput "for
//! incremental tiering of the key space across FastMem and SlowMem",
//! correlating each tiering with its system cost.
//!
//! The computation is incremental: starting from the all-SlowMem
//! estimate, each key moved to FastMem subtracts its promotion benefit —
//! one O(1) update per row, O(n) for the whole curve. This is the
//! "instantaneous" analytical step of §V-B.

use crate::curve::{CurveRow, EstimateCurve};
use crate::model::PerfModel;
use crate::pattern::{KeyStats, PatternEngine};
use cloudcost::CostModel;
use hybridmem::MemTier;
use ycsb::Op;

/// The Estimate Engine.
#[derive(Debug, Clone)]
pub struct EstimateEngine {
    model: PerfModel,
    cost: CostModel,
    cache_correction: Option<u64>,
}

impl EstimateEngine {
    /// Build from a fitted model and a cost model.
    pub fn new(model: PerfModel, cost: CostModel) -> EstimateEngine {
        EstimateEngine {
            model,
            cost,
            cache_correction: None,
        }
    }

    /// Enable the **cache-aware correction** (an extension beyond the
    /// paper's model). The baseline-average model attributes the measured
    /// Fast/Slow gap to keys in proportion to their access counts; but
    /// keys resident in the server's LLC are served tier-blind, so
    /// promoting them recovers almost nothing. Given the LLC capacity,
    /// the correction redistributes the *measured total* gap: keys whose
    /// cumulative hot-first footprint fits the LLC contribute only their
    /// cold misses, and the remainder of the gap shifts onto
    /// non-resident keys. Endpoint estimates are preserved exactly.
    ///
    /// The correction is deliberately **conservative**: it assumes
    /// resident keys gain nothing beyond cold misses, which under-credits
    /// stores that re-read values through uncached paths (DynamoDB-like
    /// deserialisation). Its errors are therefore pessimistically biased —
    /// recommendations over-provision FastMem rather than violate the
    /// SLO — and it pays off where the plain model over-promises (sharp
    /// zipfian heads whose hot keys are LLC-resident).
    pub fn with_cache_correction(mut self, llc_bytes: u64) -> EstimateEngine {
        self.cache_correction = Some(llc_bytes);
        self
    }

    /// The performance model in use.
    pub fn model(&self) -> &PerfModel {
        &self.model
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Estimated runtime of one key's requests when its value sits in
    /// `tier`.
    fn key_runtime(&self, stats: &KeyStats, tier: MemTier) -> f64 {
        stats.reads as f64 * self.model.predict(tier, Op::Read, stats.bytes)
            + stats.writes as f64 * self.model.predict(tier, Op::Update, stats.bytes)
    }

    /// Per-key promotion deltas (estimated runtime saved by moving each
    /// key to FastMem), after the optional cache-aware redistribution,
    /// plus the all-FastMem runtime total. The deltas always sum to the
    /// model's full Slow-Fast runtime gap, so the curve endpoints are
    /// independent of the correction.
    pub fn key_deltas(&self, pattern: &PatternEngine) -> (f64, Vec<f64>) {
        // Per-key model predictions are independent; chunk them across
        // the bounded pool. The reduction stays sequential over the
        // index-ordered vector, so the totals (and therefore the curve)
        // are bit-identical to the single-threaded path.
        let pool = mnemo_par::Pool::current();
        let fast_runtimes =
            pool.map_slice(pattern.stats(), |_, s| self.key_runtime(s, MemTier::Fast)); // mnemo-lint: allow(D007, "predict's sum is a fixed-length dot product inside one task; per-key results gather in key order")
        let fast_total: f64 = fast_runtimes.iter().sum();
        // mnemo-lint: allow(D007, "same per-key dot product as the fast pass; deltas gather in key order regardless of workers")
        let mut deltas: Vec<f64> = pool.map_slice(pattern.stats(), |k, s| {
            self.key_runtime(s, MemTier::Slow) - fast_runtimes[k]
        });
        if let Some(llc) = self.cache_correction {
            // Keys resident in the LLC (hot-first by access density until
            // the capacity is filled) only miss on their cold accesses.
            let mut density_order: Vec<u64> = (0..pattern.key_count() as u64).collect();
            density_order.sort_by(|&a, &b| {
                let sa = pattern.key(a);
                let sb = pattern.key(b);
                let da = sa.accesses() as f64 / sa.bytes.max(1) as f64;
                let db = sb.accesses() as f64 / sb.bytes.max(1) as f64;
                db.total_cmp(&da).then(a.cmp(&b))
            });
            let mut factors = vec![1.0f64; deltas.len()];
            let mut resident_bytes = 0u64;
            for &k in &density_order {
                let stats = pattern.key(k);
                if resident_bytes + stats.bytes > llc {
                    break;
                }
                resident_bytes += stats.bytes;
                // One cold miss out of `accesses` reaches the device.
                factors[k as usize] = 1.0 / stats.accesses().max(1) as f64;
            }
            let raw_total: f64 = deltas.iter().sum();
            let damped_total: f64 = deltas.iter().zip(&factors).map(|(d, f)| d * f).sum();
            if damped_total > 0.0 && raw_total > 0.0 {
                let scale = raw_total / damped_total;
                for (d, f) in deltas.iter_mut().zip(&factors) {
                    *d *= f * scale;
                }
            }
        }
        (fast_total, deltas)
    }

    /// Estimated total runtime for an arbitrary FastMem key set.
    pub fn runtime_for<F: Fn(u64) -> bool>(&self, pattern: &PatternEngine, in_fast: F) -> f64 {
        let (fast_total, deltas) = self.key_deltas(pattern);
        fast_total
            + deltas
                .iter()
                .enumerate()
                .filter(|(k, _)| !in_fast(*k as u64))
                .map(|(_, d)| d)
                .sum::<f64>()
    }

    /// Produce the full estimate curve for a key ordering (every prefix
    /// of `order` in FastMem, the suffix in SlowMem).
    pub fn curve(&self, pattern: &PatternEngine, order: &[u64]) -> EstimateCurve {
        pattern
            .validate_order(order)
            // mnemo-lint: allow(R001, "a non-permutation ordering is a caller programming error; surfacing it eagerly beats silently mis-estimating")
            .expect("ordering must be a permutation of the key space");
        let requests: usize = pattern.total_requests() as usize;
        let total_bytes = pattern.total_bytes();
        let (fast_total, deltas) = self.key_deltas(pattern);
        let throughput = |runtime_ns: f64| {
            if runtime_ns <= 0.0 {
                0.0
            } else {
                requests as f64 / (runtime_ns / 1e9)
            }
        };
        // Two passes. The prefix state — runtime after each promotion,
        // cumulative FastMem bytes — is an inherently sequential fold of
        // two scalar ops per key, so it is computed inline; the per-row
        // work (cost model, throughput conversion) is then filled in
        // parallel from that state. Each row applies exactly the
        // operations the sequential loop applied to the same prefix
        // values, so the curve is bit-identical for any worker count.
        let mut runtime = fast_total + deltas.iter().sum::<f64>();
        let mut fast_bytes = 0u64;
        let mut prefix_state = Vec::with_capacity(order.len() + 1);
        prefix_state.push((runtime, fast_bytes));
        for &key in order {
            runtime -= deltas[key as usize];
            fast_bytes += pattern.key(key).bytes;
            prefix_state.push((runtime, fast_bytes));
        }
        let rows = mnemo_par::Pool::current().map(order.len() + 1, |i| {
            let (runtime, fast_bytes) = prefix_state[i];
            CurveRow {
                prefix: i,
                key: if i == 0 { None } else { Some(order[i - 1]) },
                fast_bytes,
                cost_reduction: self.cost.reduction(fast_bytes, total_bytes - fast_bytes),
                est_runtime_ns: runtime,
                est_throughput_ops_s: throughput(runtime),
            }
        });
        EstimateCurve {
            rows,
            requests,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::sensitivity::SensitivityEngine;
    use kvsim::StoreKind;
    use ycsb::{Trace, WorkloadSpec};

    fn setup(spec: WorkloadSpec) -> (EstimateEngine, PatternEngine, Trace) {
        let t = spec.generate(6);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let m = PerfModel::fit(ModelKind::GlobalAverage, &b, &t.sizes);
        (
            EstimateEngine::new(m, CostModel::default()),
            PatternEngine::analyze(&t),
            t,
        )
    }

    #[test]
    fn curve_shape_and_endpoints() {
        let (eng, pattern, t) = setup(WorkloadSpec::trending().scaled(150, 2_000));
        let order = pattern.hotness_order();
        let curve = eng.curve(&pattern, &order);
        assert_eq!(curve.rows.len(), t.keys() as usize + 1);
        // Cost runs from p to 1.
        assert!((curve.slow_only().cost_reduction - 0.2).abs() < 1e-9);
        assert!((curve.fast_only().cost_reduction - 1.0).abs() < 1e-9);
        // Throughput strictly improves from slow-only to fast-only.
        assert!(curve.fast_only().est_throughput_ops_s > curve.slow_only().est_throughput_ops_s);
        // Cost is monotone along the curve.
        for w in curve.rows.windows(2) {
            assert!(w[1].cost_reduction >= w[0].cost_reduction);
            assert!(w[1].fast_bytes >= w[0].fast_bytes);
        }
    }

    #[test]
    fn endpoints_match_measured_baselines() {
        let t = WorkloadSpec::timeline().scaled(150, 2_000).generate(6);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let m = PerfModel::fit(ModelKind::GlobalAverage, &b, &t.sizes);
        let eng = EstimateEngine::new(m, CostModel::default());
        let pattern = PatternEngine::analyze(&t);
        let curve = eng.curve(&pattern, pattern.touch_order());
        // With the global-average model, the endpoint estimates equal the
        // measured baseline runtimes by construction.
        // (Tolerance: the measured runtime rounds each request to whole
        // nanoseconds; the estimate works from unrounded totals.)
        let rel_fast =
            (curve.fast_only().est_runtime_ns - b.fast.runtime_ns).abs() / b.fast.runtime_ns;
        let rel_slow =
            (curve.slow_only().est_runtime_ns - b.slow.runtime_ns).abs() / b.slow.runtime_ns;
        assert!(rel_fast < 1e-5, "fast endpoint error {rel_fast}");
        assert!(rel_slow < 1e-5, "slow endpoint error {rel_slow}");
    }

    #[test]
    fn hotness_order_dominates_reverse_order() {
        let (eng, pattern, _) = setup(WorkloadSpec::trending().scaled(150, 2_000));
        let hot = pattern.hotness_order();
        let mut cold = hot.clone();
        cold.reverse();
        let hot_curve = eng.curve(&pattern, &hot);
        let cold_curve = eng.curve(&pattern, &cold);
        // At every interior prefix, promoting hot keys first is at least
        // as good as promoting cold keys first.
        for i in 1..hot_curve.rows.len() - 1 {
            assert!(
                hot_curve.rows[i].est_throughput_ops_s
                    >= cold_curve.rows[i].est_throughput_ops_s - 1e-6,
                "prefix {i}"
            );
        }
        // And strictly better somewhere in the middle.
        let mid = hot_curve.rows.len() / 2;
        assert!(
            hot_curve.rows[mid].est_throughput_ops_s > cold_curve.rows[mid].est_throughput_ops_s
        );
    }

    #[test]
    fn incremental_matches_direct_computation() {
        let (eng, pattern, _) = setup(WorkloadSpec::edit_thumbnail().scaled(100, 1_500));
        let order = pattern.hotness_order();
        let curve = eng.curve(&pattern, &order);
        for prefix in [0usize, 13, 50, 100] {
            let fast: std::collections::HashSet<u64> = order[..prefix].iter().copied().collect();
            let direct = eng.runtime_for(&pattern, |k| fast.contains(&k));
            let incr = curve.rows[prefix].est_runtime_ns;
            assert!(
                (direct - incr).abs() / direct < 1e-9,
                "prefix {prefix}: direct {direct} vs incremental {incr}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_invalid_ordering() {
        let (eng, pattern, _) = setup(WorkloadSpec::trending().scaled(50, 500));
        let _ = eng.curve(&pattern, &[0, 0, 1]);
    }

    #[test]
    fn cache_correction_preserves_endpoints_and_total_gap() {
        let (eng, pattern, t) = setup(WorkloadSpec::timeline().scaled(200, 4_000));
        let plain = eng.clone();
        let corrected = eng.with_cache_correction(t.dataset_bytes() / 10);
        let order = pattern.hotness_order();
        let a = plain.curve(&pattern, &order);
        let b = corrected.curve(&pattern, &order);
        // Endpoints must be identical: the correction only redistributes
        // the measured gap across keys.
        let close = |x: f64, y: f64| (x - y).abs() / x.max(1.0) < 1e-9;
        assert!(close(
            a.slow_only().est_runtime_ns,
            b.slow_only().est_runtime_ns
        ));
        assert!(close(
            a.fast_only().est_runtime_ns,
            b.fast_only().est_runtime_ns
        ));
        // But interior rows differ: the corrected curve credits the
        // cache-resident hottest keys far less.
        let mid = a.rows.len() / 20; // early in the hot head
        assert!(
            b.rows[mid].est_runtime_ns > a.rows[mid].est_runtime_ns,
            "corrected early-prefix estimate must be more conservative"
        );
    }

    #[test]
    fn cache_correction_damps_resident_head_benefit() {
        let (eng, pattern, t) = setup(WorkloadSpec::timeline().scaled(200, 4_000));
        let llc = t.dataset_bytes() / 10;
        let (_, plain) = eng.clone().key_deltas(&pattern);
        let (_, corrected) = eng.with_cache_correction(llc).key_deltas(&pattern);
        // Totals match.
        let sum_a: f64 = plain.iter().sum();
        let sum_b: f64 = corrected.iter().sum();
        assert!((sum_a - sum_b).abs() / sum_a < 1e-9);
        // The single hottest key's delta is strongly damped.
        let hottest = pattern.hotness_order()[0] as usize;
        assert!(
            corrected[hottest] < plain[hottest] / 5.0,
            "hottest key delta {} vs plain {}",
            corrected[hottest],
            plain[hottest]
        );
    }

    #[test]
    fn cache_correction_with_zero_llc_is_identity() {
        let (eng, pattern, _) = setup(WorkloadSpec::trending().scaled(100, 1_000));
        let order = pattern.hotness_order();
        let a = eng.clone().curve(&pattern, &order);
        let b = eng.with_cache_correction(0).curve(&pattern, &order);
        assert_eq!(a, b);
    }
}
