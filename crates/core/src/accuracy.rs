//! Estimate-vs-measured error evaluation (Fig. 8a).
//!
//! "To justify the accuracy of Mnemo we keep track of the percentage
//! error `(r - e) / r * 100%` between the real performance points `r` and
//! their corresponding estimate `e`, across all experiments."

use crate::advisor::Consultation;
use crate::placement::PlacementEngine;
use hybridmem::clock::NoiseConfig;
use hybridmem::HybridSpec;
use kvsim::{EngineError, Server, StoreKind};
use serde::{Deserialize, Serialize};
use ycsb::Trace;

/// One comparison point: a capacity configuration measured for real
/// (simulated) and estimated by the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Keys in FastMem.
    pub prefix: usize,
    /// Cost reduction factor at this configuration.
    pub cost_reduction: f64,
    /// Measured throughput (ops/s).
    pub measured_ops_s: f64,
    /// Estimated throughput (ops/s).
    pub estimated_ops_s: f64,
    /// Measured average latency (ns).
    pub measured_avg_latency_ns: f64,
    /// Estimated average latency (ns).
    pub estimated_avg_latency_ns: f64,
    /// Measured tail latencies `(p95, p99)` in ns — the paper reports
    /// these but does not estimate them (Figs. 8d/8e).
    pub measured_tail_ns: (f64, f64),
}

impl EvalPoint {
    /// The paper's signed percentage error on throughput.
    pub fn error_pct(&self) -> f64 {
        if self.measured_ops_s == 0.0 {
            return 0.0;
        }
        (self.measured_ops_s - self.estimated_ops_s) / self.measured_ops_s * 100.0
    }

    /// Percentage error on average latency.
    pub fn latency_error_pct(&self) -> f64 {
        if self.measured_avg_latency_ns == 0.0 {
            return 0.0;
        }
        (self.measured_avg_latency_ns - self.estimated_avg_latency_ns)
            / self.measured_avg_latency_ns
            * 100.0
    }
}

/// Boxplot-style summary of a set of (absolute) percentage errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Smallest |error|.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median — the paper's headline metric (0.07%).
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest |error|.
    pub max: f64,
    /// Mean |error|.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl ErrorStats {
    /// Summarise a set of signed percentage errors by magnitude.
    pub fn from_errors(errors: &[f64]) -> ErrorStats {
        assert!(!errors.is_empty(), "need at least one error sample");
        let mut mags: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        mags.sort_by(f64::total_cmp);
        let q = |f: f64| -> f64 {
            let pos = f * (mags.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                mags[lo]
            } else {
                mags[lo] + (mags[hi] - mags[lo]) * (pos - lo as f64)
            }
        };
        ErrorStats {
            min: mags[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            // mnemo-lint: allow(R001, "from_errors asserts non-emptiness on entry, so the sorted magnitudes have a last element")
            max: *mags.last().expect("nonempty"),
            mean: mags.iter().sum::<f64>() / mags.len() as f64,
            count: mags.len(),
        }
    }
}

/// Evaluate a consultation's estimate against measured runs at `points`
/// evenly spaced prefixes along the curve (endpoints included).
///
/// `spec`/`noise` configure the *measurement* runs; using a different
/// noise seed than the baselines mirrors the paper's separate
/// measurement campaigns.
pub fn evaluate(
    store: StoreKind,
    trace: &Trace,
    consultation: &Consultation,
    spec: &HybridSpec,
    noise: NoiseConfig,
    points: usize,
) -> Result<Vec<EvalPoint>, EngineError> {
    assert!(points >= 2, "need at least both endpoints");
    let keys = consultation.order.len();
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let prefix = i * keys / (points - 1);
        let row = consultation.curve.rows[prefix];
        let placement = PlacementEngine::placement_for(&consultation.order, &row);
        let mut noise_i = noise;
        noise_i.seed = noise.seed.wrapping_add(0x9E37 * i as u64 + 17);
        let mut server = Server::build_with(store, spec.clone(), noise_i, trace, placement)?;
        let report = server.run(trace);
        out.push(EvalPoint {
            prefix,
            cost_reduction: row.cost_reduction,
            measured_ops_s: report.throughput_ops_s(),
            estimated_ops_s: row.est_throughput_ops_s,
            measured_avg_latency_ns: report.avg_latency_ns(),
            estimated_avg_latency_ns: row.est_avg_latency_ns(consultation.curve.requests),
            measured_tail_ns: (report.latency_quantile(0.95), report.latency_quantile(0.99)),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorConfig};
    use ycsb::WorkloadSpec;

    fn eval(noise_sigma: f64) -> Vec<EvalPoint> {
        let trace = WorkloadSpec::trending().scaled(150, 2_500).generate(21);
        let mut config = AdvisorConfig::default();
        // Keep the LLC:dataset proportion of the paper's testbed
        // (12 MB : 1 GB); at test scale the full-size LLC would cache the
        // entire hot set and distort both measurement and estimate.
        config.spec.cache.capacity_bytes = trace.dataset_bytes() / 85;
        config.noise = if noise_sigma > 0.0 {
            NoiseConfig {
                relative_sigma: noise_sigma,
                seed: 1,
            }
        } else {
            NoiseConfig::disabled()
        };
        let consultation = Advisor::new(config.clone())
            .consult(StoreKind::Redis, &trace)
            .unwrap();
        evaluate(
            StoreKind::Redis,
            &trace,
            &consultation,
            &config.spec,
            NoiseConfig {
                relative_sigma: noise_sigma,
                seed: 99,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn noiseless_estimate_is_subpercent_accurate() {
        let points = eval(0.0);
        let errors: Vec<f64> = points.iter().map(EvalPoint::error_pct).collect();
        let stats = ErrorStats::from_errors(&errors);
        // Without measurement noise the only estimate error comes from
        // cache effects the simple model cannot see.
        assert!(stats.median < 1.0, "median error {:.4}%", stats.median);
        assert!(stats.max < 5.0, "max error {:.4}%", stats.max);
    }

    #[test]
    fn noisy_estimate_stays_accurate() {
        let points = eval(0.02);
        let errors: Vec<f64> = points.iter().map(EvalPoint::error_pct).collect();
        let stats = ErrorStats::from_errors(&errors);
        assert!(stats.median < 1.5, "median error {:.4}%", stats.median);
    }

    #[test]
    fn latency_estimate_tracks_measurement() {
        let points = eval(0.0);
        for p in &points {
            assert!(
                p.latency_error_pct().abs() < 5.0,
                "prefix {}: {}",
                p.prefix,
                p.latency_error_pct()
            );
            // Tails are above the average.
            assert!(p.measured_tail_ns.1 >= p.measured_tail_ns.0);
            assert!(p.measured_tail_ns.0 >= p.measured_avg_latency_ns * 0.5);
        }
    }

    #[test]
    fn eval_points_cover_both_endpoints() {
        let points = eval(0.0);
        assert_eq!(points.first().unwrap().prefix, 0);
        assert_eq!(points.last().unwrap().prefix, 150);
        // Measured throughput grows with FastMem share.
        assert!(points.last().unwrap().measured_ops_s > points.first().unwrap().measured_ops_s);
    }

    #[test]
    fn error_stats_quartiles() {
        let stats = ErrorStats::from_errors(&[1.0, -2.0, 3.0, -4.0, 5.0]);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.median, 3.0);
        assert_eq!(stats.max, 5.0);
        assert_eq!(stats.count, 5);
        assert!((stats.mean - 3.0).abs() < 1e-12);
        assert_eq!(stats.q1, 2.0);
        assert_eq!(stats.q3, 4.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn error_stats_reject_empty() {
        let _ = ErrorStats::from_errors(&[]);
    }
}
