//! The end-to-end consultant: baselines → pattern → estimate → pick.
//!
//! This is the "Mnemo user" workflow of Fig. 2: run the Sensitivity
//! Engine once, analyse the pattern, produce the estimate curve, and
//! choose "the line that satisfies its performance requirements and price
//! allowance". [`Advisor::consult`] does the first three;
//! [`Consultation::recommend`] does the choosing (e.g. the 10% slowdown
//! SLO of Fig. 9).

use crate::curve::{CurveRow, EstimateCurve};
use crate::estimate::EstimateEngine;
use crate::model::{ModelKind, PerfModel};
use crate::pattern::PatternEngine;
use crate::sensitivity::{Baselines, SensitivityEngine};
use crate::tiering::MnemoT;
use cloudcost::CostModel;
use hybridmem::clock::NoiseConfig;
use hybridmem::HybridSpec;
use kvsim::{EngineError, StoreKind};
use serde::{Deserialize, Serialize};
use ycsb::Trace;

/// Which key ordering the curve follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OrderingKind {
    /// Standalone Mnemo (Fig. 2a): keys in first-touch order.
    TouchOrder,
    /// Keys sorted hottest-first (the "Trending transformation" of §V-A).
    Hotness,
    /// MnemoT (Fig. 2c): weight = accesses / size.
    #[default]
    MnemoT,
}

/// Advisor configuration.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Testbed specification for the baseline runs.
    pub spec: HybridSpec,
    /// Measurement noise for the baseline runs.
    pub noise: NoiseConfig,
    /// SlowMem:FastMem per-byte price factor `p`.
    pub price_factor: f64,
    /// Estimation model variant.
    pub model: ModelKind,
    /// Key ordering for incremental sizing.
    pub ordering: OrderingKind,
    /// Enable the cache-aware delta redistribution (an extension beyond
    /// the paper), passing the server's LLC capacity. `None` keeps the
    /// paper's plain model.
    pub cache_correction: Option<u64>,
    /// Measure the baselines under this fault plan (degradation windows
    /// and crash schedules installed on the baseline servers), so the
    /// estimate curve — and every recommendation derived from it —
    /// describes the *faulted* testbed. `None` keeps the healthy testbed.
    pub fault_plan: Option<mnemo_faults::FaultPlan>,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            spec: HybridSpec::paper_testbed(),
            noise: NoiseConfig::disabled(),
            price_factor: cloudcost::model::DEFAULT_PRICE_FACTOR,
            model: ModelKind::GlobalAverage,
            ordering: OrderingKind::MnemoT,
            cache_correction: None,
            fault_plan: None,
        }
    }
}

impl AdvisorConfig {
    /// The default configuration with the cache-aware correction enabled
    /// for this config's own testbed LLC.
    pub fn cache_aware(mut self) -> AdvisorConfig {
        self.cache_correction = Some(self.spec.cache.capacity_bytes);
        self
    }
}

/// One recommended configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Keys placed in FastMem.
    pub prefix: usize,
    /// FastMem bytes required.
    pub fast_bytes: u64,
    /// FastMem share of the total dataset, in `[0, 1]`.
    pub fast_ratio: f64,
    /// Memory cost relative to FastMem-only.
    pub cost_reduction: f64,
    /// Estimated throughput at this configuration (ops/s).
    pub est_throughput_ops_s: f64,
    /// Estimated slowdown vs the all-FastMem configuration, in `[0, 1]`.
    pub est_slowdown: f64,
}

/// Why a resilient recommendation could not simply comply with the SLO.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DegradedReason {
    /// The requested slowdown budget was outside `[0, 1]` and was clamped
    /// before searching (a plain [`Consultation::recommend`] would panic
    /// on such input).
    SloClamped {
        /// The budget as requested.
        requested: f64,
        /// The budget actually used.
        clamped: f64,
    },
    /// No split on the (possibly faulted) curve reaches the budget
    /// against the reference throughput; the best-performing row is
    /// returned together with the slowdown it actually achieves.
    SloUnattainable {
        /// The requested slowdown budget.
        requested: f64,
        /// The slowdown of the returned nearest-feasible configuration.
        achievable: f64,
    },
    /// The curve has no rows (empty workload); a zero-sized placement is
    /// returned.
    EmptyCurve,
}

/// A recommendation that is always produced: compliant when possible,
/// otherwise the nearest-feasible configuration tagged with the
/// machine-readable reason it is degraded. This is the advisor's
/// fault-tolerant output contract — under any fault profile it never
/// panics and never returns nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilientRecommendation {
    /// The recommended configuration.
    pub recommendation: Recommendation,
    /// `None` when the SLO is met outright; otherwise why (and how far
    /// off) the advisor had to degrade.
    pub degraded: Option<DegradedReason>,
}

impl ResilientRecommendation {
    /// Whether the recommendation meets the requested SLO outright.
    pub fn is_compliant(&self) -> bool {
        self.degraded.is_none()
    }
}

/// The full result of one consultation.
#[derive(Debug, Clone)]
pub struct Consultation {
    /// Measured baselines.
    pub baselines: Baselines,
    /// Analysed access pattern.
    pub pattern: PatternEngine,
    /// The fitted performance model.
    pub model: PerfModel,
    /// The key ordering the curve follows.
    pub order: Vec<u64>,
    /// The estimate curve.
    pub curve: EstimateCurve,
}

impl Consultation {
    /// A tail-latency estimator over this consultation's model and
    /// pattern (extension; see [`crate::tail`]).
    pub fn tail_estimator(&self) -> crate::tail::TailEstimator<'_> {
        crate::tail::TailEstimator::new(&self.model, &self.pattern)
    }
}

impl Consultation {
    /// Build a recommendation from a curve row, with the slowdown column
    /// measured against `reference_ops_s`.
    fn rec_from_row(&self, row: &CurveRow, reference_ops_s: f64) -> Recommendation {
        let total = self.curve.total_bytes.max(1);
        Recommendation {
            prefix: row.prefix,
            fast_bytes: row.fast_bytes,
            fast_ratio: row.fast_bytes as f64 / total as f64,
            cost_reduction: row.cost_reduction,
            est_throughput_ops_s: row.est_throughput_ops_s,
            est_slowdown: if reference_ops_s > 0.0 {
                1.0 - row.est_throughput_ops_s / reference_ops_s
            } else {
                0.0
            },
        }
    }

    /// The cheapest configuration within `slowdown` (e.g. `0.10`) of
    /// FastMem-only performance. `None` only for empty workloads.
    pub fn recommend(&self, slowdown: f64) -> Option<Recommendation> {
        let row = self.curve.cheapest_within_slowdown(slowdown)?;
        let best = self.curve.fast_only().est_throughput_ops_s;
        Some(self.rec_from_row(row, best))
    }

    /// Degraded-mode recommend: never panics and never returns nothing.
    /// The slowdown budget is measured against this curve's own
    /// all-FastMem throughput; see [`Self::recommend_resilient_vs`] for
    /// an external (e.g. healthy-testbed) reference.
    pub fn recommend_resilient(&self, slowdown: f64) -> ResilientRecommendation {
        self.recommend_resilient_vs(slowdown, None)
    }

    /// [`Self::recommend_resilient`] with an explicit reference
    /// throughput the budget is measured against. When this consultation
    /// was produced under a fault plan, passing the *healthy* testbed's
    /// all-FastMem throughput asks "which split keeps us within the SLO
    /// of normal operation?" — and when even all-FastMem cannot (the
    /// faulted devices are simply too slow), the answer is the
    /// best-performing split tagged [`DegradedReason::SloUnattainable`]
    /// with the slowdown it actually achieves.
    pub fn recommend_resilient_vs(
        &self,
        slowdown: f64,
        reference_ops_s: Option<f64>,
    ) -> ResilientRecommendation {
        if self.curve.rows.is_empty() {
            return ResilientRecommendation {
                recommendation: Recommendation {
                    prefix: 0,
                    fast_bytes: 0,
                    fast_ratio: 0.0,
                    cost_reduction: 0.0,
                    est_throughput_ops_s: 0.0,
                    est_slowdown: 0.0,
                },
                degraded: Some(DegradedReason::EmptyCurve),
            };
        }
        let clamped = if slowdown.is_finite() {
            slowdown.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let reference = reference_ops_s
            .filter(|r| r.is_finite() && *r > 0.0)
            .unwrap_or(self.curve.fast_only().est_throughput_ops_s);
        let target = reference * (1.0 - clamped);
        if let Some(row) = self
            .curve
            .rows
            .iter()
            .find(|r| r.est_throughput_ops_s >= target)
        {
            let degraded = (clamped != slowdown).then_some(DegradedReason::SloClamped {
                requested: slowdown,
                clamped,
            });
            return ResilientRecommendation {
                recommendation: self.rec_from_row(row, reference),
                degraded,
            };
        }
        // Nearest-feasible: the best-performing row, cheapest among ties
        // (strict `>` keeps the first maximum).
        let mut best = self.curve.fast_only();
        let mut best_thr = f64::NEG_INFINITY;
        for r in &self.curve.rows {
            if r.est_throughput_ops_s.is_finite() && r.est_throughput_ops_s > best_thr {
                best_thr = r.est_throughput_ops_s;
                best = r;
            }
        }
        let recommendation = self.rec_from_row(best, reference);
        ResilientRecommendation {
            recommendation,
            degraded: Some(DegradedReason::SloUnattainable {
                requested: slowdown,
                achievable: recommendation.est_slowdown,
            }),
        }
    }

    /// The cost/performance frontier for several SLOs at once: one
    /// recommendation per slowdown budget, in the given order.
    pub fn frontier(&self, slowdowns: &[f64]) -> Vec<Recommendation> {
        slowdowns
            .iter()
            .filter_map(|&s| self.recommend(s))
            .collect()
    }

    /// Re-price the curve for a different SlowMem price factor `p`
    /// *without* re-measuring or re-estimating: performance columns are
    /// untouched, only the cost-reduction column changes. This is the
    /// "what if NVM costs 30% of DRAM instead of 20%?" question.
    pub fn repriced(&self, price_factor: f64) -> EstimateCurve {
        let cost = CostModel::new(price_factor);
        let mut curve = self.curve.clone();
        for row in &mut curve.rows {
            row.cost_reduction = cost.reduction(row.fast_bytes, curve.total_bytes - row.fast_bytes);
        }
        curve
    }

    /// Recommend by a *tail-latency* SLO instead of a throughput one: the
    /// cheapest prefix whose estimated `quantile` (e.g. 0.99) service
    /// time stays at or below `max_latency_ns`. Uses the mixture-model
    /// tail estimator (extension, [`crate::tail`]); the search is
    /// logarithmic in the key count because tails fall monotonically as
    /// FastMem grows along the ordering. Returns `None` when even the
    /// all-FastMem configuration misses the budget.
    pub fn recommend_by_tail(&self, quantile: f64, max_latency_ns: f64) -> Option<Recommendation> {
        let tails = self.tail_estimator();
        let n = self.order.len();
        if tails.quantile_at_prefix(&self.order, n, quantile) > max_latency_ns {
            return None;
        }
        // Binary search the smallest prefix meeting the budget.
        let (mut lo, mut hi) = (0usize, n);
        if tails.quantile_at_prefix(&self.order, 0, quantile) <= max_latency_ns {
            hi = 0;
        }
        while lo < hi {
            let mid = (lo + hi) / 2;
            if tails.quantile_at_prefix(&self.order, mid, quantile) <= max_latency_ns {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let row = self.curve.rows[hi];
        let best = self.curve.fast_only().est_throughput_ops_s;
        Some(self.rec_from_row(&row, best))
    }
}

/// The advisor: configuration + the engines it drives.
#[derive(Debug, Clone)]
pub struct Advisor {
    config: AdvisorConfig,
}

impl Advisor {
    /// Build an advisor.
    pub fn new(config: AdvisorConfig) -> Advisor {
        Advisor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// Run the full pipeline for one store and workload.
    pub fn consult(&self, store: StoreKind, trace: &Trace) -> Result<Consultation, EngineError> {
        let mut sensitivity = SensitivityEngine::new(self.config.spec.clone(), self.config.noise);
        if let Some(plan) = &self.config.fault_plan {
            sensitivity = sensitivity.with_fault_plan(plan.clone());
        }
        let baselines = sensitivity.measure(store, trace)?;
        self.consult_with_baselines(baselines, trace)
    }

    /// Verify a recommendation by *executing* the recommended placement
    /// (a third measured run, beyond Mnemo's two baselines) and return
    /// `(measured throughput, measured slowdown vs the FastMem-only
    /// baseline)`. This is the acceptance check the examples and
    /// integration tests perform; it is not part of the paper's flow —
    /// Mnemo's pitch is precisely that the estimate makes it unnecessary.
    pub fn verify(
        &self,
        store: StoreKind,
        trace: &Trace,
        consultation: &Consultation,
        recommendation: &Recommendation,
    ) -> Result<(f64, f64), EngineError> {
        let placement = crate::placement::PlacementEngine::placement_for(
            &consultation.order,
            &consultation.curve.rows[recommendation.prefix],
        );
        let mut server = kvsim::Server::build_with(
            store,
            self.config.spec.clone(),
            self.config.noise,
            trace,
            placement,
        )?;
        let measured = server.run(trace).throughput_ops_s();
        let best = consultation.baselines.fast.throughput_ops_s();
        Ok((
            measured,
            if best > 0.0 {
                1.0 - measured / best
            } else {
                0.0
            },
        ))
    }

    /// Run the pipeline from pre-measured baselines (lets callers reuse
    /// one Sensitivity run across model/ordering variants).
    pub fn consult_with_baselines(
        &self,
        baselines: Baselines,
        trace: &Trace,
    ) -> Result<Consultation, EngineError> {
        self.consult_with_pattern(baselines, PatternEngine::analyze(trace))
    }

    /// Run the pipeline from pre-measured baselines and an externally
    /// supplied pattern — the entry point for *streaming* profilers,
    /// which hold no trace, only sketch-reconstructed per-key statistics
    /// ([`PatternEngine::from_stats`]). The per-key sizes the estimation
    /// model fits against come from the pattern itself.
    pub fn consult_with_pattern(
        &self,
        baselines: Baselines,
        pattern: PatternEngine,
    ) -> Result<Consultation, EngineError> {
        let order = match self.config.ordering {
            OrderingKind::TouchOrder => pattern.touch_order().to_vec(),
            OrderingKind::Hotness => pattern.hotness_order(),
            OrderingKind::MnemoT => MnemoT::weight_order(&pattern),
        };
        let sizes: Vec<u64> = pattern.stats().iter().map(|s| s.bytes).collect();
        let model = PerfModel::fit(self.config.model, &baselines, &sizes);
        let mut estimator =
            EstimateEngine::new(model.clone(), CostModel::new(self.config.price_factor));
        if let Some(llc) = self.config.cache_correction {
            estimator = estimator.with_cache_correction(llc);
        }
        let curve = estimator.curve(&pattern, &order);
        Ok(Consultation {
            baselines,
            pattern,
            model,
            order,
            curve,
        })
    }

    /// Fit a bare allocator demand from baselines and a pattern —
    /// the model fit only, skipping the ordering and the O(k²)
    /// estimate curve a full consultation builds. The shared-budget
    /// allocator ([`crate::multi::allocate_demands`]) needs nothing
    /// more, so high-frequency re-planners use this path.
    pub fn demand_with_pattern(
        &self,
        baselines: Baselines,
        pattern: PatternEngine,
    ) -> crate::multi::TenantDemand {
        let sizes: Vec<u64> = pattern.stats().iter().map(|s| s.bytes).collect();
        let model = PerfModel::fit(self.config.model, &baselines, &sizes);
        crate::multi::TenantDemand { model, pattern }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::WorkloadSpec;

    fn consult(store: StoreKind, spec: WorkloadSpec) -> Consultation {
        let trace = spec.generate(12);
        Advisor::new(AdvisorConfig::default())
            .consult(store, &trace)
            .unwrap()
    }

    #[test]
    fn trending_allows_large_savings_on_redis() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(300, 4_000),
        );
        let rec = c.recommend(0.10).unwrap();
        // The paper's headline: hot-set workloads reach well under half
        // of the FastMem-only cost within a 10% slowdown.
        assert!(
            rec.cost_reduction < 0.6,
            "cost reduction {:.3}",
            rec.cost_reduction
        );
        assert!(rec.est_slowdown <= 0.10 + 1e-9);
        assert!(rec.fast_ratio < 0.5, "fast ratio {:.3}", rec.fast_ratio);
    }

    #[test]
    fn memcached_runs_fully_on_slowmem() {
        let c = consult(
            StoreKind::Memcached,
            WorkloadSpec::trending().scaled(300, 4_000),
        );
        let rec = c.recommend(0.10).unwrap();
        // Fig. 9: memcached is non-sensitive -> maximum savings (the 0.2
        // floor).
        assert!(
            (rec.cost_reduction - 0.2).abs() < 0.05,
            "memcached cost {:.3}",
            rec.cost_reduction
        );
    }

    #[test]
    fn dynamo_needs_more_fastmem_than_redis() {
        let spec = WorkloadSpec::timeline().scaled(300, 4_000);
        let redis = consult(StoreKind::Redis, spec.clone())
            .recommend(0.10)
            .unwrap();
        let dynamo = consult(StoreKind::Dynamo, spec).recommend(0.10).unwrap();
        assert!(
            dynamo.cost_reduction > redis.cost_reduction,
            "dynamo {:.3} must cost more than redis {:.3}",
            dynamo.cost_reduction,
            redis.cost_reduction
        );
    }

    #[test]
    fn news_feed_saves_less_than_trending() {
        let trending = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(300, 6_000),
        )
        .recommend(0.10);
        let news = consult(
            StoreKind::Redis,
            WorkloadSpec::news_feed().scaled(300, 6_000),
        )
        .recommend(0.10);
        let (t, n) = (trending.unwrap(), news.unwrap());
        assert!(
            n.cost_reduction > t.cost_reduction,
            "news feed {:.3} vs trending {:.3}",
            n.cost_reduction,
            t.cost_reduction
        );
    }

    #[test]
    fn tighter_slo_costs_more() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(200, 3_000),
        );
        let strict = c.recommend(0.02).unwrap();
        let loose = c.recommend(0.30).unwrap();
        assert!(strict.cost_reduction >= loose.cost_reduction);
        assert!(strict.prefix >= loose.prefix);
    }

    #[test]
    fn orderings_produce_valid_curves() {
        let trace = WorkloadSpec::timeline().scaled(150, 2_000).generate(1);
        for ordering in [
            OrderingKind::TouchOrder,
            OrderingKind::Hotness,
            OrderingKind::MnemoT,
        ] {
            let config = AdvisorConfig {
                ordering,
                ..AdvisorConfig::default()
            };
            let c = Advisor::new(config)
                .consult(StoreKind::Redis, &trace)
                .unwrap();
            assert_eq!(c.curve.rows.len(), 151);
            assert!(c.recommend(0.10).is_some());
        }
    }

    #[test]
    fn frontier_is_monotone() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(200, 3_000),
        );
        let f = c.frontier(&[0.01, 0.05, 0.10, 0.25]);
        assert_eq!(f.len(), 4);
        for w in f.windows(2) {
            assert!(
                w[0].cost_reduction >= w[1].cost_reduction - 1e-12,
                "tighter SLO costs more"
            );
            assert!(w[0].fast_bytes >= w[1].fast_bytes);
        }
    }

    #[test]
    fn verify_confirms_recommendations_within_slo() {
        let trace = WorkloadSpec::trending().scaled(200, 2_500).generate(9);
        let mut config = AdvisorConfig::default();
        config.spec.cache.capacity_bytes = (trace.dataset_bytes() / 85).max(1 << 16);
        let advisor = Advisor::new(config);
        let c = advisor.consult(StoreKind::Redis, &trace).unwrap();
        let rec = c.recommend(0.10).unwrap();
        let (measured, slowdown) = advisor.verify(StoreKind::Redis, &trace, &c, &rec).unwrap();
        assert!(measured > 0.0);
        assert!(
            slowdown <= 0.10 + 0.03,
            "measured slowdown {slowdown:.3} should honour the SLO (est {:.3})",
            rec.est_slowdown
        );
    }

    #[test]
    fn tail_slo_recommendation_meets_budget_minimally() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(250, 3_000),
        );
        let tails = c.tail_estimator();
        let slow_p99 = tails.quantile_at_prefix(&c.order, 0, 0.99);
        let fast_p99 = tails.quantile_at_prefix(&c.order, c.order.len(), 0.99);
        assert!(fast_p99 < slow_p99);
        let budget = (slow_p99 + fast_p99) / 2.0;
        let rec = c
            .recommend_by_tail(0.99, budget)
            .expect("attainable budget");
        // Meets the budget...
        assert!(tails.quantile_at_prefix(&c.order, rec.prefix, 0.99) <= budget);
        // ...minimally (one key less misses it), unless already at 0.
        if rec.prefix > 0 {
            assert!(tails.quantile_at_prefix(&c.order, rec.prefix - 1, 0.99) > budget);
        }
        // Impossible budgets are rejected.
        assert!(c.recommend_by_tail(0.99, fast_p99 * 0.5).is_none());
        // Trivial budgets cost nothing.
        let trivial = c.recommend_by_tail(0.99, slow_p99 * 2.0).unwrap();
        assert_eq!(trivial.prefix, 0);
    }

    #[test]
    fn resilient_recommendation_matches_plain_when_attainable() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(200, 3_000),
        );
        let plain = c.recommend(0.10).unwrap();
        let res = c.recommend_resilient(0.10);
        assert!(res.is_compliant());
        assert_eq!(res.recommendation, plain);
    }

    #[test]
    fn resilient_clamps_out_of_range_budgets_instead_of_panicking() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(150, 2_000),
        );
        let res = c.recommend_resilient(1.7);
        match res.degraded {
            Some(DegradedReason::SloClamped { requested, clamped }) => {
                assert_eq!(requested, 1.7);
                assert_eq!(clamped, 1.0);
            }
            other => panic!("expected SloClamped, got {other:?}"),
        }
        // A full-slack budget admits the all-SlowMem row.
        assert_eq!(res.recommendation.prefix, 0);
        // Negative budgets clamp to zero slack -> all-FastMem.
        let strict = c.recommend_resilient(-0.5);
        assert!(matches!(
            strict.degraded,
            Some(DegradedReason::SloClamped { .. })
        ));
        // Zero slack admits only rows at or above the all-fast
        // throughput (the curve is not strictly monotone, so a cheaper
        // row may already match it).
        assert!(
            strict.recommendation.est_throughput_ops_s >= c.curve.fast_only().est_throughput_ops_s
        );
    }

    #[test]
    fn faulted_consultation_degrades_with_machine_readable_reason() {
        use mnemo_faults::{FaultEvent, FaultPlan};
        let trace = WorkloadSpec::trending().scaled(200, 2_500).generate(9);
        let mut config = AdvisorConfig::default();
        // Shrink the LLC so device speed dominates (the full 12 MB cache
        // would absorb this reduced-scale dataset and mask the fault).
        config.spec.cache.capacity_bytes = (trace.dataset_bytes() / 85).max(1 << 16);
        let healthy = Advisor::new(config.clone())
            .consult(StoreKind::Redis, &trace)
            .unwrap();
        let nominal = healthy.curve.fast_only().est_throughput_ops_s;

        // Both tiers run at 50x latency / 1/50 bandwidth for the whole
        // run: even all-FastMem cannot stay within 10% of nominal.
        let mut plan = FaultPlan::new(5);
        for tier in [hybridmem::MemTier::Fast, hybridmem::MemTier::Slow] {
            plan = plan
                .with(FaultEvent::LatencySpike {
                    tier: tier.id(),
                    start_ns: 0,
                    end_ns: u128::MAX,
                    factor: 50.0,
                })
                .with(FaultEvent::BandwidthThrottle {
                    tier: tier.id(),
                    start_ns: 0,
                    end_ns: u128::MAX,
                    factor: 0.02,
                });
        }
        config.fault_plan = Some(plan);
        let faulted = Advisor::new(config)
            .consult(StoreKind::Redis, &trace)
            .unwrap();
        assert!(
            faulted.curve.fast_only().est_throughput_ops_s < nominal * 0.9,
            "the fault must make the nominal SLO unattainable"
        );

        let res = faulted.recommend_resilient_vs(0.10, Some(nominal));
        match res.degraded {
            Some(DegradedReason::SloUnattainable {
                requested,
                achievable,
            }) => {
                assert_eq!(requested, 0.10);
                assert!(achievable > 0.10, "achievable {achievable:.3}");
                assert!(
                    (achievable - res.recommendation.est_slowdown).abs() < 1e-12,
                    "the tag reports the returned row's own slowdown"
                );
            }
            other => panic!("expected SloUnattainable, got {other:?}"),
        }
        // Nearest-feasible = the best-performing split on the faulted
        // curve (nothing beats it, so nothing else can be closer).
        let best_thr = faulted
            .curve
            .rows
            .iter()
            .map(|r| r.est_throughput_ops_s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(res.recommendation.est_throughput_ops_s, best_thr);
        // Against its own faulted baseline the budget is attainable.
        assert!(faulted.recommend_resilient(0.10).is_compliant());
    }

    #[test]
    fn repricing_changes_cost_only() {
        let c = consult(
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(150, 1_500),
        );
        let repriced = c.repriced(0.5);
        assert_eq!(repriced.rows.len(), c.curve.rows.len());
        for (a, b) in c.curve.rows.iter().zip(&repriced.rows) {
            assert_eq!(a.est_throughput_ops_s, b.est_throughput_ops_s);
            assert_eq!(a.fast_bytes, b.fast_bytes);
        }
        // Floor moves from 0.2 to 0.5; full cost stays 1.0.
        assert!((repriced.slow_only().cost_reduction - 0.5).abs() < 1e-12);
        assert!((repriced.fast_only().cost_reduction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn consult_with_baselines_reuses_measurement() {
        let trace = WorkloadSpec::trending().scaled(100, 1_000).generate(2);
        let advisor = Advisor::new(AdvisorConfig::default());
        let c1 = advisor.consult(StoreKind::Redis, &trace).unwrap();
        let c2 = advisor
            .consult_with_baselines(c1.baselines.clone(), &trace)
            .unwrap();
        assert_eq!(c1.curve, c2.curve);
    }

    #[test]
    fn consult_with_pattern_matches_trace_path_on_exact_stats() {
        let trace = WorkloadSpec::trending().scaled(100, 1_000).generate(2);
        let advisor = Advisor::new(AdvisorConfig::default());
        let c1 = advisor.consult(StoreKind::Redis, &trace).unwrap();
        // An exact pattern fed through the streaming entry point must
        // reproduce the offline curve (the default MnemoT ordering does
        // not depend on touch order).
        let exact = PatternEngine::from_stats(c1.pattern.stats().to_vec());
        let c2 = advisor
            .consult_with_pattern(c1.baselines.clone(), exact)
            .unwrap();
        assert_eq!(c1.curve, c2.curve);
        assert_eq!(c1.order, c2.order);
    }
}
