//! Multi-tenant FastMem allocation — an extension for consolidated
//! deployments.
//!
//! The paper sizes one workload at a time; real cache fleets consolidate
//! several key-value workloads onto one hybrid-memory box, sharing a
//! single FastMem budget. Given each tenant's consultation (its fitted
//! model and per-key promotion deltas), the allocator fills the shared
//! budget greedily by *benefit density* (estimated nanoseconds saved per
//! FastMem byte) across the union of all tenants' keys — the same
//! density rule MnemoT applies within one workload, lifted across
//! workloads.

use crate::advisor::Consultation;
use crate::estimate::EstimateEngine;
use crate::model::PerfModel;
use crate::pattern::PatternEngine;
use cloudcost::CostModel;
use serde::Serialize;

/// Per-tenant outcome of a shared allocation.
#[derive(Debug, Clone, Serialize)]
pub struct TenantAllocation {
    /// Tenant index (order of the input slice).
    pub tenant: usize,
    /// Keys of this tenant promoted to FastMem.
    pub keys: Vec<u64>,
    /// FastMem bytes granted.
    pub fast_bytes: u64,
    /// Estimated runtime with this allocation (ns).
    pub est_runtime_ns: f64,
    /// Estimated slowdown vs this tenant running all-FastMem.
    pub est_slowdown: f64,
}

/// Result of a shared-budget allocation.
#[derive(Debug, Clone, Serialize)]
pub struct SharedAllocation {
    /// Per-tenant grants, in input order.
    pub tenants: Vec<TenantAllocation>,
    /// FastMem bytes used of the budget.
    pub used_bytes: u64,
    /// The budget that was offered.
    pub budget_bytes: u64,
}

impl SharedAllocation {
    /// The worst per-tenant estimated slowdown — the fleet's SLO metric.
    pub fn worst_slowdown(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.est_slowdown)
            .fold(0.0, f64::max)
    }
}

/// The allocator's per-tenant inputs: a fitted performance model plus
/// the tenant's profiled access pattern. This is the cheap subset of a
/// full [`Consultation`] — no key ordering, no estimate curve — so
/// high-frequency callers (the serve daemon re-plans every few ticks)
/// can build one per tenant without paying the curve construction.
#[derive(Debug, Clone)]
pub struct TenantDemand {
    /// The tenant's fitted performance model.
    pub model: PerfModel,
    /// The tenant's profiled access pattern.
    pub pattern: PatternEngine,
}

impl TenantDemand {
    /// The demand a full consultation implies.
    pub fn from_consultation(c: &Consultation) -> TenantDemand {
        TenantDemand {
            model: c.model.clone(),
            pattern: c.pattern.clone(),
        }
    }
}

/// Allocate a shared FastMem `budget_bytes` across tenants by benefit
/// density. Each consultation supplies the per-key promotion deltas of
/// its own fitted model (including any cache-aware correction it was
/// configured with).
pub fn allocate_shared(consultations: &[Consultation], budget_bytes: u64) -> SharedAllocation {
    let demands: Vec<TenantDemand> = consultations
        .iter()
        .map(TenantDemand::from_consultation)
        .collect();
    allocate_demands(&demands, budget_bytes)
}

/// [`allocate_shared`] from bare demand summaries. The all-SlowMem
/// runtime each slowdown is judged against is the model's own endpoint
/// (`fast_total + Σ deltas`), bit-identical to the estimate curve's
/// all-slow row, so the two entry points produce the same allocation.
pub fn allocate_demands(demands: &[TenantDemand], budget_bytes: u64) -> SharedAllocation {
    // Gather (tenant, key, bytes, delta) across all tenants.
    struct Cand {
        tenant: usize,
        key: u64,
        bytes: u64,
        delta: f64,
    }
    // Rebuild each tenant's engine to get its deltas (price factor does
    // not matter for deltas; use the default model). Tenants are
    // independent, so the delta evaluations run as coarse jobs on the
    // bounded pool; gathering stays in tenant order, keeping the
    // knapsack-style fill deterministic.
    let per_tenant: Vec<(f64, Vec<f64>)> =
        // mnemo-lint: allow(D007, "the reachable sum is predict's fixed coefficient dot product, fully inside each tenant job")
        mnemo_par::Pool::current().run_jobs(demands.len(), |tenant| {
            let d = &demands[tenant];
            let engine = EstimateEngine::new(d.model.clone(), CostModel::default());
            engine.key_deltas(&d.pattern)
        });
    let mut candidates = Vec::new();
    let mut fast_totals = Vec::with_capacity(demands.len());
    let mut slow_totals = Vec::with_capacity(demands.len());
    for (tenant, d) in demands.iter().enumerate() {
        let (fast_total, deltas) = &per_tenant[tenant];
        fast_totals.push(*fast_total);
        slow_totals.push(*fast_total + deltas.iter().sum::<f64>());
        for (key, &delta) in deltas.iter().enumerate() {
            let bytes = d.pattern.key(key as u64).bytes;
            if delta > 0.0 && bytes > 0 {
                candidates.push(Cand {
                    tenant,
                    key: key as u64,
                    bytes,
                    delta,
                });
            }
        }
    }
    candidates.sort_by(|a, b| {
        let da = a.delta / a.bytes as f64;
        let db = b.delta / b.bytes as f64;
        db.total_cmp(&da)
            .then(a.tenant.cmp(&b.tenant))
            .then(a.key.cmp(&b.key))
    });

    let mut used = 0u64;
    let mut grants: Vec<Vec<u64>> = demands.iter().map(|_| Vec::new()).collect();
    let mut granted_bytes: Vec<u64> = demands.iter().map(|_| 0).collect();
    let mut saved: Vec<f64> = demands.iter().map(|_| 0.0).collect();
    for cand in candidates {
        if used + cand.bytes <= budget_bytes {
            used += cand.bytes;
            grants[cand.tenant].push(cand.key);
            granted_bytes[cand.tenant] += cand.bytes;
            saved[cand.tenant] += cand.delta;
        }
    }

    let tenants = demands
        .iter()
        .enumerate()
        .map(|(tenant, _)| {
            // Runtime = all-slow estimate minus what the grant saves.
            let slow = slow_totals[tenant];
            let fast = fast_totals[tenant];
            let est_runtime_ns = slow - saved[tenant];
            let est_slowdown = if fast > 0.0 {
                // Throughput ratio via runtimes: slowdown vs all-fast.
                (est_runtime_ns - fast) / est_runtime_ns
            } else {
                0.0
            };
            TenantAllocation {
                tenant,
                keys: std::mem::take(&mut grants[tenant]),
                fast_bytes: granted_bytes[tenant],
                est_runtime_ns,
                est_slowdown: est_slowdown.max(0.0),
            }
        })
        .collect();
    SharedAllocation {
        tenants,
        used_bytes: used,
        budget_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorConfig};
    use kvsim::StoreKind;
    use ycsb::WorkloadSpec;

    fn consult(spec: WorkloadSpec, store: StoreKind) -> Consultation {
        let trace = spec.generate(5);
        Advisor::new(AdvisorConfig::default())
            .consult(store, &trace)
            .unwrap()
    }

    fn two_tenants() -> Vec<Consultation> {
        vec![
            consult(
                WorkloadSpec::trending().scaled(200, 2_500),
                StoreKind::Dynamo,
            ),
            consult(
                WorkloadSpec::trending().scaled(200, 2_500),
                StoreKind::Memcached,
            ),
        ]
    }

    #[test]
    fn budget_is_respected_and_used() {
        let tenants = two_tenants();
        let total: u64 = tenants.iter().map(|c| c.curve.total_bytes).sum();
        let alloc = allocate_shared(&tenants, total / 4);
        assert!(alloc.used_bytes <= alloc.budget_bytes);
        assert!(
            alloc.used_bytes > alloc.budget_bytes / 2,
            "budget should be mostly used"
        );
        let granted: u64 = alloc.tenants.iter().map(|t| t.fast_bytes).sum();
        assert_eq!(granted, alloc.used_bytes);
    }

    #[test]
    fn sensitive_tenant_wins_the_budget() {
        // DynamoDB (very memory-sensitive) vs Memcached (insensitive) on
        // the same workload: the shared budget should flow to DynamoDB.
        let tenants = two_tenants();
        let total: u64 = tenants.iter().map(|c| c.curve.total_bytes).sum();
        let alloc = allocate_shared(&tenants, total / 4);
        assert!(
            alloc.tenants[0].fast_bytes > 4 * alloc.tenants[1].fast_bytes.max(1),
            "dynamo {} vs memcached {}",
            alloc.tenants[0].fast_bytes,
            alloc.tenants[1].fast_bytes
        );
    }

    #[test]
    fn zero_budget_grants_nothing() {
        let tenants = two_tenants();
        let alloc = allocate_shared(&tenants, 0);
        assert_eq!(alloc.used_bytes, 0);
        for t in &alloc.tenants {
            assert!(t.keys.is_empty());
            // All-slow runtime equals the tenant's slow-only estimate.
            let slow = tenants[t.tenant].curve.slow_only().est_runtime_ns;
            assert!((t.est_runtime_ns - slow).abs() / slow < 1e-9);
        }
    }

    #[test]
    fn full_budget_reaches_all_fast() {
        let tenants = two_tenants();
        let total: u64 = tenants.iter().map(|c| c.curve.total_bytes).sum();
        let alloc = allocate_shared(&tenants, total);
        for t in &alloc.tenants {
            assert!(
                t.est_slowdown < 1e-9,
                "tenant {} slowdown {}",
                t.tenant,
                t.est_slowdown
            );
        }
        assert!(alloc.worst_slowdown() < 1e-9);
    }

    #[test]
    fn bigger_budget_never_hurts_anyone() {
        let tenants = two_tenants();
        let total: u64 = tenants.iter().map(|c| c.curve.total_bytes).sum();
        let small = allocate_shared(&tenants, total / 8);
        let large = allocate_shared(&tenants, total / 2);
        for (s, l) in small.tenants.iter().zip(&large.tenants) {
            assert!(l.est_runtime_ns <= s.est_runtime_ns + 1e-6);
        }
        assert!(large.worst_slowdown() <= small.worst_slowdown() + 1e-12);
    }
}
