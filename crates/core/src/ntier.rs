//! N-tier estimation and shared-capacity planning — the Estimate and
//! Placement Engines generalised past two tiers.
//!
//! The paper's Estimate Engine predicts two-tier runtimes from two
//! baseline runs. For N-tier hierarchies the same linear per-op cost
//! structure holds tier by tier, so this module computes the expected
//! service cost of every (key, tier) pair **analytically** from the
//! hierarchy's Table-I-style device parameters and the engine's cost
//! profile — the exact arithmetic [`kvsim::TieredEngine`] charges per
//! request, summed in expectation. On a cache-less hierarchy the
//! estimate matches a measured [`kvsim::TieredServer`] run to float
//! rounding; with an LLC configured it is a consistent upper bound (the
//! cache only removes value traffic), which preserves the ranking the
//! curves and planners need.
//!
//! Three artifacts:
//!
//! * [`NTierEstimator`] — expected runtime of a full assignment.
//! * [`capacity_sweep`] — the N-tier [`EstimateCurve`](crate::curve)
//!   analog: sweep the top tier's capacity, greedy-place, and report
//!   runtime / hierarchy cost / cost-efficiency per point.
//! * [`plan_shared_stack`] —
//!   [`multi::allocate_shared`](crate::multi::allocate_shared) lifted
//!   to N tiers: fill every tier of a shared hierarchy across tenants
//!   by global hotness density.

use hybridmem::stack::StackSpec;
use hybridmem::{AccessKind, TierId};
use kvsim::{EngineProfile, StoreKind};
use mnemo_tier::{GreedyPolicy, KeyStat, TieringPolicy};
use serde::Serialize;

/// Value-header overhead of the Redis-like engines; keys occupy
/// `bytes + VALUE_HEADER_BYTES` of device capacity.
const VALUE_HEADER_BYTES: u64 = 64;

/// Analytic expected-runtime model of a [`kvsim::TieredServer`] run:
/// per-key, per-tier op costs from the device parameters and the store
/// profile, with the dict chain-length factor of the loaded key count.
pub struct NTierEstimator {
    spec: StackSpec,
    profile: EngineProfile,
    chain_scale: f64,
}

impl NTierEstimator {
    /// Build for `store` serving `key_count` loaded keys on `spec`.
    pub fn new(spec: StackSpec, store: StoreKind, key_count: usize) -> NTierEstimator {
        // The dict table doubles from 4 until it holds every key, and no
        // keys are inserted or deleted during a measured run, so the
        // chain-length multiplier is a run constant.
        let mut table_size = 4u64;
        while key_count as u64 > table_size {
            table_size *= 2;
        }
        let load_factor = key_count as f64 / table_size as f64;
        NTierEstimator {
            spec,
            profile: store.profile(),
            chain_scale: 1.0 + load_factor / 2.0,
        }
    }

    /// The hierarchy this estimator prices against.
    pub fn spec(&self) -> &StackSpec {
        &self.spec
    }

    /// Expected service nanoseconds of one op on a key of `bytes`
    /// living in `tier` — the same charge arithmetic as the tiered
    /// engine: fixed cost, chain-scaled index walk, value traffic, and
    /// amplification passes.
    pub fn op_ns(&self, tier: TierId, bytes: u64, kind: AccessKind) -> f64 {
        let Some(def) = self.spec.tier(tier) else {
            return f64::INFINITY;
        };
        let touch = def
            .spec
            .access_ns(AccessKind::Read, self.profile.touch_bytes);
        let mut index_ns = 0.0;
        for _ in 0..self.profile.index_touches {
            index_ns += touch;
        }
        let amp = match kind {
            AccessKind::Read => self.profile.read_amplification,
            AccessKind::Write => self.profile.write_amplification,
        };
        let stored = (bytes + VALUE_HEADER_BYTES).max(1);
        let mut value_ns = def.spec.access_ns(kind, stored);
        if amp > 1.0 {
            value_ns += (amp - 1.0) * def.spec.access_ns(kind, bytes);
        }
        self.profile.fixed_op_ns + index_ns * self.chain_scale + value_ns
    }

    /// Expected total runtime of serving `stats` (whole-trace per-key
    /// counts) under `assignment` (aligned with `stats`).
    pub fn runtime_ns(&self, stats: &[KeyStat], assignment: &[TierId]) -> f64 {
        let mut total = 0.0;
        for (s, &tier) in stats.iter().zip(assignment.iter()) {
            total += s.reads as f64 * self.op_ns(tier, s.bytes, AccessKind::Read);
            total += s.writes as f64 * self.op_ns(tier, s.bytes, AccessKind::Write);
        }
        total
    }
}

/// One point of an N-tier capacity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct NTierRow {
    /// Configured top-tier capacity at this point (bytes).
    pub top_capacity_bytes: u64,
    /// Stored bytes the greedy placement put in each tier, top first.
    pub tier_bytes: Vec<u64>,
    /// Estimated runtime of the whole trace (ns).
    pub est_runtime_ns: f64,
    /// Dollar cost of the configured hierarchy.
    pub cost_usd: f64,
    /// Estimated throughput per dollar (ops/s/$) — the paper's memory
    /// cost-efficiency metric, lifted to N tiers.
    pub cost_efficiency: f64,
}

/// Sweep the top tier's capacity from zero to the full stored dataset
/// in `points` equal steps (inclusive), greedy-placing at each point.
/// Lower tiers keep their configured capacities and prices, so each row
/// prices the hierarchy an operator would actually buy. Runtime is
/// non-increasing and cost non-decreasing along the sweep; the
/// cost-efficiency column exposes the knee.
pub fn capacity_sweep(
    base: &StackSpec,
    stats: &[KeyStat],
    store: StoreKind,
    points: usize,
) -> Vec<NTierRow> {
    let stored_total: u64 = stats
        .iter()
        .map(|s| (s.bytes + VALUE_HEADER_BYTES).max(1))
        .sum();
    let requests: u64 = stats.iter().map(|s| s.reads + s.writes).sum();
    let points = points.max(1);
    let mut rows = Vec::with_capacity(points + 1);
    for i in 0..=points {
        let mut spec = base.clone();
        // A zero-capacity tier is invalid; one byte holds nothing.
        spec.tiers[0].capacity_bytes = (stored_total * i as u64 / points as u64).max(1);
        let assignment = GreedyPolicy.place(stats, &spec);
        let estimator = NTierEstimator::new(spec.clone(), store, stats.len());
        let est_runtime_ns = estimator.runtime_ns(stats, &assignment);
        let mut tier_bytes = vec![0u64; spec.tiers.len()];
        for (s, tier) in stats.iter().zip(assignment.iter()) {
            tier_bytes[tier.index()] += (s.bytes + VALUE_HEADER_BYTES).max(1);
        }
        let cost_usd = spec.cost_usd();
        let est_throughput = if est_runtime_ns > 0.0 {
            requests as f64 / (est_runtime_ns / 1e9)
        } else {
            0.0
        };
        rows.push(NTierRow {
            top_capacity_bytes: spec.tiers[0].capacity_bytes,
            tier_bytes,
            est_runtime_ns,
            cost_usd,
            cost_efficiency: if cost_usd > 0.0 {
                est_throughput / cost_usd
            } else {
                0.0
            },
        });
    }
    rows
}

/// CSV form of a capacity sweep (header + one row per point).
pub fn sweep_to_csv(rows: &[NTierRow]) -> String {
    let mut out = String::from("top_capacity_bytes,est_runtime_ns,cost_usd,cost_efficiency\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.3},{:.6},{:.6}\n",
            r.top_capacity_bytes, r.est_runtime_ns, r.cost_usd, r.cost_efficiency
        ));
    }
    out
}

/// One tenant's workload for shared-hierarchy planning.
pub struct TenantWorkload {
    /// Whole-trace per-key stats (key ids are tenant-local).
    pub stats: Vec<KeyStat>,
    /// The tenant's store engine (sets its cost profile).
    pub store: StoreKind,
}

/// Per-tenant outcome of a shared N-tier plan.
#[derive(Debug, Clone, Serialize)]
pub struct TenantStackGrant {
    /// Tenant index (order of the input slice).
    pub tenant: usize,
    /// Stored bytes granted in each tier, top first.
    pub tier_bytes: Vec<u64>,
    /// Estimated runtime under the granted placement (ns).
    pub est_runtime_ns: f64,
    /// Estimated slowdown vs this tenant running entirely in the top
    /// tier (0 = at top-tier speed).
    pub est_slowdown: f64,
}

/// Result of [`plan_shared_stack`].
#[derive(Debug, Clone, Serialize)]
pub struct SharedStackPlan {
    /// Per-tenant grants, in input order.
    pub tenants: Vec<TenantStackGrant>,
    /// Stored bytes used of each tier, top first.
    pub used_bytes: Vec<u64>,
    /// Per-tier capacities offered, top first.
    pub capacity_bytes: Vec<u64>,
}

impl SharedStackPlan {
    /// The worst per-tenant estimated slowdown — the fleet SLO metric.
    pub fn worst_slowdown(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.est_slowdown)
            .fold(0.0, f64::max)
    }
}

/// Fill every tier of one shared hierarchy across tenants by global
/// hotness density (`accesses / bytes`, the MnemoT weight), top tier
/// first with skip-but-continue packing — the within-workload greedy of
/// the paper lifted across workloads *and* across tiers. Keys that fit
/// in no upper tier land in the bottom tier, which the plan treats as
/// uncapacitated swap (its used column may exceed its capacity; the
/// caller decides whether that is acceptable).
pub fn plan_shared_stack(tenants: &[TenantWorkload], spec: &StackSpec) -> SharedStackPlan {
    struct Cand {
        tenant: usize,
        key_index: usize,
        stored: u64,
        weight: f64,
    }
    let mut candidates = Vec::new();
    for (tenant, w) in tenants.iter().enumerate() {
        for (key_index, s) in w.stats.iter().enumerate() {
            candidates.push(Cand {
                tenant,
                key_index,
                stored: (s.bytes + VALUE_HEADER_BYTES).max(1),
                weight: s.accesses() as f64 / s.bytes.max(1) as f64,
            });
        }
    }
    candidates.sort_by(|a, b| {
        b.weight
            .total_cmp(&a.weight)
            .then(a.tenant.cmp(&b.tenant))
            .then(a.key_index.cmp(&b.key_index))
    });

    let num_tiers = spec.tiers.len();
    let bottom = num_tiers - 1;
    let mut used = vec![0u64; num_tiers];
    // assignment[tenant][key_index] = tier index.
    let mut assignment: Vec<Vec<usize>> = tenants
        .iter()
        .map(|w| vec![bottom; w.stats.len()])
        .collect();
    let mut grant_bytes: Vec<Vec<u64>> = tenants.iter().map(|_| vec![0u64; num_tiers]).collect();
    for cand in &candidates {
        let mut placed = bottom;
        for (t, def) in spec.tiers.iter().enumerate().take(bottom) {
            if used[t] + cand.stored <= def.capacity_bytes {
                placed = t;
                break;
            }
        }
        used[placed] += cand.stored;
        assignment[cand.tenant][cand.key_index] = placed;
        grant_bytes[cand.tenant][placed] += cand.stored;
    }

    let grants = tenants
        .iter()
        .enumerate()
        .map(|(tenant, w)| {
            let estimator = NTierEstimator::new(spec.clone(), w.store, w.stats.len());
            let tiers: Vec<TierId> = assignment[tenant]
                .iter()
                .map(|&t| TierId(u8::try_from(t).unwrap_or(u8::MAX)))
                .collect();
            let est_runtime_ns = estimator.runtime_ns(&w.stats, &tiers);
            let top = vec![TierId(0); w.stats.len()];
            let top_ns = estimator.runtime_ns(&w.stats, &top);
            let est_slowdown = if est_runtime_ns > 0.0 {
                ((est_runtime_ns - top_ns) / est_runtime_ns).max(0.0)
            } else {
                0.0
            };
            TenantStackGrant {
                tenant,
                tier_bytes: std::mem::take(&mut grant_bytes[tenant]),
                est_runtime_ns,
                est_slowdown,
            }
        })
        .collect();
    SharedStackPlan {
        tenants: grants,
        used_bytes: used,
        capacity_bytes: spec.tiers.iter().map(|t| t.capacity_bytes).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::CacheConfig;
    use kvsim::tiered::{trace_stats, TieredServer};
    use mnemo_tier::dram_optane_ssd;
    use ycsb::WorkloadSpec;

    fn trace() -> ycsb::Trace {
        WorkloadSpec::trending().scaled(150, 2_000).generate(11)
    }

    #[test]
    fn estimate_matches_a_cacheless_measured_run() {
        let t = trace();
        let stats = trace_stats(&t);
        let mut spec = dram_optane_ssd();
        spec.cache = CacheConfig::disabled();
        // Force keys across all three tiers.
        let stored: u64 = stats.iter().map(|s| s.bytes + VALUE_HEADER_BYTES).sum();
        spec.tiers[0].capacity_bytes = stored / 4;
        spec.tiers[1].capacity_bytes = stored / 3;
        let assignment = GreedyPolicy.place(&stats, &spec);
        let estimator = NTierEstimator::new(spec.clone(), StoreKind::Redis, stats.len());
        let est = estimator.runtime_ns(&stats, &assignment);

        let mut server = TieredServer::build(spec, Box::new(GreedyPolicy), &t).unwrap();
        let report = server.run(&t);
        // The run clock quantizes each request to whole nanoseconds, so
        // compare against the un-quantized per-request service times.
        let measured: f64 = report.samples.iter().map(|s| s.service_ns).sum();
        let rel = (est - measured).abs() / measured;
        assert!(rel < 1e-9, "est {est} vs measured {measured} (rel {rel})");
        let wall = report.runtime_ns;
        assert!((est - wall).abs() / wall < 1e-5, "clock-rounded {wall}");
    }

    #[test]
    fn faster_tiers_cost_fewer_nanoseconds() {
        let t = trace();
        let stats = trace_stats(&t);
        let spec = dram_optane_ssd();
        let estimator = NTierEstimator::new(spec.clone(), StoreKind::Redis, stats.len());
        for s in stats.iter().take(10) {
            for kind in [AccessKind::Read, AccessKind::Write] {
                let top = estimator.op_ns(TierId(0), s.bytes, kind);
                let mid = estimator.op_ns(TierId(1), s.bytes, kind);
                let bot = estimator.op_ns(TierId(2), s.bytes, kind);
                assert!(top < mid && mid < bot, "{top} {mid} {bot}");
            }
        }
        let all = |tier: TierId| {
            let a = vec![tier; stats.len()];
            estimator.runtime_ns(&stats, &a)
        };
        assert!(all(TierId(0)) < all(TierId(1)));
        assert!(all(TierId(1)) < all(TierId(2)));
    }

    #[test]
    fn capacity_sweep_is_monotone_and_brackets_the_extremes() {
        let t = trace();
        let stats = trace_stats(&t);
        let rows = capacity_sweep(&dram_optane_ssd(), &stats, StoreKind::Redis, 8);
        assert_eq!(rows.len(), 9);
        for pair in rows.windows(2) {
            assert!(pair[1].est_runtime_ns <= pair[0].est_runtime_ns + 1e-6);
            assert!(pair[1].cost_usd >= pair[0].cost_usd);
        }
        // Final point: everything fits in the top tier.
        let last = rows.last().unwrap();
        assert_eq!(last.tier_bytes[1], 0);
        assert_eq!(last.tier_bytes[2], 0);
        let csv = sweep_to_csv(&rows);
        assert!(csv.starts_with("top_capacity_bytes,"));
        assert_eq!(csv.lines().count(), 10);
    }

    #[test]
    fn shared_plan_respects_upper_tier_capacities() {
        let t = trace();
        let tenants = vec![
            TenantWorkload {
                stats: trace_stats(&t),
                store: StoreKind::Dynamo,
            },
            TenantWorkload {
                stats: trace_stats(&t),
                store: StoreKind::Memcached,
            },
        ];
        let mut spec = dram_optane_ssd();
        let stored: u64 = tenants
            .iter()
            .flat_map(|w| w.stats.iter())
            .map(|s| s.bytes + VALUE_HEADER_BYTES)
            .sum();
        spec.tiers[0].capacity_bytes = stored / 5;
        spec.tiers[1].capacity_bytes = stored / 4;
        let plan = plan_shared_stack(&tenants, &spec);
        for t in 0..2 {
            assert!(
                plan.used_bytes[t] <= plan.capacity_bytes[t],
                "tier {t}: {} > {}",
                plan.used_bytes[t],
                plan.capacity_bytes[t]
            );
        }
        let granted: u64 = plan.tenants.iter().map(|g| g.tier_bytes[0]).sum();
        assert_eq!(granted, plan.used_bytes[0]);
        assert!(plan.worst_slowdown() >= 0.0);
        // Deterministic across calls.
        let again = plan_shared_stack(&tenants, &spec);
        assert_eq!(
            plan.tenants[0].est_runtime_ns.to_bits(),
            again.tenants[0].est_runtime_ns.to_bits()
        );
    }

    #[test]
    fn hot_small_keys_win_the_top_tier_across_tenants() {
        // Tenant 0: hot small keys. Tenant 1: cold large keys.
        let hot: Vec<KeyStat> = (0..20)
            .map(|k| KeyStat {
                key: k,
                bytes: 256,
                reads: 1_000,
                writes: 100,
            })
            .collect();
        let cold: Vec<KeyStat> = (0..20)
            .map(|k| KeyStat {
                key: k,
                bytes: 64 << 10,
                reads: 3,
                writes: 1,
            })
            .collect();
        let tenants = vec![
            TenantWorkload {
                stats: hot,
                store: StoreKind::Redis,
            },
            TenantWorkload {
                stats: cold,
                store: StoreKind::Redis,
            },
        ];
        let mut spec = dram_optane_ssd();
        // Top tier fits the hot set with room to spare but not the cold set.
        spec.tiers[0].capacity_bytes = 64 << 10;
        let plan = plan_shared_stack(&tenants, &spec);
        assert!(plan.tenants[0].tier_bytes[0] > 0, "hot tenant got no DRAM");
        assert_eq!(
            plan.tenants[1].tier_bytes[0], 0,
            "cold tenant should get no DRAM"
        );
        assert!(plan.tenants[0].est_slowdown <= plan.tenants[1].est_slowdown);
    }
}
