//! The estimate curve — Mnemo's primary output.
//!
//! "As output, Mnemo will generate a text file in csv format with three
//! columns ... Each row contains a key identifier, the estimated
//! performance and cost reduction factor, when FastMem will service all
//! previous keys in the file and have capacity equal to the sum of their
//! corresponding values, whereas the rest of the keys ... will be
//! attributed to SlowMem."

use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One row of the estimate curve: the state *after* placing `key` (and
/// all keys of earlier rows) in FastMem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveRow {
    /// Number of keys in FastMem at this row.
    pub prefix: usize,
    /// The key this row moved into FastMem; `None` for the initial
    /// all-SlowMem row.
    pub key: Option<u64>,
    /// FastMem capacity consumed (bytes).
    pub fast_bytes: u64,
    /// Memory-system cost relative to FastMem-only (`R(p)` of §II).
    pub cost_reduction: f64,
    /// Estimated total runtime (ns).
    pub est_runtime_ns: f64,
    /// Estimated throughput (ops/s).
    pub est_throughput_ops_s: f64,
}

impl CurveRow {
    /// Estimated average request latency (ns).
    pub fn est_avg_latency_ns(&self, requests: usize) -> f64 {
        if requests == 0 {
            0.0
        } else {
            self.est_runtime_ns / requests as f64
        }
    }
}

/// The full cost-vs-performance trade-off curve, one row per incremental
/// key tiering, from all-SlowMem (first row) to all-FastMem (last row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateCurve {
    /// Rows in tiering order (`prefix` 0 ..= key count).
    pub rows: Vec<CurveRow>,
    /// Requests in the workload the curve was estimated for.
    pub requests: usize,
    /// Total dataset bytes.
    pub total_bytes: u64,
}

impl EstimateCurve {
    /// The all-SlowMem row (worst performance, lowest cost).
    pub fn slow_only(&self) -> &CurveRow {
        self.rows
            .first()
            // mnemo-lint: allow(R001, "estimate() always emits the all-slow row before any prefix rows; an empty curve is unconstructible")
            .expect("curve always has the all-slow row")
    }

    /// The all-FastMem row (best performance, full cost).
    pub fn fast_only(&self) -> &CurveRow {
        // mnemo-lint: allow(R001, "estimate() always emits the all-fast row last; an empty curve is unconstructible")
        self.rows.last().expect("curve always has the all-fast row")
    }

    /// The cheapest row whose estimated throughput is within
    /// `slowdown` (e.g. 0.10) of the all-FastMem throughput — the paper's
    /// "sweet spot between cost efficiency and ensured performance".
    /// Returns `None` only for an empty curve.
    pub fn cheapest_within_slowdown(&self, slowdown: f64) -> Option<&CurveRow> {
        assert!(
            (0.0..=1.0).contains(&slowdown),
            "slowdown {slowdown} out of [0,1]"
        );
        let target = self.fast_only().est_throughput_ops_s * (1.0 - slowdown);
        // Rows are ordered by increasing FastMem share, hence increasing
        // cost; the first row meeting the target is the cheapest.
        self.rows.iter().find(|r| r.est_throughput_ops_s >= target)
    }

    /// The row at a given FastMem capacity *ratio* (first row whose
    /// `fast_bytes` reaches `ratio * total_bytes`).
    pub fn row_at_ratio(&self, ratio: f64) -> &CurveRow {
        assert!((0.0..=1.0).contains(&ratio), "ratio {ratio} out of [0,1]");
        let target = (self.total_bytes as f64 * ratio) as u64;
        self.rows
            .iter()
            .find(|r| r.fast_bytes >= target)
            .unwrap_or_else(|| self.fast_only())
    }

    /// Serialise to the paper's three-column CSV: key id, estimated
    /// performance (ops/s), cost reduction factor. The initial all-slow
    /// row uses the sentinel `-` key.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "key,estimated_throughput_ops_s,cost_reduction")?;
        for row in &self.rows {
            match row.key {
                Some(k) => writeln!(
                    w,
                    "{k},{:.3},{:.6}",
                    row.est_throughput_ops_s, row.cost_reduction
                )?,
                None => writeln!(
                    w,
                    "-,{:.3},{:.6}",
                    row.est_throughput_ops_s, row.cost_reduction
                )?,
            }
        }
        Ok(())
    }

    /// CSV as a string.
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf)
            // mnemo-lint: allow(R001, "io::Write for Vec<u8> is infallible by its contract")
            .expect("writing to a Vec cannot fail");
        String::from_utf8_lossy(&buf).into_owned()
    }

    /// Downsample the curve to at most `n` evenly spaced rows (always
    /// keeping both endpoints) — for plotting and comparison against a
    /// handful of measured points.
    pub fn thin(&self, n: usize) -> Vec<CurveRow> {
        assert!(n >= 2, "need at least the two endpoints");
        if self.rows.len() <= n {
            return self.rows.clone();
        }
        let last = self.rows.len() - 1;
        (0..n).map(|i| self.rows[i * last / (n - 1)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> EstimateCurve {
        // Synthetic monotone curve: throughput rises, cost rises.
        let rows = (0..=10usize)
            .map(|i| CurveRow {
                prefix: i,
                key: if i == 0 { None } else { Some(i as u64 - 1) },
                fast_bytes: (i * 100) as u64,
                cost_reduction: 0.2 + 0.08 * i as f64,
                est_runtime_ns: 2e9 - 1e8 * i as f64,
                est_throughput_ops_s: 1000.0 + 100.0 * i as f64,
            })
            .collect();
        EstimateCurve {
            rows,
            requests: 1000,
            total_bytes: 1000,
        }
    }

    #[test]
    fn endpoints() {
        let c = curve();
        assert_eq!(c.slow_only().prefix, 0);
        assert_eq!(c.fast_only().prefix, 10);
        assert!((c.fast_only().cost_reduction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweet_spot_is_cheapest_row_meeting_target() {
        let c = curve();
        // Fast-only throughput 2000; 10% slowdown target = 1800 -> first
        // row with throughput >= 1800 is prefix 8.
        let row = c.cheapest_within_slowdown(0.10).unwrap();
        assert_eq!(row.prefix, 8);
        // Zero slowdown forces the all-fast row.
        assert_eq!(c.cheapest_within_slowdown(0.0).unwrap().prefix, 10);
        // Full slack allows the all-slow row.
        assert_eq!(c.cheapest_within_slowdown(1.0).unwrap().prefix, 0);
    }

    #[test]
    fn row_at_ratio_finds_capacity_points() {
        let c = curve();
        assert_eq!(c.row_at_ratio(0.0).prefix, 0);
        assert_eq!(c.row_at_ratio(0.45).prefix, 5);
        assert_eq!(c.row_at_ratio(1.0).prefix, 10);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let c = curve();
        let csv = c.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 12, "header + 11 rows");
        assert_eq!(lines[0], "key,estimated_throughput_ops_s,cost_reduction");
        assert!(lines[1].starts_with("-,"), "all-slow sentinel row");
        assert!(lines[2].starts_with("0,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 3);
        }
    }

    #[test]
    fn thin_keeps_endpoints() {
        let c = curve();
        let t = c.thin(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].prefix, 0);
        assert_eq!(t[2].prefix, 10);
        // Thinning a short curve is identity.
        assert_eq!(c.thin(100).len(), 11);
    }

    #[test]
    fn avg_latency() {
        let c = curve();
        let r = c.slow_only();
        assert!((r.est_avg_latency_ns(1000) - 2e6).abs() < 1e-6);
        assert_eq!(r.est_avg_latency_ns(0), 0.0);
    }
}
