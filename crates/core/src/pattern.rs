//! The Pattern Engine (Fig. 6, component 2).
//!
//! "Analyzes the request access pattern of the workload, and establishes
//! a relationship between the keys and requests Req(keys)."

use serde::{Deserialize, Serialize};
use ycsb::{Op, Trace};

/// Per-key request statistics — `Req(keys)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyStats {
    /// Read requests to this key.
    pub reads: u64,
    /// Write requests to this key.
    pub writes: u64,
    /// Stored value size in bytes.
    pub bytes: u64,
}

impl KeyStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The Pattern Engine: per-key statistics plus key orderings for
/// incremental FastMem sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternEngine {
    stats: Vec<KeyStats>,
    touch_order: Vec<u64>,
}

impl PatternEngine {
    /// Analyse a trace.
    pub fn analyze(trace: &Trace) -> PatternEngine {
        let mut stats: Vec<KeyStats> = trace
            .sizes
            .iter()
            .map(|&bytes| KeyStats {
                reads: 0,
                writes: 0,
                bytes,
            })
            .collect();
        let mut touch_order = Vec::new();
        let mut touched = vec![false; trace.sizes.len()];
        for r in &trace.requests {
            let k = r.key as usize;
            match r.op {
                Op::Read => stats[k].reads += 1,
                Op::Update => stats[k].writes += 1,
            }
            if !touched[k] {
                touched[k] = true;
                touch_order.push(r.key);
            }
        }
        // Untouched keys close the ordering (they still occupy capacity
        // and appear at the end of the estimate curve).
        for (k, t) in touched.iter().enumerate() {
            if !t {
                touch_order.push(k as u64);
            }
        }
        PatternEngine { stats, touch_order }
    }

    /// Build a Pattern Engine directly from per-key statistics, without
    /// a materialised trace — the entry point for *approximate* patterns
    /// reconstructed by a streaming profiler (where no request sequence
    /// exists, only sketch-estimated `Req(keys)`).
    ///
    /// Since there is no request order to replay, the touch order is the
    /// key-id order; streaming callers should prefer the hotness or
    /// MnemoT orderings, which depend only on the statistics.
    pub fn from_stats(stats: Vec<KeyStats>) -> PatternEngine {
        let touch_order = (0..stats.len() as u64).collect();
        PatternEngine { stats, touch_order }
    }

    /// Per-key statistics, indexed by key id.
    pub fn stats(&self) -> &[KeyStats] {
        &self.stats
    }

    /// Statistics of one key.
    pub fn key(&self, key: u64) -> KeyStats {
        self.stats[key as usize]
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.stats.len()
    }

    /// Total requests analysed.
    pub fn total_requests(&self) -> u64 {
        self.stats.iter().map(KeyStats::accesses).sum()
    }

    /// Total dataset bytes.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }

    /// The standalone-Mnemo ordering: keys "as they get accessed
    /// (touched) by the workload access pattern" (Fig. 2a), untouched
    /// keys last.
    pub fn touch_order(&self) -> &[u64] {
        &self.touch_order
    }

    /// Keys ordered by descending access count (hottest first) — the
    /// "transformed to a Trending version" ordering of §V-A. Ties break
    /// by key id for determinism.
    pub fn hotness_order(&self) -> Vec<u64> {
        let mut order: Vec<u64> = (0..self.stats.len() as u64).collect();
        order.sort_by_key(|&k| (std::cmp::Reverse(self.stats[k as usize].accesses()), k));
        order
    }

    /// Validate an externally supplied ordering (deployment Fig. 2b:
    /// "existing tiering solution" provides the DRAM key allocations):
    /// it must be a permutation of the key space.
    pub fn validate_order(&self, order: &[u64]) -> Result<(), OrderError> {
        if order.len() != self.stats.len() {
            return Err(OrderError::WrongLength {
                got: order.len(),
                want: self.stats.len(),
            });
        }
        let mut seen = vec![false; self.stats.len()];
        for &k in order {
            let idx = k as usize;
            if idx >= seen.len() {
                return Err(OrderError::UnknownKey(k));
            }
            if seen[idx] {
                return Err(OrderError::DuplicateKey(k));
            }
            seen[idx] = true;
        }
        Ok(())
    }
}

/// Problems with an externally supplied key ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderError {
    /// Not all keys are covered.
    WrongLength {
        /// Keys in the supplied ordering.
        got: usize,
        /// Keys in the workload.
        want: usize,
    },
    /// A key id outside the key space.
    UnknownKey(u64),
    /// A key listed twice.
    DuplicateKey(u64),
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::WrongLength { got, want } => {
                write!(f, "ordering covers {got} keys, workload has {want}")
            }
            OrderError::UnknownKey(k) => write!(f, "ordering references unknown key {k}"),
            OrderError::DuplicateKey(k) => write!(f, "ordering lists key {k} twice"),
        }
    }
}

impl std::error::Error for OrderError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::{Request, WorkloadSpec};

    fn tiny() -> Trace {
        Trace {
            name: "tiny".into(),
            sizes: vec![10, 20, 30, 40],
            requests: vec![
                Request {
                    key: 2,
                    op: Op::Read,
                },
                Request {
                    key: 0,
                    op: Op::Update,
                },
                Request {
                    key: 2,
                    op: Op::Read,
                },
                Request {
                    key: 1,
                    op: Op::Read,
                },
            ],
        }
    }

    #[test]
    fn stats_count_reads_and_writes() {
        let p = PatternEngine::analyze(&tiny());
        assert_eq!(
            p.key(2),
            KeyStats {
                reads: 2,
                writes: 0,
                bytes: 30
            }
        );
        assert_eq!(
            p.key(0),
            KeyStats {
                reads: 0,
                writes: 1,
                bytes: 10
            }
        );
        assert_eq!(p.key(3).accesses(), 0);
        assert_eq!(p.total_requests(), 4);
        assert_eq!(p.total_bytes(), 100);
    }

    #[test]
    fn touch_order_is_first_seen_then_untouched() {
        let p = PatternEngine::analyze(&tiny());
        assert_eq!(p.touch_order(), &[2, 0, 1, 3]);
    }

    #[test]
    fn hotness_order_sorts_by_access_count() {
        let p = PatternEngine::analyze(&tiny());
        let order = p.hotness_order();
        assert_eq!(order[0], 2);
        // Ties (keys 0 and 1, one access each) break by id.
        assert_eq!(&order[1..3], &[0, 1]);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn orders_are_permutations_on_real_workloads() {
        let t = WorkloadSpec::timeline().scaled(500, 5_000).generate(1);
        let p = PatternEngine::analyze(&t);
        p.validate_order(p.touch_order()).unwrap();
        p.validate_order(&p.hotness_order()).unwrap();
    }

    #[test]
    fn from_stats_matches_analyze_modulo_touch_order() {
        let t = WorkloadSpec::trending().scaled(200, 2_000).generate(3);
        let analyzed = PatternEngine::analyze(&t);
        let rebuilt = PatternEngine::from_stats(analyzed.stats().to_vec());
        assert_eq!(rebuilt.stats(), analyzed.stats());
        assert_eq!(rebuilt.hotness_order(), analyzed.hotness_order());
        assert_eq!(rebuilt.total_requests(), analyzed.total_requests());
        assert_eq!(rebuilt.total_bytes(), analyzed.total_bytes());
        rebuilt.validate_order(rebuilt.touch_order()).unwrap();
    }

    #[test]
    fn validate_order_rejects_bad_inputs() {
        let p = PatternEngine::analyze(&tiny());
        assert_eq!(
            p.validate_order(&[0, 1]),
            Err(OrderError::WrongLength { got: 2, want: 4 })
        );
        assert_eq!(
            p.validate_order(&[0, 1, 2, 9]),
            Err(OrderError::UnknownKey(9))
        );
        assert_eq!(
            p.validate_order(&[0, 1, 1, 2]),
            Err(OrderError::DuplicateKey(1))
        );
    }
}
