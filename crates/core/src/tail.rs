//! Tail-latency estimation — implementing the paper's declared gap.
//!
//! §V-A: "regarding the tail latency of the requests, Mnemo does not
//! produce any estimate, since the simple analytical model it uses is
//! not sufficient to capture the variabilities of the tail latencies."
//!
//! The gap is narrower than it looks: the same per-key model that powers
//! the runtime estimate induces a full *distribution* over request
//! service times — each key contributes `reads_k` predicted read times
//! and `writes_k` predicted write times in its tier. Quantiles of that
//! weighted mixture are a principled tail estimate. It inherits the
//! model's blind spots (cache residency, queueing), so it is offered as
//! an extension with its accuracy quantified in the harness rather than
//! as a paper claim.

use crate::model::PerfModel;
use crate::pattern::PatternEngine;
use hybridmem::MemTier;
use ycsb::Op;

/// Tail-quantile estimator over the per-request service-time mixture.
#[derive(Debug, Clone)]
pub struct TailEstimator<'a> {
    model: &'a PerfModel,
    pattern: &'a PatternEngine,
}

impl<'a> TailEstimator<'a> {
    /// Build from a fitted model and an analysed pattern.
    pub fn new(model: &'a PerfModel, pattern: &'a PatternEngine) -> TailEstimator<'a> {
        TailEstimator { model, pattern }
    }

    /// The weighted atoms `(service_ns, request_count)` of the mixture
    /// for a placement.
    fn atoms<F: Fn(u64) -> bool>(&self, in_fast: F) -> Vec<(f64, u64)> {
        let mut atoms = Vec::with_capacity(self.pattern.key_count() * 2);
        for (k, stats) in self.pattern.stats().iter().enumerate() {
            let tier = if in_fast(k as u64) {
                MemTier::Fast
            } else {
                MemTier::Slow
            };
            if stats.reads > 0 {
                atoms.push((self.model.predict(tier, Op::Read, stats.bytes), stats.reads));
            }
            if stats.writes > 0 {
                atoms.push((
                    self.model.predict(tier, Op::Update, stats.bytes),
                    stats.writes,
                ));
            }
        }
        atoms
    }

    /// Estimated quantile `q` (e.g. 0.95, 0.99) of per-request service
    /// time under a placement. Returns 0 for empty workloads.
    pub fn quantile<F: Fn(u64) -> bool>(&self, in_fast: F, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let mut atoms = self.atoms(in_fast);
        if atoms.is_empty() {
            return 0.0;
        }
        atoms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = atoms.iter().map(|&(_, w)| w).sum();
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (ns, w) in atoms {
            seen += w;
            if seen >= rank {
                return ns;
            }
        }
        unreachable!("rank is clamped to the total weight")
    }

    /// Quantiles for a prefix of a key ordering (the first `prefix` keys
    /// in FastMem) — the placement the estimate-curve rows describe.
    pub fn quantile_at_prefix(&self, order: &[u64], prefix: usize, q: f64) -> f64 {
        let fast: hybridmem::DetHashSet<u64> =
            order[..prefix.min(order.len())].iter().copied().collect();
        self.quantile(|k| fast.contains(&k), q)
    }

    /// A sweep of `(prefix, quantile)` estimates along an ordering, at
    /// `points` evenly spaced prefixes including both endpoints.
    pub fn sweep(&self, order: &[u64], points: usize, q: f64) -> Vec<(usize, f64)> {
        assert!(points >= 2, "need both endpoints");
        (0..points)
            .map(|i| {
                let prefix = i * order.len() / (points - 1);
                (prefix, self.quantile_at_prefix(order, prefix, q))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::sensitivity::SensitivityEngine;
    use hybridmem::{CacheConfig, HybridSpec};
    use kvsim::{Placement, Server, StoreKind};
    use ycsb::WorkloadSpec;

    /// Noiseless, cache-free testbed: per-request service times are an
    /// exact affine function of record size, so the SizeAware mixture
    /// should reproduce measured quantiles to histogram resolution.
    fn cacheless_spec() -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.cache = CacheConfig::disabled();
        spec
    }

    fn setup() -> (PerfModel, PatternEngine, ycsb::Trace, HybridSpec) {
        let t = WorkloadSpec::trending_preview()
            .scaled(300, 5_000)
            .generate(3);
        let spec = cacheless_spec();
        let engine =
            SensitivityEngine::new(spec.clone(), hybridmem::clock::NoiseConfig::disabled());
        let b = engine.measure(StoreKind::Redis, &t).unwrap();
        let model = PerfModel::fit(ModelKind::SizeAware, &b, &t.sizes);
        (model, PatternEngine::analyze(&t), t, spec)
    }

    #[test]
    fn tail_estimate_matches_cacheless_measurement() {
        let (model, pattern, trace, spec) = setup();
        let est = TailEstimator::new(&model, &pattern);
        let mut server = Server::build_with(
            StoreKind::Redis,
            spec,
            hybridmem::clock::NoiseConfig::disabled(),
            &trace,
            Placement::AllSlow,
        )
        .unwrap();
        let report = server.run(&trace);
        for q in [0.5, 0.95, 0.99] {
            let predicted = est.quantile(|_| false, q);
            let measured = report.latency_quantile(q);
            let rel = (predicted - measured).abs() / measured;
            assert!(
                rel < 0.08,
                "q={q}: predicted {predicted:.0} vs measured {measured:.0}"
            );
        }
    }

    #[test]
    fn tails_fall_as_fastmem_grows() {
        let (model, pattern, _, _) = setup();
        let est = TailEstimator::new(&model, &pattern);
        let order = pattern.hotness_order();
        let sweep = est.sweep(&order, 6, 0.99);
        assert_eq!(sweep.first().unwrap().0, 0);
        assert_eq!(sweep.last().unwrap().0, order.len());
        for w in sweep.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-6,
                "p99 must not rise with more FastMem: {sweep:?}"
            );
        }
        assert!(sweep.last().unwrap().1 < sweep.first().unwrap().1);
    }

    #[test]
    fn p99_exceeds_median() {
        let (model, pattern, _, _) = setup();
        let est = TailEstimator::new(&model, &pattern);
        let p50 = est.quantile(|_| false, 0.5);
        let p99 = est.quantile(|_| false, 0.99);
        assert!(p99 >= p50);
    }

    #[test]
    fn quantile_bounds() {
        let (model, pattern, _, _) = setup();
        let est = TailEstimator::new(&model, &pattern);
        // q=0 is the fastest atom, q=1 the slowest; both finite, ordered.
        let lo = est.quantile(|_| true, 0.0);
        let hi = est.quantile(|_| true, 1.0);
        assert!(lo > 0.0 && hi >= lo);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_quantile() {
        let (model, pattern, _, _) = setup();
        let _ = TailEstimator::new(&model, &pattern).quantile(|_| true, 1.5);
    }
}
