//! # Mnemo — memory capacity sizing and data tiering consultant
//!
//! Reproduction of *Mnemo: Boosting Memory Cost Efficiency in Hybrid
//! Memory Systems* (Doudali & Gavrilovska, 2019).
//!
//! Mnemo answers one question for key-value store operators on hybrid
//! memory (fast DRAM + cheap/slow NVM): **what is the minimum amount of
//! FastMem a workload needs to perform within a given SLO**, and what does
//! every intermediate capacity split cost? It does so *without* any
//! fine-grained execution monitoring: two real baseline runs (everything
//! in FastMem, everything in SlowMem) plus an a-priori workload
//! description feed a simple analytical model that is accurate to a
//! fraction of a percent.
//!
//! The crate mirrors the paper's architecture (its Fig. 6):
//!
//! * [`sensitivity`] — the **Sensitivity Engine**: executes the workload
//!   against the two extreme placements and extracts performance
//!   baselines (total runtime, average read/write service times).
//! * [`pattern`] — the **Pattern Engine**: analyses the request pattern
//!   into per-key statistics `Req(keys)` and produces key orderings
//!   (touch order for standalone Mnemo, externally supplied orders for
//!   the "existing tiering solution" deployment).
//! * [`tiering`] — the **MnemoT Pattern Engine**: weight-based ordering
//!   (`accesses / size`) and knapsack selection, the key-value-store
//!   optimised tiering of Section IV.
//! * [`estimate`] — the **Estimate Engine**: per-prefix throughput and
//!   cost-reduction rows; [`curve`] holds the resulting
//!   [`EstimateCurve`] and its CSV form.
//! * [`placement`] — the **Placement Engine**: statically populates the
//!   Fast/Slow servers from a chosen row.
//! * [`advisor`] — the end-to-end consultant: pick the cheapest
//!   configuration inside a performance SLO (the paper's Fig. 9 query).
//! * [`model`] — estimation model variants (the paper's global-average
//!   model plus a size-aware refinement) — see the ablation benches.
//! * [`accuracy`] — estimate-vs-measured error statistics (Fig. 8a).
//! * [`tail`] — tail-latency estimation from the per-key service-time
//!   mixture (an extension: the paper explicitly does not estimate
//!   tails).
//! * [`baselines`] — comparator profilers (instrumentation-based and
//!   one-baseline+ML) for the Table IV overhead comparison.
//! * [`knapsack`] — the 0/1 knapsack solver used by tiering baselines.
//! * [`multi`] — shared-FastMem allocation across consolidated tenants
//!   (extension).
//! * [`ntier`] — N-tier estimate curves and shared-hierarchy capacity
//!   planning over [`hybridmem::TierStack`] specs (extension; see the
//!   `mnemo-tier` crate for hierarchies and policies).
//!
//! # Quickstart
//!
//! ```
//! use mnemo::advisor::{Advisor, AdvisorConfig};
//! use kvsim::StoreKind;
//! use ycsb::WorkloadSpec;
//!
//! // A trimmed trending workload (10k keys / 100k requests in the paper).
//! let trace = WorkloadSpec::trending().scaled(300, 3_000).generate(7);
//! let advisor = Advisor::new(AdvisorConfig::default());
//! let consult = advisor.consult(StoreKind::Redis, &trace).unwrap();
//!
//! // The cheapest split within 10% of FastMem-only performance:
//! let rec = consult.recommend(0.10).unwrap();
//! assert!(rec.cost_reduction < 1.0);
//! assert!(rec.fast_bytes <= trace.dataset_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod advisor;
pub mod baselines;
pub mod curve;
pub mod estimate;
pub mod knapsack;
pub mod model;
pub mod multi;
pub mod ntier;
pub mod pattern;
pub mod placement;
pub mod report;
pub mod sensitivity;
pub mod tail;
pub mod tiering;

pub use accuracy::{ErrorStats, EvalPoint};
pub use advisor::{
    Advisor, AdvisorConfig, Consultation, DegradedReason, Recommendation, ResilientRecommendation,
};
pub use curve::{CurveRow, EstimateCurve};
pub use estimate::EstimateEngine;
pub use model::{ModelKind, PerfModel};
pub use ntier::{NTierEstimator, NTierRow, SharedStackPlan, TenantStackGrant, TenantWorkload};
pub use pattern::{KeyStats, PatternEngine};
pub use sensitivity::{BaselineRun, Baselines, SensitivityEngine};
pub use tail::TailEstimator;
pub use tiering::MnemoT;
