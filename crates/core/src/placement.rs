//! The Placement Engine (Fig. 6, component 4).
//!
//! "Takes the selected key tiering, that satisfies the user's performance
//! to cost trade-offs, and statically places the key-value pairs to the
//! corresponding FastServer and SlowServer, prior to the actual workload
//! execution. ... Mnemo provides a static key allocation, with no support
//! for dynamic data migration."

use crate::curve::{CurveRow, EstimateCurve};
use kvsim::{EngineError, Placement, StoreKind, TwoInstanceCluster};
use ycsb::Trace;

/// The Placement Engine.
#[derive(Debug, Clone, Default)]
pub struct PlacementEngine;

impl PlacementEngine {
    /// The placement implied by a curve row: the first `row.prefix` keys
    /// of `order` in FastMem.
    pub fn placement_for(order: &[u64], row: &CurveRow) -> Placement {
        Placement::fast_prefix(order, row.prefix)
    }

    /// The placement for an explicit FastMem byte budget along `order`
    /// (keys are taken in order until the budget is exhausted; the first
    /// key that does not fit stops the scan, preserving the prefix
    /// property of the estimate curve).
    pub fn placement_for_budget(order: &[u64], sizes: &[u64], budget_bytes: u64) -> Placement {
        let mut used = 0u64;
        let mut n = 0;
        for &k in order {
            let b = sizes[k as usize];
            if used + b > budget_bytes {
                break;
            }
            used += b;
            n += 1;
        }
        Placement::fast_prefix(order, n)
    }

    /// Statically populate a two-instance deployment (FastServer +
    /// SlowServer) from a selected row — the paper's final, optional step
    /// where "the user needs to provide Mnemo with the actual dataset".
    pub fn populate(
        store: StoreKind,
        trace: &Trace,
        order: &[u64],
        row: &CurveRow,
    ) -> Result<TwoInstanceCluster, EngineError> {
        let placement = Self::placement_for(order, row);
        TwoInstanceCluster::from_placement(store, trace, &placement)
    }

    /// Sanity-check that a curve row's byte accounting matches the
    /// placement it implies (used by tests and the harness).
    pub fn verify_row(order: &[u64], sizes: &[u64], curve: &EstimateCurve, prefix: usize) -> bool {
        let expect: u64 = order[..prefix].iter().map(|&k| sizes[k as usize]).sum();
        curve.rows[prefix].fast_bytes == expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EstimateEngine;
    use crate::model::{ModelKind, PerfModel};
    use crate::pattern::PatternEngine;
    use crate::sensitivity::SensitivityEngine;
    use cloudcost::CostModel;
    use hybridmem::MemTier;
    use ycsb::WorkloadSpec;

    fn setup() -> (Trace, Vec<u64>, EstimateCurve) {
        let t = WorkloadSpec::trending().scaled(120, 1_500).generate(8);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let m = PerfModel::fit(ModelKind::GlobalAverage, &b, &t.sizes);
        let p = PatternEngine::analyze(&t);
        let order = p.hotness_order();
        let curve = EstimateEngine::new(m, CostModel::default()).curve(&p, &order);
        (t, order, curve)
    }

    #[test]
    fn placement_for_row_prefixes_order() {
        let (_, order, curve) = setup();
        let row = &curve.rows[30];
        let placement = PlacementEngine::placement_for(&order, row);
        for (i, &k) in order.iter().enumerate() {
            let want = if i < 30 { MemTier::Fast } else { MemTier::Slow };
            assert_eq!(placement.tier_of(k), want, "key {k} at position {i}");
        }
    }

    #[test]
    fn budget_placement_stays_within_budget() {
        let (t, order, _) = setup();
        let budget = t.dataset_bytes() / 3;
        let placement = PlacementEngine::placement_for_budget(&order, &t.sizes, budget);
        let used: u64 = (0..t.keys())
            .filter(|&k| placement.tier_of(k) == MemTier::Fast)
            .map(|k| t.sizes[k as usize])
            .sum();
        assert!(used <= budget);
        assert!(used > 0);
    }

    #[test]
    fn populate_builds_matching_cluster() {
        let (t, order, curve) = setup();
        let row = &curve.rows[40];
        let cluster = PlacementEngine::populate(StoreKind::Redis, &t, &order, row).unwrap();
        assert_eq!(cluster.key_split().0, 40);
        let (fast_bytes, _) = cluster.byte_split();
        // Engine overhead makes server bytes >= logical curve bytes.
        assert!(fast_bytes >= row.fast_bytes);
    }

    #[test]
    fn curve_rows_match_placement_accounting() {
        let (t, order, curve) = setup();
        for prefix in [0usize, 1, 17, 60, 120] {
            assert!(PlacementEngine::verify_row(
                &order, &t.sizes, &curve, prefix
            ));
        }
    }
}
