//! MnemoT — the key-value-store-optimised Pattern Engine (Fig. 7).
//!
//! "The Pattern Engine now takes as an input the key-value sizes and
//! associates each key with a placement weight. The weight is the number
//! of accesses the key receives, divided by the size of the key-value
//! pair. In this way, keys that are heavily accessed (hot keys) are
//! prioritized for DRAM allocations, as well as small keys also get an
//! advantage, so that more key-value pairs can be satisfied by FastMem
//! until capacity is full."
//!
//! This is the tiering methodology of X-Mem/Unimem-style systems, but
//! computed from the workload description alone — at "zero overhead
//! compared to existing profiling solutions" (§V-B) because no memory
//! access instrumentation is required.

use crate::knapsack::{self, Item, Solution};
use crate::model::PerfModel;
use crate::pattern::PatternEngine;
use hybridmem::DetHashSet;
use ycsb::Op;

/// MnemoT's tiering engine.
#[derive(Debug, Clone, Default)]
pub struct MnemoT;

impl MnemoT {
    /// The placement weight of one key: `accesses / size`.
    pub fn weight(accesses: u64, bytes: u64) -> f64 {
        accesses as f64 / bytes.max(1) as f64
    }

    /// Keys ordered by descending placement weight — MnemoT's priority
    /// ordering for FastMem allocations. Ties break by key id.
    pub fn weight_order(pattern: &PatternEngine) -> Vec<u64> {
        let mut order: Vec<u64> = (0..pattern.key_count() as u64).collect();
        order.sort_by(|&a, &b| {
            let sa = pattern.key(a);
            let sb = pattern.key(b);
            let wa = Self::weight(sa.accesses(), sa.bytes);
            let wb = Self::weight(sb.accesses(), sb.bytes);
            wb.total_cmp(&wa).then(a.cmp(&b))
        });
        order
    }

    /// The 0/1-knapsack selection for one fixed FastMem capacity, as
    /// existing tiering solutions perform it: items are key-value pairs
    /// with their sizes as weights; values are the estimated runtime
    /// saved by promoting each key (from the fitted model).
    pub fn knapsack_select(
        pattern: &PatternEngine,
        model: &PerfModel,
        capacity_bytes: u64,
    ) -> Solution {
        let items: Vec<Item> = pattern
            .stats()
            .iter()
            .enumerate()
            .map(|(k, s)| Item {
                id: k as u64,
                weight: s.bytes,
                value: s.reads as f64 * model.promotion_benefit(Op::Read, s.bytes)
                    + s.writes as f64 * model.promotion_benefit(Op::Update, s.bytes),
            })
            .collect();
        knapsack::solve(&items, capacity_bytes)
    }

    /// The FastMem key set chosen by the weight ordering for a fixed
    /// capacity (greedy fill in weight order, skipping keys that no
    /// longer fit) — the cheap ordering-based equivalent of the knapsack.
    pub fn fill_capacity(pattern: &PatternEngine, capacity_bytes: u64) -> DetHashSet<u64> {
        let mut used = 0u64;
        let mut set = DetHashSet::default();
        for key in Self::weight_order(pattern) {
            let bytes = pattern.key(key).bytes;
            if used + bytes <= capacity_bytes {
                used += bytes;
                set.insert(key);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use crate::sensitivity::SensitivityEngine;
    use kvsim::StoreKind;
    use ycsb::{Request, Trace, WorkloadSpec};

    #[test]
    fn weight_prefers_hot_and_small() {
        assert!(
            MnemoT::weight(100, 1000) > MnemoT::weight(10, 1000),
            "hotter wins"
        );
        assert!(
            MnemoT::weight(100, 100) > MnemoT::weight(100, 1000),
            "smaller wins"
        );
        assert_eq!(MnemoT::weight(5, 0), 5.0, "zero size is guarded");
    }

    #[test]
    fn weight_order_on_crafted_trace() {
        // key 0: 2 accesses / 1000 B (w=0.002)
        // key 1: 2 accesses / 100 B  (w=0.02)  <- first
        // key 2: 1 access   / 100 B  (w=0.01)
        // key 3: 0 accesses          (w=0)     <- last
        let t = Trace {
            name: "crafted".into(),
            sizes: vec![1000, 100, 100, 100],
            requests: vec![
                Request {
                    key: 0,
                    op: Op::Read,
                },
                Request {
                    key: 0,
                    op: Op::Read,
                },
                Request {
                    key: 1,
                    op: Op::Read,
                },
                Request {
                    key: 1,
                    op: Op::Read,
                },
                Request {
                    key: 2,
                    op: Op::Read,
                },
            ],
        };
        let p = PatternEngine::analyze(&t);
        assert_eq!(MnemoT::weight_order(&p), vec![1, 2, 0, 3]);
    }

    #[test]
    fn weight_order_is_a_permutation() {
        let t = WorkloadSpec::trending_preview()
            .scaled(400, 4_000)
            .generate(1);
        let p = PatternEngine::analyze(&t);
        p.validate_order(&MnemoT::weight_order(&p)).unwrap();
    }

    #[test]
    fn scrambled_zipfian_becomes_zipfian_like_under_reordering() {
        // §V-A: MnemoT "identifies the hot keys and transforms the input
        // distribution into a zipfian like one" — after reordering, the
        // hottest keys come first, so the cumulative mass curve in the
        // new order dominates the id-order curve.
        let t = WorkloadSpec::timeline().scaled(500, 20_000).generate(2);
        let p = PatternEngine::analyze(&t);
        let order = MnemoT::weight_order(&p);
        let total: u64 = p.total_requests();
        let mass_in_order: u64 = order[..100].iter().map(|&k| p.key(k).accesses()).sum();
        let mass_by_id: u64 = (0..100).map(|k| p.key(k).accesses()).sum();
        assert!(
            mass_in_order as f64 / total as f64 > 0.5,
            "top-20% by weight carries the zipfian head: {mass_in_order}/{total}"
        );
        assert!(
            mass_in_order > 2 * mass_by_id,
            "reordering concentrates the head"
        );
    }

    #[test]
    fn fill_capacity_respects_budget() {
        let t = WorkloadSpec::trending().scaled(200, 2_000).generate(3);
        let p = PatternEngine::analyze(&t);
        let cap = p.total_bytes() / 4;
        let set = MnemoT::fill_capacity(&p, cap);
        let used: u64 = set.iter().map(|&k| p.key(k).bytes).sum();
        assert!(used <= cap);
        assert!(!set.is_empty());
    }

    #[test]
    fn knapsack_select_close_to_weight_fill() {
        let t = WorkloadSpec::trending().scaled(150, 2_000).generate(4);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let m = PerfModel::fit(ModelKind::GlobalAverage, &b, &t.sizes);
        let p = PatternEngine::analyze(&t);
        let cap = p.total_bytes() / 3;
        let ks = MnemoT::knapsack_select(&p, &m, cap);
        assert!(ks.weight <= cap);
        // The knapsack value must be at least as good as the greedy
        // weight-order fill scored under the same value function.
        let fill = MnemoT::fill_capacity(&p, cap);
        let value_of = |keys: &DetHashSet<u64>| -> f64 {
            keys.iter()
                .map(|&k| {
                    let s = p.key(k);
                    s.reads as f64 * m.promotion_benefit(Op::Read, s.bytes)
                        + s.writes as f64 * m.promotion_benefit(Op::Update, s.bytes)
                })
                .sum()
        };
        assert!(ks.value >= value_of(&fill) - 1e-6);
    }
}
