//! Comparator profilers for the Table IV overhead comparison.
//!
//! The paper contrasts MnemoT's profiling pipeline with two families of
//! existing solutions:
//!
//! * **Instrumentation-based tiering** (X-Mem, Shen et al., Unimem): use
//!   binary instrumentation or hardware counters to record *every memory
//!   access*, then compute per-object weights. "The utilization of such
//!   tools ... can add up to 40x overhead". [`InstrumentedProfiler`]
//!   reproduces that pipeline: it shadows a workload execution at
//!   cache-line granularity and derives the same hot-first ordering —
//!   correct, but paying per-line work per request.
//! * **One-baseline + learned model** (Tahoe): measure only the
//!   all-SlowMem baseline and infer the all-FastMem baseline with a
//!   pre-trained ML model, trading a second real run for a training
//!   corpus. [`MlBaselineProfiler`] implements the approach with a linear
//!   ridge model over workload features.
//!
//! The `overhead` bench and the `table4` harness binary time these
//! against MnemoT's input-description-only Pattern Engine.

use crate::pattern::PatternEngine;
use crate::sensitivity::{BaselineRun, Baselines, SensitivityEngine};
use hybridmem::{DetHashMap, DetHashSet, MemTier};
use kvsim::{EngineError, RunReport, StoreKind};
use ycsb::Trace;

/// Cache-line size assumed by the instrumentation shadow.
const LINE_BYTES: u64 = 64;

/// Result of an instrumentation-based profiling pass.
#[derive(Debug, Clone)]
pub struct InstrumentedProfile {
    /// Keys ordered hottest-first by instrumented access density.
    pub order: Vec<u64>,
    /// Total instrumented events (one per cache line touched) — the
    /// quantity the 40x overhead scales with.
    pub events: u64,
    /// Events per request: the instrumentation amplification factor.
    pub amplification: f64,
}

/// X-Mem-style instrumentation profiler.
#[derive(Debug, Clone, Default)]
pub struct InstrumentedProfiler;

impl InstrumentedProfiler {
    /// Shadow-execute the trace, counting every cache line touched per
    /// object, and derive the weight ordering from the counts.
    pub fn profile(trace: &Trace) -> InstrumentedProfile {
        let mut line_counts: DetHashMap<u64, u64> = DetHashMap::default();
        let mut events: u64 = 0;
        for r in &trace.requests {
            let bytes = trace.sizes[r.key as usize];
            let lines = bytes.div_ceil(LINE_BYTES).max(1);
            // Every line of the value is an instrumented event, plus two
            // metadata lines (dict entry + header), exactly the accesses
            // a PIN tool would observe.
            let base = r.key << 24;
            for l in 0..lines {
                *line_counts.entry(base + l).or_insert(0) += 1;
                events += 1;
            }
            *line_counts.entry(base + (1 << 20)).or_insert(0) += 1;
            *line_counts.entry(base + (1 << 20) + 1).or_insert(0) += 1;
            events += 2;
        }
        // Aggregate line counts back to objects and order by density.
        let mut per_key: Vec<u64> = vec![0; trace.sizes.len()];
        for (&line, &count) in &line_counts {
            let key = (line >> 24) as usize;
            if key < per_key.len() {
                per_key[key] += count;
            }
        }
        let mut order: Vec<u64> = (0..trace.sizes.len() as u64).collect();
        order.sort_by(|&a, &b| {
            let da = per_key[a as usize] as f64 / trace.sizes[a as usize].max(1) as f64;
            let db = per_key[b as usize] as f64 / trace.sizes[b as usize].max(1) as f64;
            db.total_cmp(&da).then(a.cmp(&b))
        });
        let amplification = if trace.is_empty() {
            0.0
        } else {
            events as f64 / trace.len() as f64
        };
        InstrumentedProfile {
            order,
            events,
            amplification,
        }
    }
}

/// PEBS/IBS-style *sampling* profiler: observes only every `period`-th
/// memory access instead of all of them (the other instrumentation
/// strategy Table IV's comparison set uses — "sampling low-level
/// architecture counters"). Cheaper than full instrumentation by the
/// sampling factor, but the derived ordering is noisy for cold keys.
#[derive(Debug, Clone)]
pub struct SamplingProfiler {
    /// Sample one in `period` accesses.
    pub period: u64,
}

impl SamplingProfiler {
    /// Build with a sampling period (e.g. PEBS at 1/1000).
    pub fn new(period: u64) -> SamplingProfiler {
        assert!(period >= 1, "period must be at least 1");
        SamplingProfiler { period }
    }

    /// Shadow-profile the trace, observing every `period`-th cache-line
    /// access, and derive the hot-first ordering from the samples.
    pub fn profile(&self, trace: &Trace) -> InstrumentedProfile {
        let mut per_key: Vec<u64> = vec![0; trace.sizes.len()];
        let mut events: u64 = 0;
        let mut access_counter: u64 = 0;
        for r in &trace.requests {
            let bytes = trace.sizes[r.key as usize];
            let lines = bytes.div_ceil(LINE_BYTES).max(1) + 2;
            // Deterministic systematic sampling over the access stream:
            // the number of sampled events in [counter, counter+lines).
            let start = access_counter;
            access_counter += lines;
            let sampled = access_counter / self.period - start / self.period;
            if sampled > 0 {
                per_key[r.key as usize] += sampled;
                events += sampled;
            }
        }
        let mut order: Vec<u64> = (0..trace.sizes.len() as u64).collect();
        order.sort_by(|&a, &b| {
            let da = per_key[a as usize] as f64 / trace.sizes[a as usize].max(1) as f64;
            let db = per_key[b as usize] as f64 / trace.sizes[b as usize].max(1) as f64;
            db.total_cmp(&da).then(a.cmp(&b))
        });
        let amplification = if trace.is_empty() {
            0.0
        } else {
            events as f64 / trace.len() as f64
        };
        InstrumentedProfile {
            order,
            events,
            amplification,
        }
    }
}

/// Workload features the Tahoe-like model regresses over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadFeatures {
    /// Measured all-SlowMem runtime (ns).
    pub slow_runtime_ns: f64,
    /// Read requests.
    pub reads: f64,
    /// Write requests.
    pub writes: f64,
    /// Total value bytes requested across the trace.
    pub bytes_requested: f64,
}

impl WorkloadFeatures {
    /// Extract features from a slow-baseline report and its trace.
    pub fn extract(trace: &Trace, slow_report: &RunReport) -> WorkloadFeatures {
        let bytes_requested: u64 = trace
            .requests
            .iter()
            .map(|r| trace.sizes[r.key as usize])
            .sum();
        WorkloadFeatures {
            slow_runtime_ns: slow_report.runtime_ns,
            reads: slow_report.reads as f64,
            writes: slow_report.writes as f64,
            bytes_requested: bytes_requested as f64,
        }
    }

    fn vector(&self) -> [f64; 4] {
        [
            self.slow_runtime_ns,
            self.reads,
            self.writes,
            self.bytes_requested,
        ]
    }
}

/// Linear model predicting the all-FastMem runtime from slow-baseline
/// features (ridge-regularised least squares, closed form via Gaussian
/// elimination).
#[derive(Debug, Clone, PartialEq)]
pub struct MlBaselineModel {
    coefficients: [f64; 4],
}

impl MlBaselineModel {
    /// Fit from `(features, measured fast runtime)` training pairs.
    pub fn train(samples: &[(WorkloadFeatures, f64)]) -> MlBaselineModel {
        assert!(samples.len() >= 2, "need at least two training workloads");
        const D: usize = 4;
        const RIDGE: f64 = 1e-6;
        let mut xtx = [[0.0f64; D]; D];
        let mut xty = [0.0f64; D];
        for (f, y) in samples {
            let x = f.vector();
            for i in 0..D {
                for j in 0..D {
                    xtx[i][j] += x[i] * x[j];
                }
                xty[i] += x[i] * y;
            }
        }
        // Scale-aware ridge: regularise relative to each diagonal.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += RIDGE * row[i].max(1.0);
        }
        let coefficients = solve_linear(xtx, xty);
        MlBaselineModel { coefficients }
    }

    /// Predict the all-FastMem runtime (ns).
    pub fn predict(&self, features: &WorkloadFeatures) -> f64 {
        let x = features.vector();
        self.coefficients
            .iter()
            .zip(x)
            .map(|(c, v)| c * v)
            .sum::<f64>()
            .max(0.0)
    }
}

/// Solve a 4x4 linear system by Gaussian elimination with partial
/// pivoting.
fn solve_linear(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> [f64; 4] {
    const D: usize = 4;
    for col in 0..D {
        // Pivot.
        let pivot = (col..D)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-30, "singular system");
        let pivot_row = a[col];
        for row in col + 1..D {
            let factor = a[row][col] / diag;
            for (target, &p) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *target -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; D];
    for row in (0..D).rev() {
        let mut acc = b[row];
        for (k, xk) in x.iter().enumerate().skip(row + 1) {
            acc -= a[row][k] * xk;
        }
        x[row] = acc / a[row][row];
    }
    x
}

/// Tahoe-like profiler: one real baseline + model inference.
#[derive(Debug, Clone)]
pub struct MlBaselineProfiler {
    model: MlBaselineModel,
}

impl MlBaselineProfiler {
    /// Build from a trained model.
    pub fn new(model: MlBaselineModel) -> MlBaselineProfiler {
        MlBaselineProfiler { model }
    }

    /// Collect a training corpus: run *both* baselines for every
    /// (store, workload) pair — this is exactly the data-collection cost
    /// the paper calls "significant".
    pub fn collect_training(
        engine: &SensitivityEngine,
        store: StoreKind,
        traces: &[Trace],
    ) -> Result<Vec<(WorkloadFeatures, f64)>, EngineError> {
        let mut samples = Vec::with_capacity(traces.len());
        for trace in traces {
            let baselines = engine.measure(store, trace)?;
            samples.push((
                WorkloadFeatures::extract(trace, &baselines.slow.report),
                baselines.fast.runtime_ns,
            ));
        }
        Ok(samples)
    }

    /// Profile a workload with one real run: measure the SlowMem baseline
    /// and *infer* the FastMem one. The synthesised fast [`BaselineRun`]
    /// scales the slow run's averages by the predicted runtime ratio.
    pub fn profile(
        &self,
        engine: &SensitivityEngine,
        store: StoreKind,
        trace: &Trace,
    ) -> Result<Baselines, EngineError> {
        let slow = engine.measure_one(store, trace, kvsim::Placement::AllSlow)?;
        let features = WorkloadFeatures::extract(trace, &slow.report);
        let predicted_fast_runtime = self.model.predict(&features);
        let ratio = if slow.runtime_ns > 0.0 {
            predicted_fast_runtime / slow.runtime_ns
        } else {
            1.0
        };
        let mut fast_report = slow.report.clone();
        fast_report.runtime_ns = predicted_fast_runtime;
        fast_report.read_ns_total *= ratio;
        fast_report.write_ns_total *= ratio;
        for s in &mut fast_report.samples {
            s.service_ns *= ratio;
        }
        let fast = BaselineRun {
            tier: MemTier::Fast,
            runtime_ns: predicted_fast_runtime,
            avg_read_ns: slow.avg_read_ns * ratio,
            avg_write_ns: slow.avg_write_ns * ratio,
            report: fast_report,
        };
        Ok(Baselines {
            store,
            workload: trace.name.clone(),
            fast,
            slow,
        })
    }
}

/// Sanity cross-check used by tests and the harness: the instrumented
/// ordering and MnemoT's description-only ordering agree on the hot head.
pub fn head_agreement(trace: &Trace, head: usize) -> f64 {
    let instrumented = InstrumentedProfiler::profile(trace);
    let pattern = PatternEngine::analyze(trace);
    let mnemot = crate::tiering::MnemoT::weight_order(&pattern);
    let a: DetHashSet<u64> = instrumented.order.iter().take(head).copied().collect();
    let b: DetHashSet<u64> = mnemot.iter().take(head).copied().collect();
    a.intersection(&b).count() as f64 / head.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::WorkloadSpec;

    #[test]
    fn instrumented_profile_counts_lines() {
        let t = WorkloadSpec::trending().scaled(100, 1_000).generate(4);
        let p = InstrumentedProfiler::profile(&t);
        assert_eq!(p.order.len(), 100);
        // 100 KB thumbnails = ~1600 lines + 2 metadata events per request.
        assert!(
            p.amplification > 1000.0,
            "amplification {}",
            p.amplification
        );
        assert!(p.events > t.len() as u64 * 1000);
    }

    #[test]
    fn instrumented_and_mnemot_agree_on_hot_head() {
        let t = WorkloadSpec::trending().scaled(200, 8_000).generate(4);
        let agreement = head_agreement(&t, 40);
        assert!(agreement > 0.9, "head agreement {agreement}");
    }

    #[test]
    fn solve_linear_recovers_known_solution() {
        let a = [
            [4.0, 1.0, 0.0, 0.0],
            [1.0, 3.0, 1.0, 0.0],
            [0.0, 1.0, 2.0, 1.0],
            [0.0, 0.0, 1.0, 5.0],
        ];
        let x_true = [1.0, -2.0, 3.0, 0.5];
        let mut b = [0.0; 4];
        for i in 0..4 {
            b[i] = (0..4).map(|j| a[i][j] * x_true[j]).sum();
        }
        let x = solve_linear(a, b);
        for i in 0..4 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}]");
        }
    }

    #[test]
    fn ml_model_learns_runtime_ratio() {
        // Synthetic corpus: fast runtime = 0.7 * slow runtime exactly.
        let samples: Vec<(WorkloadFeatures, f64)> = (1..20)
            .map(|i| {
                let slow = 1e9 * i as f64;
                (
                    WorkloadFeatures {
                        slow_runtime_ns: slow,
                        reads: 1000.0 * i as f64,
                        writes: 100.0 * i as f64,
                        bytes_requested: 5e7 * i as f64,
                    },
                    0.7 * slow,
                )
            })
            .collect();
        let model = MlBaselineModel::train(&samples);
        let probe = samples[7].0;
        let rel = (model.predict(&probe) - samples[7].1).abs() / samples[7].1;
        assert!(rel < 0.01, "relative error {rel}");
    }

    #[test]
    fn tahoe_like_profiler_approximates_real_baselines() {
        let engine = SensitivityEngine::default();
        // Train on four workloads, test on a fifth.
        let train_traces: Vec<Trace> = [
            WorkloadSpec::trending(),
            WorkloadSpec::timeline(),
            WorkloadSpec::edit_thumbnail(),
            WorkloadSpec::trending_preview(),
        ]
        .iter()
        .map(|w| w.scaled(120, 1_500).generate(5))
        .collect();
        let samples =
            MlBaselineProfiler::collect_training(&engine, StoreKind::Redis, &train_traces).unwrap();
        let profiler = MlBaselineProfiler::new(MlBaselineModel::train(&samples));

        let test = WorkloadSpec::trending().scaled(120, 1_500).generate(99);
        let inferred = profiler.profile(&engine, StoreKind::Redis, &test).unwrap();
        let real = engine.measure(StoreKind::Redis, &test).unwrap();
        let rel = (inferred.fast.runtime_ns - real.fast.runtime_ns).abs() / real.fast.runtime_ns;
        // The learned baseline is decent but visibly worse than actually
        // running the workload — the paper's argument for Mnemo's choice.
        assert!(rel < 0.25, "inferred fast baseline off by {rel}");
        assert!(rel > 1e-9, "inference should not be magically exact");
    }

    #[test]
    #[should_panic(expected = "two training")]
    fn training_requires_samples() {
        let _ = MlBaselineModel::train(&[]);
    }

    #[test]
    fn sampling_period_one_matches_full_instrumentation() {
        let t = WorkloadSpec::trending().scaled(150, 3_000).generate(8);
        let full = InstrumentedProfiler::profile(&t);
        let sampled = SamplingProfiler::new(1).profile(&t);
        assert_eq!(sampled.events, full.events, "period 1 observes everything");
        assert_eq!(sampled.order, full.order);
    }

    #[test]
    fn sampling_reduces_events_proportionally() {
        let t = WorkloadSpec::trending().scaled(150, 3_000).generate(8);
        let full = InstrumentedProfiler::profile(&t);
        let sampled = SamplingProfiler::new(1000).profile(&t);
        let ratio = full.events as f64 / sampled.events.max(1) as f64;
        assert!(
            (900.0..1100.0).contains(&ratio),
            "event reduction ratio {ratio}"
        );
    }

    #[test]
    fn sampled_ordering_still_finds_the_hot_head() {
        let t = WorkloadSpec::trending().scaled(300, 10_000).generate(8);
        let full = InstrumentedProfiler::profile(&t);
        let sampled = SamplingProfiler::new(1000).profile(&t);
        let head = 60; // hottest 20%
        let a: std::collections::HashSet<u64> = full.order.iter().take(head).copied().collect();
        let b: std::collections::HashSet<u64> = sampled.order.iter().take(head).copied().collect();
        let agreement = a.intersection(&b).count() as f64 / head as f64;
        assert!(
            agreement > 0.7,
            "head agreement under 1/1000 sampling: {agreement}"
        );
    }

    #[test]
    #[should_panic(expected = "period")]
    fn sampling_rejects_zero_period() {
        let _ = SamplingProfiler::new(0);
    }
}
