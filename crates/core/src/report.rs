//! Human-readable consultation reports.
//!
//! Renders a [`Consultation`] as a self-contained Markdown document: the
//! measured baselines, the cost/performance frontier, a text sparkline of
//! the estimate curve, and the recommendation for a given SLO. Used by
//! `mnemo consult --report` and handy for attaching to capacity-planning
//! tickets.

use crate::advisor::Consultation;
use std::fmt::Write as _;

/// Unicode block characters for the curve sparkline, low to high.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a throughput sparkline of the estimate curve (`width` buckets
/// across the FastMem-ratio axis).
pub fn sparkline(consultation: &Consultation, width: usize) -> String {
    assert!(width >= 2, "sparkline needs at least two columns");
    let rows = consultation.curve.thin(width);
    let lo = rows
        .iter()
        .map(|r| r.est_throughput_ops_s)
        .fold(f64::INFINITY, f64::min);
    let hi = rows
        .iter()
        .map(|r| r.est_throughput_ops_s)
        .fold(0.0, f64::max);
    rows.iter()
        .map(|r| {
            if hi <= lo {
                SPARKS[0]
            } else {
                let t = (r.est_throughput_ops_s - lo) / (hi - lo);
                SPARKS[((t * (SPARKS.len() - 1) as f64).round() as usize).min(SPARKS.len() - 1)]
            }
        })
        .collect()
}

/// Render the full Markdown report.
pub fn markdown(consultation: &Consultation, slo_slowdown: f64) -> String {
    let mut out = String::new();
    let b = &consultation.baselines;
    let curve = &consultation.curve;
    let _ = writeln!(out, "# Mnemo consultation: {}\n", b.workload);
    let _ = writeln!(
        out,
        "Store: **{}** — {} keys, {} requests, {:.1} MB dataset.\n",
        b.store,
        consultation.pattern.key_count(),
        curve.requests,
        curve.total_bytes as f64 / 1e6
    );

    let _ = writeln!(out, "## Measured baselines\n");
    let _ = writeln!(
        out,
        "| configuration | runtime | throughput | avg read | avg write |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for run in [&b.fast, &b.slow] {
        let _ = writeln!(
            out,
            "| all data in {} | {:.2} s | {:.0} ops/s | {:.1} µs | {:.1} µs |",
            run.tier,
            run.runtime_ns / 1e9,
            run.throughput_ops_s(),
            run.avg_read_ns / 1e3,
            run.avg_write_ns / 1e3
        );
    }
    let _ = writeln!(
        out,
        "\nHybrid-memory sensitivity: FastMem-only is **{:+.1}%** faster than SlowMem-only.\n",
        b.sensitivity() * 100.0
    );

    let _ = writeln!(out, "## Estimate curve\n");
    let _ = writeln!(
        out,
        "Throughput vs FastMem share (SlowMem-only → FastMem-only):\n"
    );
    let _ = writeln!(out, "```\n{}\n```\n", sparkline(consultation, 40));

    let _ = writeln!(out, "## Cost/performance frontier\n");
    let _ = writeln!(
        out,
        "| slowdown budget | FastMem share | memory cost (×FastMem-only) |"
    );
    let _ = writeln!(out, "|---|---|---|");
    for rec in consultation.frontier(&[0.02, 0.05, slo_slowdown, 0.25]) {
        let _ = writeln!(
            out,
            "| {:.0}% | {:.1}% | {:.2}× |",
            rec.est_slowdown.max(0.0) * 100.0,
            rec.fast_ratio * 100.0,
            rec.cost_reduction
        );
    }

    if let Some(rec) = consultation.recommend(slo_slowdown) {
        let _ = writeln!(
            out,
            "\n## Recommendation (≤{:.0}% slowdown)\n",
            slo_slowdown * 100.0
        );
        let _ = writeln!(
            out,
            "Place the **{} hottest keys** ({:.1}% of dataset bytes) in FastMem.",
            rec.prefix,
            rec.fast_ratio * 100.0
        );
        let _ = writeln!(
            out,
            "Memory bill: **{:.0}%** of the all-DRAM configuration; estimated \
             throughput {:.0} ops/s ({:.1}% below FastMem-only).",
            rec.cost_reduction * 100.0,
            rec.est_throughput_ops_s,
            rec.est_slowdown * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{Advisor, AdvisorConfig};
    use kvsim::StoreKind;
    use ycsb::WorkloadSpec;

    fn consultation() -> Consultation {
        let trace = WorkloadSpec::trending().scaled(120, 1_200).generate(3);
        Advisor::new(AdvisorConfig::default())
            .consult(StoreKind::Redis, &trace)
            .unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let md = markdown(&consultation(), 0.10);
        for needle in [
            "# Mnemo consultation",
            "## Measured baselines",
            "## Estimate curve",
            "## Cost/performance frontier",
            "## Recommendation",
            "FastMem-only",
            "ops/s",
        ] {
            assert!(md.contains(needle), "missing '{needle}' in:\n{md}");
        }
    }

    #[test]
    fn sparkline_rises_left_to_right() {
        let c = consultation();
        let s = sparkline(&c, 20);
        assert_eq!(s.chars().count(), 20);
        let first = s.chars().next().unwrap();
        let last = s.chars().last().unwrap();
        let rank = |ch| SPARKS.iter().position(|&x| x == ch).unwrap();
        assert!(rank(last) > rank(first), "curve should rise: {s}");
    }

    #[test]
    #[should_panic(expected = "two columns")]
    fn sparkline_rejects_width_one() {
        let _ = sparkline(&consultation(), 1);
    }
}
