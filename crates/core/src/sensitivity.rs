//! The Sensitivity Engine (Fig. 6, component 1).
//!
//! "A customized YCSB client, which executes the actual workload itself
//! ... It determines the performance baselines for the best case, where
//! all data is in FastMem, and worst case, where all data is in SlowMem,
//! including average total runtime and average read and write request
//! response times."

use hybridmem::clock::NoiseConfig;
use hybridmem::{HybridSpec, MemTier};
use kvsim::{EngineError, Placement, RunReport, Server, StoreKind};
use ycsb::{Op, Trace};

/// One measured baseline (one extreme placement).
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Which tier held all data.
    pub tier: MemTier,
    /// Total measured runtime (ns).
    pub runtime_ns: f64,
    /// Average read service time (ns).
    pub avg_read_ns: f64,
    /// Average write service time (ns).
    pub avg_write_ns: f64,
    /// The full report (per-request samples feed the size-aware model).
    pub report: RunReport,
}

impl BaselineRun {
    fn from_report(tier: MemTier, report: RunReport) -> BaselineRun {
        BaselineRun {
            tier,
            runtime_ns: report.runtime_ns,
            avg_read_ns: report.avg_read_ns(),
            avg_write_ns: report.avg_write_ns(),
            report,
        }
    }

    /// Throughput of this baseline (ops/s).
    pub fn throughput_ops_s(&self) -> f64 {
        self.report.throughput_ops_s()
    }
}

/// The pair of extreme-placement baselines.
#[derive(Debug, Clone)]
pub struct Baselines {
    /// Store that was measured.
    pub store: StoreKind,
    /// Workload name.
    pub workload: String,
    /// Everything-in-FastMem run (best case).
    pub fast: BaselineRun,
    /// Everything-in-SlowMem run (worst case).
    pub slow: BaselineRun,
}

impl Baselines {
    /// The tier-latency deltas the estimate model is built on:
    /// `(SlowRead - FastRead, SlowWrite - FastWrite)` in ns.
    pub fn deltas(&self) -> (f64, f64) {
        (
            self.slow.avg_read_ns - self.fast.avg_read_ns,
            self.slow.avg_write_ns - self.fast.avg_write_ns,
        )
    }

    /// Relative throughput gap between the extremes: how sensitive this
    /// store/workload pair is to hybrid memory at all (§V-A's
    /// store-comparison observation).
    pub fn sensitivity(&self) -> f64 {
        let f = self.fast.throughput_ops_s();
        let s = self.slow.throughput_ops_s();
        if s == 0.0 {
            return 0.0;
        }
        f / s - 1.0
    }
}

/// The Sensitivity Engine: measures the two baselines by real (simulated)
/// execution, with no application modification.
#[derive(Debug, Clone)]
pub struct SensitivityEngine {
    spec: HybridSpec,
    noise: NoiseConfig,
    fault_plan: Option<mnemo_faults::FaultPlan>,
}

impl Default for SensitivityEngine {
    fn default() -> Self {
        SensitivityEngine::new(HybridSpec::paper_testbed(), NoiseConfig::disabled())
    }
}

impl SensitivityEngine {
    /// Engine over a given testbed spec and measurement-noise model.
    pub fn new(spec: HybridSpec, noise: NoiseConfig) -> SensitivityEngine {
        SensitivityEngine {
            spec,
            noise,
            fault_plan: None,
        }
    }

    /// Measure under a fault plan: both baseline servers get the plan's
    /// degradation windows and crash schedule installed before running,
    /// so the resulting estimate curve describes the *faulted* testbed.
    pub fn with_fault_plan(mut self, plan: mnemo_faults::FaultPlan) -> SensitivityEngine {
        self.fault_plan = Some(plan);
        self
    }

    /// The testbed spec in use.
    pub fn spec(&self) -> &HybridSpec {
        &self.spec
    }

    /// Execute the workload "as-is" under both extreme placements. The
    /// two runs are independent simulations with decorrelated jitter
    /// seeds, so they execute concurrently on the bounded pool; results
    /// are identical to running them back to back.
    pub fn measure(&self, store: StoreKind, trace: &Trace) -> Result<Baselines, EngineError> {
        // mnemo-lint: allow(D007, "predict's dot product runs whole within one arm of the join; no cross-worker reduction")
        let (fast, slow) = mnemo_par::Pool::current().join(
            || self.measure_one(store, trace, Placement::AllFast),
            || self.measure_one(store, trace, Placement::AllSlow),
        );
        Ok(Baselines {
            store,
            workload: trace.name.clone(),
            fast: fast?,
            slow: slow?,
        })
    }

    /// Measure a whole grid of (store, trace) cells — the fan-out shape
    /// of the paper-figure sweeps and store-comparison tables. Cells run
    /// as coarse jobs on the bounded pool; the returned `Vec` is in cell
    /// order and identical to measuring each cell sequentially.
    pub fn measure_grid(
        &self,
        cells: &[(StoreKind, &Trace)],
    ) -> Result<Vec<Baselines>, EngineError> {
        mnemo_par::Pool::current()
            .run_jobs(cells.len(), |i| { // mnemo-lint: allow(D007, "the only reachable reduction is predict's per-key dot product, local to each grid cell job")
                let (store, trace) = cells[i];
                self.measure(store, trace)
            })
            .into_iter()
            .collect()
    }

    /// One extreme run.
    pub fn measure_one(
        &self,
        store: StoreKind,
        trace: &Trace,
        placement: Placement,
    ) -> Result<BaselineRun, EngineError> {
        let tier = match &placement {
            Placement::AllFast => MemTier::Fast,
            Placement::AllSlow => MemTier::Slow,
            Placement::FastSet(_) => MemTier::Fast, // mixed; tag as fast-led
        };
        let mut noise = self.noise;
        // Decorrelate the two baseline runs' jitter.
        noise.seed = noise.seed.wrapping_add(match tier {
            MemTier::Fast => 0x5eed_fa57,
            MemTier::Slow => 0x5eed_510e,
        });
        let mut server = Server::build_with(store, self.spec.clone(), noise, trace, placement)?;
        if let Some(plan) = &self.fault_plan {
            server.install_fault_plan(plan);
        }
        Ok(BaselineRun::from_report(tier, server.run(trace)))
    }

    /// Average read/write times per op from a report, split by op — a
    /// convenience for model fitting.
    pub fn op_means(report: &RunReport) -> (f64, f64) {
        let mut read = (0.0, 0u64);
        let mut write = (0.0, 0u64);
        for s in &report.samples {
            match s.op {
                Op::Read => {
                    read.0 += s.service_ns;
                    read.1 += 1;
                }
                Op::Update => {
                    write.0 += s.service_ns;
                    write.1 += 1;
                }
            }
        }
        (
            if read.1 == 0 {
                0.0
            } else {
                read.0 / read.1 as f64
            },
            if write.1 == 0 {
                0.0
            } else {
                write.0 / write.1 as f64
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::trending().scaled(150, 2_000).generate(3)
    }

    #[test]
    fn baselines_bound_the_tradeoff() {
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &trace())
            .unwrap();
        assert!(b.fast.runtime_ns < b.slow.runtime_ns);
        assert!(b.fast.avg_read_ns < b.slow.avg_read_ns);
        assert!(b.sensitivity() > 0.0);
        let (dr, dw) = b.deltas();
        assert!(dr > 0.0, "read delta {dr}");
        assert!(dw >= 0.0, "write delta {dw}");
    }

    #[test]
    fn memcached_least_sensitive_dynamo_most() {
        let t = trace();
        let eng = SensitivityEngine::default();
        let redis = eng.measure(StoreKind::Redis, &t).unwrap().sensitivity();
        let mem = eng.measure(StoreKind::Memcached, &t).unwrap().sensitivity();
        let dyn_ = eng.measure(StoreKind::Dynamo, &t).unwrap().sensitivity();
        assert!(
            dyn_ > redis && redis > mem,
            "dyn {dyn_:.3} redis {redis:.3} mem {mem:.3}"
        );
    }

    #[test]
    fn writes_see_smaller_deltas_than_reads() {
        let t = WorkloadSpec::edit_thumbnail()
            .scaled(150, 2_000)
            .generate(3);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let (dr, dw) = b.deltas();
        assert!(dw < dr, "write delta {dw} must be below read delta {dr}");
    }

    #[test]
    fn op_means_match_report_averages() {
        let t = WorkloadSpec::edit_thumbnail()
            .scaled(100, 1_000)
            .generate(5);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let (r, w) = SensitivityEngine::op_means(&b.fast.report);
        assert!((r - b.fast.avg_read_ns).abs() < 1e-6);
        assert!((w - b.fast.avg_write_ns).abs() < 1e-6);
    }

    #[test]
    fn measure_grid_matches_sequential_cells() {
        let t = trace();
        let eng = SensitivityEngine::default();
        let cells: Vec<(StoreKind, &Trace)> = vec![
            (StoreKind::Redis, &t),
            (StoreKind::Dynamo, &t),
            (StoreKind::Memcached, &t),
        ];
        let grid = eng.measure_grid(&cells).unwrap();
        assert_eq!(grid.len(), 3);
        for ((store, trace), cell) in cells.iter().zip(&grid) {
            let solo = eng.measure(*store, trace).unwrap();
            assert_eq!(cell.store, *store);
            assert_eq!(cell.fast.runtime_ns, solo.fast.runtime_ns);
            assert_eq!(cell.slow.runtime_ns, solo.slow.runtime_ns);
        }
    }

    #[test]
    fn noisy_baselines_stay_close_to_clean() {
        let t = trace();
        let clean = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let noisy =
            SensitivityEngine::new(HybridSpec::paper_testbed(), NoiseConfig::default_jitter(1))
                .measure(StoreKind::Redis, &t)
                .unwrap();
        let rel = (clean.fast.runtime_ns - noisy.fast.runtime_ns).abs() / clean.fast.runtime_ns;
        assert!(rel < 0.02, "noise drift {rel}");
    }
}
