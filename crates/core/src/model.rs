//! Estimation model variants.
//!
//! The paper's Estimate Engine uses a deliberately simple model: the
//! total runtime is the number of read and write requests times the
//! *average* read and write service times measured by the Sensitivity
//! Engine per tier ([`ModelKind::GlobalAverage`]).
//!
//! For mixed-record-size workloads (Trending Preview, Fig. 5c) the paper
//! notes that sizing happens "at a key size granularity". The
//! [`ModelKind::SizeAware`] variant refines the global averages into an
//! affine per-tier/per-op fit `time = a + b * bytes` over the baseline
//! samples — still closed-form and instantaneous, but it attributes the
//! right service time to each key when sizes differ by orders of
//! magnitude. The `ablation_model` bench quantifies the difference.

use crate::sensitivity::Baselines;
use hybridmem::MemTier;
use serde::{Deserialize, Serialize};
use ycsb::Op;

/// Which estimation model to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModelKind {
    /// The paper's model: one average read and write time per tier.
    #[default]
    GlobalAverage,
    /// Affine-in-size refinement: `time = a + b * bytes` per (tier, op).
    SizeAware,
}

/// An affine service-time predictor for one (tier, op) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct AffineFit {
    intercept: f64,
    slope_per_byte: f64,
}

impl AffineFit {
    const ZERO: AffineFit = AffineFit {
        intercept: 0.0,
        slope_per_byte: 0.0,
    };

    /// Least-squares fit of `ns ~ a + b * bytes`. With fewer than two
    /// distinct sizes the slope degenerates to zero and the intercept to
    /// the plain mean — exactly the global-average behaviour.
    fn fit(samples: &[(u64, f64)]) -> AffineFit {
        if samples.is_empty() {
            return AffineFit::ZERO;
        }
        let n = samples.len() as f64;
        let mean_x = samples.iter().map(|&(b, _)| b as f64).sum::<f64>() / n;
        let mean_y = samples.iter().map(|&(_, t)| t).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var = 0.0;
        for &(b, t) in samples {
            let dx = b as f64 - mean_x;
            cov += dx * (t - mean_y);
            var += dx * dx;
        }
        if var < 1e-9 {
            return AffineFit {
                intercept: mean_y,
                slope_per_byte: 0.0,
            };
        }
        let slope = cov / var;
        AffineFit {
            intercept: mean_y - slope * mean_x,
            slope_per_byte: slope,
        }
    }

    fn predict(&self, bytes: u64) -> f64 {
        self.intercept + self.slope_per_byte * bytes as f64
    }
}

/// A fitted performance model: predicts per-request service time from
/// `(tier, op, value size)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    kind: ModelKind,
    /// [tier][op] — indexed via `idx()`.
    fits: [AffineFit; 4],
}

fn idx(tier: MemTier, op: Op) -> usize {
    let t = match tier {
        MemTier::Fast => 0,
        MemTier::Slow => 1,
    };
    let o = match op {
        Op::Read => 0,
        Op::Update => 1,
    };
    t * 2 + o
}

impl PerfModel {
    /// Fit a model from measured baselines. `sizes[key]` is the stored
    /// value size (from the workload descriptor).
    pub fn fit(kind: ModelKind, baselines: &Baselines, sizes: &[u64]) -> PerfModel {
        let mut fits = [AffineFit::ZERO; 4];
        for (tier, run) in [
            (MemTier::Fast, &baselines.fast),
            (MemTier::Slow, &baselines.slow),
        ] {
            match kind {
                ModelKind::GlobalAverage => {
                    fits[idx(tier, Op::Read)] = AffineFit {
                        intercept: run.avg_read_ns,
                        slope_per_byte: 0.0,
                    };
                    fits[idx(tier, Op::Update)] = AffineFit {
                        intercept: run.avg_write_ns,
                        slope_per_byte: 0.0,
                    };
                }
                ModelKind::SizeAware => {
                    for op in [Op::Read, Op::Update] {
                        // Filtered collect can't size itself; reserve
                        // the upper bound once instead of doubling up
                        // through ~trace-length growth twice per fit.
                        let mut samples: Vec<(u64, f64)> =
                            Vec::with_capacity(run.report.samples.len());
                        samples.extend(
                            run.report
                                .samples
                                .iter()
                                .filter(|s| s.op == op)
                                .map(|s| (sizes[s.key as usize], s.service_ns)),
                        );
                        fits[idx(tier, op)] = AffineFit::fit(&samples);
                    }
                }
            }
        }
        PerfModel { kind, fits }
    }

    /// Which variant this model is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Predicted service time (ns) of one request.
    pub fn predict(&self, tier: MemTier, op: Op, bytes: u64) -> f64 {
        self.fits[idx(tier, op)].predict(bytes).max(0.0)
    }

    /// Per-request benefit of promoting a key to FastMem:
    /// `predict(Slow) - predict(Fast)`, by op.
    pub fn promotion_benefit(&self, op: Op, bytes: u64) -> f64 {
        self.predict(MemTier::Slow, op, bytes) - self.predict(MemTier::Fast, op, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::SensitivityEngine;
    use kvsim::StoreKind;
    use ycsb::WorkloadSpec;

    fn setup(kind: ModelKind) -> (PerfModel, ycsb::Trace) {
        let t = WorkloadSpec::trending_preview()
            .scaled(200, 3_000)
            .generate(2);
        // At this reduced test scale the whole hot set fits the paper's
        // 12 MB LLC (unlike the paper's 1 GB dataset), which would mask
        // the size dependence the test probes — shrink the cache to keep
        // the testbed proportionate.
        let mut spec = hybridmem::HybridSpec::paper_testbed();
        spec.cache.capacity_bytes = t.dataset_bytes() / 85;
        let engine = SensitivityEngine::new(spec, hybridmem::clock::NoiseConfig::disabled());
        let b = engine.measure(StoreKind::Redis, &t).unwrap();
        (PerfModel::fit(kind, &b, &t.sizes), t)
    }

    #[test]
    fn global_average_reproduces_baseline_means() {
        let t = WorkloadSpec::edit_thumbnail()
            .scaled(100, 2_000)
            .generate(1);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let m = PerfModel::fit(ModelKind::GlobalAverage, &b, &t.sizes);
        assert_eq!(m.predict(MemTier::Fast, Op::Read, 123), b.fast.avg_read_ns);
        assert_eq!(
            m.predict(MemTier::Slow, Op::Update, 9_999_999),
            b.slow.avg_write_ns
        );
    }

    #[test]
    fn slow_always_predicted_slower() {
        for kind in [ModelKind::GlobalAverage, ModelKind::SizeAware] {
            let (m, t) = setup(kind);
            for &bytes in t.sizes.iter().take(50) {
                assert!(
                    m.predict(MemTier::Slow, Op::Read, bytes)
                        > m.predict(MemTier::Fast, Op::Read, bytes),
                    "{kind:?} bytes={bytes}"
                );
            }
        }
    }

    #[test]
    fn size_aware_separates_small_and_large() {
        let (m, _) = setup(ModelKind::SizeAware);
        let small = m.predict(MemTier::Slow, Op::Read, 1_024);
        let large = m.predict(MemTier::Slow, Op::Read, 100 * 1024);
        assert!(large > small * 1.4, "large {large} small {small}");
    }

    #[test]
    fn global_average_is_size_blind() {
        let (m, _) = setup(ModelKind::GlobalAverage);
        assert_eq!(
            m.predict(MemTier::Fast, Op::Read, 100),
            m.predict(MemTier::Fast, Op::Read, 1 << 20)
        );
    }

    #[test]
    fn promotion_benefit_positive_for_reads() {
        let (m, t) = setup(ModelKind::SizeAware);
        for &bytes in t.sizes.iter().take(20) {
            assert!(m.promotion_benefit(Op::Read, bytes) > 0.0);
        }
    }

    #[test]
    fn affine_fit_recovers_exact_line() {
        let samples: Vec<(u64, f64)> = (1..100)
            .map(|b| (b * 100, 500.0 + 0.25 * (b * 100) as f64))
            .collect();
        let fit = AffineFit::fit(&samples);
        assert!((fit.intercept - 500.0).abs() < 1e-6);
        assert!((fit.slope_per_byte - 0.25).abs() < 1e-9);
    }

    #[test]
    fn affine_fit_degenerate_cases() {
        assert_eq!(AffineFit::fit(&[]), AffineFit::ZERO);
        let single_size: Vec<(u64, f64)> = vec![(100, 10.0), (100, 20.0)];
        let fit = AffineFit::fit(&single_size);
        assert_eq!(fit.slope_per_byte, 0.0);
        assert_eq!(fit.intercept, 15.0);
    }

    #[test]
    fn read_only_workload_has_zero_write_model() {
        let t = WorkloadSpec::trending().scaled(100, 1_000).generate(1);
        let b = SensitivityEngine::default()
            .measure(StoreKind::Redis, &t)
            .unwrap();
        let m = PerfModel::fit(ModelKind::SizeAware, &b, &t.sizes);
        assert_eq!(m.predict(MemTier::Fast, Op::Update, 1000), 0.0);
    }
}
