//! 0/1 knapsack solvers for capacity-constrained tiering.
//!
//! Section IV: "Some of the existing solutions map the tiering problem to
//! the 0/1 knapsack, where the items are the key-value pairs, together
//! with their calculated weights and sizes, and the size of the knapsacks
//! are the fixed capacities." This module provides that formulation: an
//! exact dynamic program over quantised capacities for small instances,
//! and the classic density-greedy approximation for large ones.

/// One knapsack item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Identifier carried through to the solution (key id).
    pub id: u64,
    /// Capacity the item consumes (bytes).
    pub weight: u64,
    /// Benefit of selecting the item (e.g. estimated runtime saved).
    pub value: f64,
}

/// A knapsack solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Ids of the selected items.
    pub selected: Vec<u64>,
    /// Total weight used.
    pub weight: u64,
    /// Total value achieved.
    pub value: f64,
}

/// Greedy by value density (value/weight), the approximation used in
/// practice by tiering systems: sort by density, take everything that
/// still fits. Zero-weight items are taken first (infinite density).
pub fn greedy(items: &[Item], capacity: u64) -> Solution {
    let mut order: Vec<&Item> = items.iter().filter(|i| i.value > 0.0).collect();
    order.sort_by(|a, b| {
        let da = a.value / a.weight.max(1) as f64;
        let db = b.value / b.weight.max(1) as f64;
        db.total_cmp(&da).then(a.id.cmp(&b.id))
    });
    let mut solution = Solution {
        selected: Vec::new(),
        weight: 0,
        value: 0.0,
    };
    for item in order {
        if solution.weight + item.weight <= capacity {
            solution.selected.push(item.id);
            solution.weight += item.weight;
            solution.value += item.value;
        }
    }
    solution
}

/// Exact DP over capacities quantised to `unit`-byte buckets. Memory and
/// time are `O(items * capacity/unit)`; the caller picks `unit` so the
/// table stays small (the quantisation rounds item weights *up*, so the
/// solution never exceeds the true capacity).
pub fn dp_exact(items: &[Item], capacity: u64, unit: u64) -> Solution {
    assert!(unit > 0, "quantisation unit must be positive");
    let cap = (capacity / unit) as usize;
    let n = items.len();
    // value[w] = best value using weight <= w; choice bitmap for recovery.
    let mut best = vec![0.0f64; cap + 1];
    let mut take = vec![false; n * (cap + 1)];
    for (i, item) in items.iter().enumerate() {
        let w = (item.weight.div_ceil(unit)) as usize;
        if w > cap || item.value <= 0.0 {
            continue;
        }
        for c in (w..=cap).rev() {
            let candidate = best[c - w] + item.value;
            if candidate > best[c] {
                best[c] = candidate;
                take[i * (cap + 1) + c] = true;
            }
        }
    }
    // Recover the chosen set.
    let mut c = cap;
    let mut selected = Vec::new();
    let mut weight = 0u64;
    let mut value = 0.0;
    for i in (0..n).rev() {
        if c > 0 || items[i].weight == 0 {
            let w = (items[i].weight.div_ceil(unit)) as usize;
            if w <= c && take[i * (cap + 1) + c] {
                selected.push(items[i].id);
                weight += items[i].weight;
                value += items[i].value;
                c -= w;
            }
        }
    }
    selected.reverse();
    Solution {
        selected,
        weight,
        value,
    }
}

/// Budget of DP table cells above which [`solve`] falls back to greedy.
pub const DP_CELL_BUDGET: usize = 20_000_000;

/// Solve with the exact DP when the quantised table fits the cell budget,
/// otherwise greedy. `unit` defaults to 1/4096 of the capacity (so the DP
/// table has at most ~4k columns) but never below 1 byte.
pub fn solve(items: &[Item], capacity: u64) -> Solution {
    let unit = (capacity / 4096).max(1);
    let cells = items.len().saturating_mul((capacity / unit) as usize + 1);
    if cells <= DP_CELL_BUDGET {
        let dp = dp_exact(items, capacity, unit);
        let gr = greedy(items, capacity);
        // Quantisation can (rarely) make DP worse than greedy; return the
        // better of the two so `solve` dominates `greedy` always.
        if dp.value >= gr.value {
            dp
        } else {
            gr
        }
    } else {
        greedy(items, capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(id: u64, weight: u64, value: f64) -> Item {
        Item { id, weight, value }
    }

    #[test]
    fn dp_beats_greedy_on_classic_counterexample() {
        // Greedy by density takes the small dense item and misses the
        // optimal pair.
        let items = vec![item(0, 6, 60.0), item(1, 5, 45.0), item(2, 5, 45.0)];
        let g = greedy(&items, 10);
        let d = dp_exact(&items, 10, 1);
        assert_eq!(g.selected, vec![0]);
        assert_eq!(d.selected, vec![1, 2]);
        assert!(d.value > g.value);
    }

    #[test]
    fn zero_capacity_selects_nothing_with_weight() {
        let items = vec![item(0, 1, 10.0), item(1, 0, 5.0)];
        let g = greedy(&items, 0);
        assert_eq!(g.selected, vec![1], "zero-weight items always fit");
        assert_eq!(g.weight, 0);
    }

    #[test]
    fn negative_and_zero_value_items_are_skipped() {
        let items = vec![item(0, 1, 0.0), item(1, 1, -5.0), item(2, 1, 1.0)];
        let g = greedy(&items, 10);
        assert_eq!(g.selected, vec![2]);
        let d = dp_exact(&items, 10, 1);
        assert_eq!(d.selected, vec![2]);
    }

    #[test]
    fn dp_respects_capacity_under_quantisation() {
        let items: Vec<Item> = (0..20)
            .map(|i| item(i, 100 + i * 7, (i + 1) as f64))
            .collect();
        for unit in [1, 8, 64, 512] {
            let s = dp_exact(&items, 1000, unit);
            assert!(s.weight <= 1000, "unit {unit}: weight {}", s.weight);
        }
    }

    #[test]
    fn solve_uses_dp_for_small_and_greedy_for_huge() {
        let small = vec![item(0, 6, 60.0), item(1, 5, 45.0), item(2, 5, 45.0)];
        let s = solve(&small, 10);
        assert_eq!(s.selected, vec![1, 2], "small instance must be exact");
        // Huge instance: just verify it completes and respects capacity.
        let huge: Vec<Item> = (0..200_000)
            .map(|i| item(i, 1000 + (i % 977), 1.0 + (i % 13) as f64))
            .collect();
        let s = solve(&huge, 50_000_000);
        assert!(s.weight <= 50_000_000);
        assert!(!s.selected.is_empty());
    }

    proptest! {
        #[test]
        fn dp_never_worse_than_greedy(
            weights in proptest::collection::vec(1u64..50, 1..12),
            capacity in 10u64..200,
        ) {
            let items: Vec<Item> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| item(i as u64, w, (w as f64) * ((i % 3) as f64 + 0.5)))
                .collect();
            let g = greedy(&items, capacity);
            let d = dp_exact(&items, capacity, 1);
            prop_assert!(d.value >= g.value - 1e-9);
            prop_assert!(d.weight <= capacity);
            prop_assert!(g.weight <= capacity);
        }

        #[test]
        fn dp_is_optimal_vs_bruteforce(
            weights in proptest::collection::vec(1u64..20, 1..10),
            capacity in 5u64..60,
        ) {
            let items: Vec<Item> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| item(i as u64, w, ((i * 7 + 3) % 11) as f64))
                .collect();
            let d = dp_exact(&items, capacity, 1);
            // Brute force over all subsets.
            let mut best = 0.0f64;
            for mask in 0u32..(1 << items.len()) {
                let (mut w, mut v) = (0u64, 0.0);
                for (i, it) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        w += it.weight;
                        v += it.value;
                    }
                }
                if w <= capacity {
                    best = best.max(v);
                }
            }
            prop_assert!((d.value - best).abs() < 1e-9, "dp {} vs brute {}", d.value, best);
        }
    }
}
