//! Trace execution: the measured "server + client" pair.
//!
//! A [`Server`] owns one engine and plays [`ycsb`] traces against it,
//! producing the quantities the paper's Sensitivity Engine extracts by
//! actually running the workload: total runtime, average read/write
//! service times, throughput and latency distributions.

use crate::dynamo_like::DynamoLike;
use crate::engine::{EngineError, KvEngine};
use crate::memcached_like::MemcachedLike;
use crate::profile::StoreKind;
use crate::redis_like::RedisLike;
use crate::rocks_like::RocksLike;
use hybridmem::clock::NoiseConfig;
use hybridmem::{
    DegradationProfile, DetHashSet, Histogram, HybridSpec, MemTier, NoiseModel, SimClock,
};
use mnemo_faults::{FaultPlan, ShardCrash};
use mnemo_telemetry::{AccessStatKeys, CacheStatKeys, EpochLog, Snapshot};
use ycsb::{AccessEvent, Op, Trace};

/// Initial data placement for a run — the paper's `numactl` binding plus
/// Mnemo's per-key static placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Everything on the DRAM node (best-case baseline).
    AllFast,
    /// Everything on the throttled node (worst-case baseline).
    AllSlow,
    /// The listed keys in FastMem, the rest in SlowMem.
    FastSet(DetHashSet<u64>),
}

impl Placement {
    /// The tier a key lands in under this placement.
    pub fn tier_of(&self, key: u64) -> MemTier {
        match self {
            Placement::AllFast => MemTier::Fast,
            Placement::AllSlow => MemTier::Slow,
            Placement::FastSet(set) => {
                if set.contains(&key) {
                    MemTier::Fast
                } else {
                    MemTier::Slow
                }
            }
        }
    }

    /// Convenience: the first `n` keys of `order` go to FastMem.
    pub fn fast_prefix(order: &[u64], n: usize) -> Placement {
        Placement::FastSet(order.iter().take(n).copied().collect())
    }
}

/// One timed request (for model fitting and error analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSample {
    /// Key requested.
    pub key: u64,
    /// Operation type.
    pub op: Op,
    /// Simulated service time in nanoseconds.
    pub service_ns: f64,
}

/// The result of one measured run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Store that served the run.
    pub store: StoreKind,
    /// Workload name.
    pub workload: String,
    /// Requests served.
    pub requests: usize,
    /// Total simulated runtime in nanoseconds.
    pub runtime_ns: f64,
    /// Read count.
    pub reads: u64,
    /// Write count.
    pub writes: u64,
    /// Total nanoseconds across reads.
    pub read_ns_total: f64,
    /// Total nanoseconds across writes.
    pub write_ns_total: f64,
    /// Read service-time distribution.
    pub read_hist: Histogram,
    /// Write service-time distribution.
    pub write_hist: Histogram,
    /// Per-request samples, in trace order.
    pub samples: Vec<RequestSample>,
}

impl RunReport {
    /// Overall throughput in operations per second.
    pub fn throughput_ops_s(&self) -> f64 {
        if self.runtime_ns == 0.0 {
            return 0.0;
        }
        self.requests as f64 / (self.runtime_ns / 1e9)
    }

    /// Mean read service time (ns).
    pub fn avg_read_ns(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_ns_total / self.reads as f64
        }
    }

    /// Mean write service time (ns).
    pub fn avg_write_ns(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.write_ns_total / self.writes as f64
        }
    }

    /// Mean service time over all requests (the paper's "Average latency
    /// to service a request from the client perspective", Fig. 8c).
    pub fn avg_latency_ns(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.runtime_ns / self.requests as f64
        }
    }

    /// Tail latency across *all* requests (Figs. 8d/8e): a merged view of
    /// the read and write histograms.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut merged = self.read_hist.clone();
        merged.merge(&self.write_hist);
        merged.quantile(q)
    }
}

/// A server instance: one engine + measurement jitter.
pub struct Server {
    engine: Box<dyn KvEngine>,
    noise: NoiseModel,
    store: StoreKind,
    /// Whether a degradation profile is installed (guards the per-request
    /// sim-time push so unfaulted runs stay on the original fast path).
    degraded: bool,
    /// Crash schedule for this server, sorted by crash time.
    crashes: Vec<ShardCrash>,
}

/// Instantiate an engine of `kind` over `spec`.
pub fn make_engine(kind: StoreKind, spec: HybridSpec) -> Box<dyn KvEngine> {
    match kind {
        StoreKind::Redis => Box::new(RedisLike::new(spec)),
        StoreKind::Memcached => Box::new(MemcachedLike::new(spec)),
        StoreKind::Dynamo => Box::new(DynamoLike::new(spec)),
        StoreKind::Rocks => Box::new(RocksLike::new(spec)),
    }
}

impl Server {
    /// Build a server on the paper's testbed spec, load the trace's
    /// dataset under `placement`, with measurement noise disabled.
    pub fn build(
        kind: StoreKind,
        trace: &Trace,
        placement: Placement,
    ) -> Result<Server, EngineError> {
        Server::build_with(
            kind,
            HybridSpec::paper_testbed(),
            NoiseConfig::disabled(),
            trace,
            placement,
        )
    }

    /// Fully parameterised constructor.
    pub fn build_with(
        kind: StoreKind,
        spec: HybridSpec,
        noise: NoiseConfig,
        trace: &Trace,
        placement: Placement,
    ) -> Result<Server, EngineError> {
        let mut engine = make_engine(kind, spec);
        for (key, &bytes) in trace.sizes.iter().enumerate() {
            engine.load(key as u64, bytes, placement.tier_of(key as u64))?;
        }
        Ok(Server {
            engine,
            noise: NoiseModel::new(noise),
            store: kind,
            degraded: false,
            crashes: Vec::new(),
        })
    }

    /// Install (or clear) a time-varying device degradation profile.
    /// While installed, every request pushes the sim clock into the
    /// memory system before being served, so accesses and reservations
    /// see the profile's windows at the right virtual time.
    pub fn set_degradation(&mut self, profile: Option<DegradationProfile>) {
        self.degraded = profile.is_some();
        self.engine.memory_mut().set_degradation(profile);
        if !self.degraded {
            self.engine.memory_mut().set_now_ns(0);
        }
    }

    /// Install a crash schedule (sorted by time; [`FaultPlan::shard_crashes`]
    /// returns it sorted). When the run's sim clock reaches a scheduled
    /// crash the server charges the restart plus per-key rebuild cost and
    /// restarts with a cold cache. Each crash fires at most once per run.
    pub fn set_crash_schedule(&mut self, crashes: Vec<ShardCrash>) {
        self.crashes = crashes;
    }

    /// Install the device-side parts of a fault plan on a standalone
    /// server (degradation windows plus shard-0 crashes). Sharded
    /// clusters install per-shard schedules instead.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let profile = plan.degradation_profile();
        self.set_degradation(if profile.is_empty() {
            None
        } else {
            Some(profile)
        });
        self.set_crash_schedule(plan.shard_crashes(0));
    }

    /// Re-place the dataset (static placement between runs; unmeasured).
    pub fn apply_placement(
        &mut self,
        trace: &Trace,
        placement: &Placement,
    ) -> Result<(), EngineError> {
        // Migrate slow->fast second so the fast tier never holds both the
        // outgoing and incoming working set at once.
        for key in 0..trace.keys() {
            if placement.tier_of(key) == MemTier::Slow {
                self.engine.migrate(key, MemTier::Slow)?;
            }
        }
        for key in 0..trace.keys() {
            if placement.tier_of(key) == MemTier::Fast {
                self.engine.migrate(key, MemTier::Fast)?;
            }
        }
        Ok(())
    }

    /// Execute the trace with client-side pipelining of `depth`
    /// outstanding requests (`redis-cli --pipe`-style): the fixed per-op
    /// cost — network round-trip, protocol parsing, event-loop dispatch —
    /// amortises across the batch, while the memory time of each request
    /// is still paid in full. Deep pipelines therefore *increase* a
    /// workload's hybrid-memory sensitivity (see the `pipelining`
    /// experiment). `depth == 1` is exactly [`Self::run`].
    pub fn run_pipelined(&mut self, trace: &Trace, depth: u32) -> RunReport {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        let amortised_away = self.engine.profile().fixed_op_ns * (1.0 - 1.0 / depth as f64);
        let mut report = self.run(trace);
        // Rescale every sample and the aggregates.
        let mut runtime = 0.0;
        let mut read_ns = 0.0;
        let mut write_ns = 0.0;
        let mut read_hist = Histogram::new();
        let mut write_hist = Histogram::new();
        for s in &mut report.samples {
            s.service_ns = (s.service_ns - amortised_away).max(0.0);
            runtime += s.service_ns;
            match s.op {
                Op::Read => {
                    read_ns += s.service_ns;
                    read_hist.record(s.service_ns);
                }
                Op::Update => {
                    write_ns += s.service_ns;
                    write_hist.record(s.service_ns);
                }
            }
        }
        report.runtime_ns = runtime;
        report.read_ns_total = read_ns;
        report.write_ns_total = write_ns;
        report.read_hist = read_hist;
        report.write_hist = write_hist;
        report
    }

    /// Execute the trace and report measurements. Measurement state
    /// (caches, device stats) is reset first, as between the paper's runs.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        self.run_with_tap(trace, &mut |_| {})
    }

    /// [`Self::run`] with an event tap: the observer is invoked once per
    /// executed request with the key, operation and record size — the
    /// feed a streaming profiler consumes. The tap deliberately does
    /// *not* see service times: Mnemo's online mode, like its offline
    /// mode, works from the access pattern alone, so anything a profiler
    /// learns here it could equally learn from a production server's
    /// request log.
    pub fn run_with_tap(&mut self, trace: &Trace, tap: &mut dyn FnMut(AccessEvent)) -> RunReport {
        self.run_instrumented(trace, tap, None)
    }

    /// [`Self::run`] with full telemetry: rolls an epoch snapshot every
    /// `epoch_len` requests (0 = one epoch for the whole run) recording
    /// per-request service times, tier hits, LLC hit/miss deltas and
    /// per-tier device counters. All recorded quantities are sim-domain,
    /// so the returned snapshots export byte-identically under any
    /// `--jobs` value.
    pub fn run_telemetered(&mut self, trace: &Trace, epoch_len: u64) -> (RunReport, Vec<Snapshot>) {
        let mut log = EpochLog::new(epoch_len);
        let report = self.run_instrumented(trace, &mut |_| {}, Some(&mut log));
        (report, log.finish())
    }

    fn run_instrumented(
        &mut self,
        trace: &Trace,
        tap: &mut dyn FnMut(AccessEvent),
        mut telemetry: Option<&mut EpochLog>,
    ) -> RunReport {
        self.engine.reset_measurement_state();
        let mut clock = SimClock::new();
        let mut report = RunReport {
            store: self.store,
            workload: trace.name.clone(),
            requests: trace.len(),
            runtime_ns: 0.0,
            reads: 0,
            writes: 0,
            read_ns_total: 0.0,
            write_ns_total: 0.0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            samples: Vec::with_capacity(trace.len()),
        };
        let mut next_crash = 0usize;
        // Metric names for the per-request telemetry block, formatted
        // once per run instead of ten times per request.
        let stat_keys = telemetry.as_ref().map(|_| {
            (
                AccessStatKeys::new("kv.fast"),
                AccessStatKeys::new("kv.slow"),
                CacheStatKeys::new("kv.llc"),
            )
        });
        for r in &trace.requests {
            // Fire any crash whose time has come: charge the recovery
            // cost and restart with a cold cache. Crash costs are part of
            // the measured runtime whether or not telemetry observes them.
            while next_crash < self.crashes.len()
                && clock.now_ns() >= self.crashes[next_crash].at_ns
            {
                let crash = self.crashes[next_crash];
                next_crash += 1;
                let recovery = crash.recovery_ns(self.engine.key_count());
                clock.advance(recovery);
                self.engine.memory_mut().clear_cache();
                if let Some(log) = telemetry.as_deref_mut() {
                    let tel = log.recorder();
                    tel.count("kv.fault.shard_crashes", 1);
                    tel.gauge("kv.fault.recovery_ns", recovery);
                }
            }
            if self.degraded {
                self.engine.memory_mut().set_now_ns(clock.now_ns());
            }
            let degraded_now = self.degraded
                && telemetry.is_some()
                && self
                    .engine
                    .memory()
                    .degradation()
                    .is_some_and(|p| p.is_active_at(clock.now_ns()));
            // Pre-op state for telemetry deltas; skipped entirely when no
            // telemetry is attached so `run` stays as cheap as before.
            let pre = telemetry.as_ref().map(|_| {
                let tier = self.engine.placement_of(r.key);
                let mem = self.engine.memory();
                let dev = tier.map(|t| *mem.tier_stats(t));
                (tier, dev, mem.cache_stats())
            });
            let raw = match r.op {
                Op::Read => self.engine.get(r.key),
                Op::Update => self.engine.put(r.key),
            }
            // mnemo-lint: allow(R001, "Server::build loads every key of the trace before run, so requests cannot hit an unloaded key")
            .expect("trace references unloaded key");
            tap(AccessEvent {
                key: r.key,
                op: r.op,
                bytes: trace.sizes[r.key as usize],
            });
            let ns = self.noise.perturb(raw);
            clock.advance(ns);
            if let (Some(log), Some((tier, pre_dev, pre_cache))) = (telemetry.as_deref_mut(), pre) {
                let mem = self.engine.memory();
                let cache_delta = mem.cache_stats().since(&pre_cache);
                let tel = log.recorder();
                tel.count("kv.requests", 1);
                tel.count(
                    match r.op {
                        Op::Read => "kv.reads",
                        Op::Update => "kv.writes",
                    },
                    1,
                );
                tel.observe("kv.request.service_ns", ns);
                if degraded_now {
                    tel.count("kv.fault.degraded_requests", 1);
                }
                // stat_keys is Some exactly when telemetry is, so this
                // if-let always enters inside the telemetry block.
                if let Some((fast_keys, slow_keys, llc_keys)) = stat_keys.as_ref() {
                    if let (Some(tier), Some(pre_dev)) = (tier, pre_dev) {
                        let (hit_name, dev_keys) = match tier {
                            MemTier::Fast => ("kv.tier.fast_hits", fast_keys),
                            MemTier::Slow => ("kv.tier.slow_hits", slow_keys),
                        };
                        tel.count(hit_name, 1);
                        let dev_delta = self.engine.memory().tier_stats(tier).since(&pre_dev);
                        tel.record_access_stats_with(dev_keys, &dev_delta);
                    }
                    tel.record_cache_stats_with(llc_keys, &cache_delta);
                }
                log.tick();
            }
            match r.op {
                Op::Read => {
                    report.reads += 1;
                    report.read_ns_total += ns;
                    report.read_hist.record(ns);
                }
                Op::Update => {
                    report.writes += 1;
                    report.write_ns_total += ns;
                    report.write_hist.record(ns);
                }
            }
            report.samples.push(RequestSample {
                key: r.key,
                op: r.op,
                service_ns: ns,
            });
        }
        report.runtime_ns = clock.now_ns() as f64;
        report
    }

    /// The engine (for inspection).
    pub fn engine(&self) -> &dyn KvEngine {
        self.engine.as_ref()
    }

    /// Mutable engine access (placement experiments).
    pub fn engine_mut(&mut self) -> &mut dyn KvEngine {
        self.engine.as_mut()
    }

    /// Which store this server simulates.
    pub fn store(&self) -> StoreKind {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::trending().scaled(200, 3_000).generate(42)
    }

    #[test]
    fn fast_beats_slow_for_every_store() {
        let t = trace();
        for kind in StoreKind::ALL {
            let fast = Server::build(kind, &t, Placement::AllFast).unwrap().run(&t);
            let slow = Server::build(kind, &t, Placement::AllSlow).unwrap().run(&t);
            assert!(
                fast.throughput_ops_s() > slow.throughput_ops_s(),
                "{kind}: fast {} <= slow {}",
                fast.throughput_ops_s(),
                slow.throughput_ops_s()
            );
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let t = WorkloadSpec::edit_thumbnail()
            .scaled(100, 2_000)
            .generate(1);
        let rep = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        assert_eq!(rep.reads + rep.writes, rep.requests as u64);
        assert_eq!(rep.samples.len(), rep.requests);
        let sample_sum: f64 = rep.samples.iter().map(|s| s.service_ns).sum();
        // Runtime is the rounded accumulation of sample times.
        assert!((sample_sum - rep.runtime_ns).abs() / rep.runtime_ns < 1e-3);
        assert!(rep.avg_read_ns() > 0.0);
        assert!(rep.avg_write_ns() > 0.0);
        assert!(rep.latency_quantile(0.99) >= rep.latency_quantile(0.5));
    }

    #[test]
    fn partial_placement_lands_between_baselines() {
        let t = trace();
        let fast = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        let slow = Server::build(StoreKind::Redis, &t, Placement::AllSlow)
            .unwrap()
            .run(&t);
        // Hottest half of the keys (by trace counts) in FastMem.
        let counts = t.key_counts();
        let mut order: Vec<u64> = (0..t.keys()).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(counts[k as usize].0 + counts[k as usize].1));
        let placement = Placement::fast_prefix(&order, 100);
        let mid = Server::build(StoreKind::Redis, &t, placement)
            .unwrap()
            .run(&t);
        assert!(mid.throughput_ops_s() < fast.throughput_ops_s());
        assert!(mid.throughput_ops_s() > slow.throughput_ops_s());
    }

    #[test]
    fn apply_placement_matches_fresh_build() {
        let t = trace();
        let placement = Placement::FastSet((0..100).collect());
        let fresh = Server::build(StoreKind::Redis, &t, placement.clone())
            .unwrap()
            .run(&t);
        let mut server = Server::build(StoreKind::Redis, &t, Placement::AllSlow).unwrap();
        server.apply_placement(&t, &placement).unwrap();
        let migrated = server.run(&t);
        let a = fresh.throughput_ops_s();
        let b = migrated.throughput_ops_s();
        assert!((a - b).abs() / a < 1e-6, "fresh {a} vs migrated {b}");
    }

    #[test]
    fn noise_changes_measurements_but_not_much() {
        let t = trace();
        let clean = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        let noisy = Server::build_with(
            StoreKind::Redis,
            HybridSpec::paper_testbed(),
            NoiseConfig::default_jitter(7),
            &t,
            Placement::AllFast,
        )
        .unwrap()
        .run(&t);
        assert_ne!(clean.runtime_ns, noisy.runtime_ns);
        let rel = (clean.runtime_ns - noisy.runtime_ns).abs() / clean.runtime_ns;
        assert!(rel < 0.01, "relative drift {rel}");
    }

    #[test]
    fn pipelining_amortises_fixed_cost_and_raises_sensitivity() {
        let t = trace();
        let sensitivity = |depth: u32| {
            let fast = Server::build(StoreKind::Redis, &t, Placement::AllFast)
                .unwrap()
                .run_pipelined(&t, depth);
            let slow = Server::build(StoreKind::Redis, &t, Placement::AllSlow)
                .unwrap()
                .run_pipelined(&t, depth);
            fast.throughput_ops_s() / slow.throughput_ops_s()
        };
        let shallow = sensitivity(1);
        let deep = sensitivity(32);
        assert!(
            deep > shallow * 1.5,
            "deep pipelines expose memory time: depth-32 {deep:.2}x vs depth-1 {shallow:.2}x"
        );
        // Depth 1 is identical to plain run.
        let a = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        let b = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run_pipelined(&t, 1);
        assert!((a.runtime_ns - b.runtime_ns).abs() / a.runtime_ns < 1e-3);
    }

    #[test]
    fn event_tap_sees_every_request_without_perturbing_the_run() {
        let t = trace();
        let clean = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        let mut events = Vec::new();
        let tapped = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run_with_tap(&t, &mut |e| events.push(e));
        assert_eq!(events.len(), t.len());
        for (e, r) in events.iter().zip(&t.requests) {
            assert_eq!((e.key, e.op), (r.key, r.op));
            assert_eq!(e.bytes, t.sizes[r.key as usize]);
        }
        assert_eq!(
            clean.runtime_ns, tapped.runtime_ns,
            "tap must not affect timing"
        );
    }

    #[test]
    fn telemetered_run_matches_plain_run_and_accounts_every_request() {
        let t = trace();
        let placement = Placement::FastSet((0..100).collect());
        let clean = Server::build(StoreKind::Redis, &t, placement.clone())
            .unwrap()
            .run(&t);
        let (report, snaps) = Server::build(StoreKind::Redis, &t, placement)
            .unwrap()
            .run_telemetered(&t, 1_000);
        // Telemetry must be a pure observer.
        assert_eq!(report.runtime_ns.to_bits(), clean.runtime_ns.to_bits());
        assert_eq!(snaps.len(), t.len().div_ceil(1_000));
        let sum = |name: &str| snaps.iter().map(|s| s.counter(name)).sum::<u64>();
        assert_eq!(sum("kv.requests"), t.len() as u64);
        assert_eq!(sum("kv.reads"), report.reads);
        assert_eq!(sum("kv.writes"), report.writes);
        assert_eq!(
            sum("kv.tier.fast_hits") + sum("kv.tier.slow_hits"),
            t.len() as u64
        );
        assert!(sum("kv.tier.fast_hits") > 0 && sum("kv.tier.slow_hits") > 0);
        // LLC deltas accumulate to the engine's own cumulative stats.
        let hist_count: u64 = snaps
            .iter()
            .filter_map(|s| s.histogram("kv.request.service_ns"))
            .map(|h| h.count())
            .sum();
        assert_eq!(hist_count, t.len() as u64);
        assert!(sum("kv.llc.hits") + sum("kv.llc.misses") > 0);
    }

    #[test]
    fn degradation_window_slows_the_run_and_is_counted() {
        use mnemo_faults::{FaultEvent, FaultPlan};
        let t = trace();
        let clean = Server::build(StoreKind::Redis, &t, Placement::AllSlow)
            .unwrap()
            .run(&t);
        let mut server = Server::build(StoreKind::Redis, &t, Placement::AllSlow).unwrap();
        // Slow tier runs at 32x latency and 1/32 bandwidth for the whole
        // run. The LLC absorbs most device traffic, so the end-to-end
        // slowdown is modest but must be clearly visible.
        server.install_fault_plan(
            &FaultPlan::new(1)
                .with(FaultEvent::LatencySpike {
                    tier: hybridmem::MemTier::Slow.id(),
                    start_ns: 0,
                    end_ns: u128::MAX,
                    factor: 32.0,
                })
                .with(FaultEvent::BandwidthThrottle {
                    tier: hybridmem::MemTier::Slow.id(),
                    start_ns: 0,
                    end_ns: u128::MAX,
                    factor: 1.0 / 32.0,
                }),
        );
        let (faulted, snaps) = server.run_telemetered(&t, 0);
        assert!(
            faulted.runtime_ns > clean.runtime_ns * 1.05,
            "faulted {} vs clean {}",
            faulted.runtime_ns,
            clean.runtime_ns
        );
        let degraded: u64 = snaps
            .iter()
            .map(|s| s.counter("kv.fault.degraded_requests"))
            .sum();
        assert_eq!(degraded, t.len() as u64);
        // Clearing the plan restores the exact nominal timing.
        server.set_degradation(None);
        server.set_crash_schedule(Vec::new());
        let restored = server.run(&t);
        assert_eq!(restored.runtime_ns.to_bits(), clean.runtime_ns.to_bits());
    }

    #[test]
    fn crash_schedule_charges_recovery_once() {
        use mnemo_faults::ShardCrash;
        let t = trace();
        let clean = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        let mut server = Server::build(StoreKind::Redis, &t, Placement::AllFast).unwrap();
        let crash = ShardCrash {
            at_ns: (clean.runtime_ns / 2.0) as u128,
            restart_ns: 1e6,
            rebuild_ns_per_key: 100.0,
        };
        server.set_crash_schedule(vec![crash]);
        let (crashed, snaps) = server.run_telemetered(&t, 0);
        let recovery = crash.recovery_ns(t.keys() as usize);
        assert!(
            crashed.runtime_ns > clean.runtime_ns + recovery * 0.9,
            "crashed {} clean {} recovery {}",
            crashed.runtime_ns,
            clean.runtime_ns,
            recovery
        );
        let crashes: u64 = snaps
            .iter()
            .map(|s| s.counter("kv.fault.shard_crashes"))
            .sum();
        assert_eq!(crashes, 1, "each scheduled crash fires at most once");
        // A crash scheduled beyond the end of the run never fires.
        let mut server = Server::build(StoreKind::Redis, &t, Placement::AllFast).unwrap();
        server.set_crash_schedule(vec![ShardCrash {
            at_ns: u128::MAX,
            restart_ns: 1e6,
            rebuild_ns_per_key: 0.0,
        }]);
        let r = server.run(&t);
        assert_eq!(r.runtime_ns.to_bits(), clean.runtime_ns.to_bits());
    }

    #[test]
    #[should_panic(expected = "unloaded key")]
    fn running_against_missing_keys_panics() {
        let t = trace();
        let mut bad = t.clone();
        bad.requests[0].key = 10_000; // beyond the dataset
        let _ = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&bad);
    }
}
