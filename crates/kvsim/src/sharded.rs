//! Concurrent multi-shard deployment.
//!
//! The paper's servers are concurrent processes; the simulator's engines
//! are single-threaded state machines. [`ShardedCluster`] recovers
//! concurrency the way real deployments do: the key space is hash-split
//! over `n` independent shards, shards are driven as coarse jobs on the
//! bounded `mnemo-par` pool (parking_lot-locked engines), and the
//! cluster-level runtime is the slowest shard's runtime — shards serve
//! requests in parallel.

use crate::engine::EngineError;
use crate::profile::StoreKind;
use crate::server::{Placement, RunReport, Server};
use hybridmem::clock::NoiseConfig;
use hybridmem::{Histogram, HybridSpec};
use parking_lot::Mutex;
use ycsb::Trace;

/// A hash-sharded set of servers driven concurrently.
pub struct ShardedCluster {
    shards: Vec<Mutex<Server>>,
}

impl ShardedCluster {
    /// Build `n` shards; each shard loads only its own keys under the
    /// given placement. Shards get the full device bandwidth each (the
    /// optimistic model); see [`Self::build_contended`] for the shared-bus
    /// alternative.
    pub fn build(
        kind: StoreKind,
        trace: &Trace,
        placement: &Placement,
        n: usize,
    ) -> Result<ShardedCluster, EngineError> {
        Self::build_with(
            kind,
            HybridSpec::paper_testbed(),
            NoiseConfig::disabled(),
            trace,
            placement,
            n,
        )
    }

    /// Like [`Self::build`], but the testbed's device bandwidth is shared
    /// across shards: each shard sees `1/n` of each tier's bandwidth
    /// (latency is unaffected). This models co-located shards saturating
    /// one memory bus — the regime where the paper's SlowMem (1.81 GB/s)
    /// throttles scale-out hard while FastMem (14.9 GB/s) still has
    /// headroom.
    pub fn build_contended(
        kind: StoreKind,
        trace: &Trace,
        placement: &Placement,
        n: usize,
    ) -> Result<ShardedCluster, EngineError> {
        let mut spec = HybridSpec::paper_testbed();
        let share = n.max(1) as f64;
        spec.fast.bandwidth_bytes_per_ns /= share;
        spec.slow.bandwidth_bytes_per_ns /= share;
        Self::build_with(kind, spec, NoiseConfig::disabled(), trace, placement, n)
    }

    /// Fully parameterised constructor.
    pub fn build_with(
        kind: StoreKind,
        spec: HybridSpec,
        noise: NoiseConfig,
        trace: &Trace,
        placement: &Placement,
        n: usize,
    ) -> Result<ShardedCluster, EngineError> {
        assert!(n >= 1, "need at least one shard");
        let mut shards = Vec::with_capacity(n);
        for shard in 0..n {
            let sub = shard_trace(trace, shard, n);
            let mut cfg = noise;
            cfg.seed = noise.seed.wrapping_add(shard as u64);
            let server = Server::build_with(kind, spec.clone(), cfg, &sub, placement.clone())?;
            shards.push(Mutex::new(server));
        }
        Ok(ShardedCluster { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Install a fault plan across the cluster: every shard gets the
    /// plan's degradation profile, and shard crash schedules are routed
    /// to their shard index. Injection is keyed off each shard's own
    /// simulated clock, so faulted runs stay byte-identical for every
    /// `--jobs` worker count.
    pub fn install_fault_plan(&self, plan: &mnemo_faults::FaultPlan) {
        let profile = plan.degradation_profile();
        for (i, shard) in self.shards.iter().enumerate() {
            let mut server = shard.lock();
            server.set_degradation(if profile.is_empty() {
                None
            } else {
                Some(profile.clone())
            });
            server.set_crash_schedule(plan.shard_crashes(i));
        }
    }

    /// Run the trace: requests are routed to their shard, shards execute
    /// concurrently as coarse jobs on the bounded pool (a 64-shard
    /// cluster no longer spawns 64 client threads), and the merged
    /// report uses the slowest shard's runtime as the cluster runtime.
    /// Shard runtimes are simulated clock time, so the merged report is
    /// independent of the worker count.
    pub fn run(&self, trace: &Trace) -> RunReport {
        let n = self.shards.len();
        let subs: Vec<Trace> = (0..n).map(|s| shard_trace(trace, s, n)).collect();
        // mnemo-lint: allow(D007, "reachable sum is predict's in-task dot product; shard reports merge in shard order")
        let reports = mnemo_par::Pool::current().run_jobs(n, |s| {
            let mut server = self.shards[s].lock();
            server.run(&subs[s])
        });
        merge_reports(trace, reports.into_iter())
    }

    /// [`Self::run`] with telemetry: every shard rolls its own epoch log
    /// over its slice of the trace, and the per-shard snapshots are
    /// folded epoch-index by epoch-index in *shard order* — not
    /// completion order — so the merged snapshots (and their exported
    /// bytes) are identical for every `--jobs` value. Each shard also
    /// contributes its simulated runtime as the `kv.shard.runtime_ns`
    /// gauge, whose max across shards is the cluster runtime.
    pub fn run_telemetered(
        &self,
        trace: &Trace,
        epoch_len: u64,
    ) -> (RunReport, Vec<mnemo_telemetry::Snapshot>) {
        let n = self.shards.len();
        let subs: Vec<Trace> = (0..n).map(|s| shard_trace(trace, s, n)).collect();
        // run_jobs returns results in shard-index order regardless of
        // which worker finished first — the determinism anchor.
        // mnemo-lint: allow(D007, "predict's dot product is shard-local; snapshots fold in shard index order")
        let results = mnemo_par::Pool::current().run_jobs(n, |s| {
            let mut server = self.shards[s].lock();
            server.run_telemetered(&subs[s], epoch_len)
        });
        let mut reports = Vec::with_capacity(n);
        let mut per_shard = Vec::with_capacity(n);
        for (report, snaps) in results {
            reports.push(report);
            per_shard.push(snaps);
        }
        let mut merged = mnemo_telemetry::epoch::merge_epoch_logs(&per_shard);
        if let Some(last) = merged.last_mut() {
            let mut cluster = mnemo_telemetry::Recorder::new();
            cluster.count("kv.shards", n as u64);
            for r in &reports {
                cluster.gauge("kv.shard.runtime_ns", r.runtime_ns);
            }
            last.merge(&cluster.take_snapshot(last.epoch()));
        }
        (merge_reports(trace, reports.into_iter()), merged)
    }
}

/// The sub-trace (dataset + requests) owned by `shard` of `n`.
///
/// Key ids are preserved — each shard's server simply only loads and
/// serves the keys hashing to it.
fn shard_trace(trace: &Trace, shard: usize, n: usize) -> Trace {
    let owns = |key: u64| (key as usize) % n == shard;
    // Non-owned keys get a 1-byte stub so key ids stay aligned; the shard
    // never receives requests for them.
    let sizes = trace
        .sizes
        .iter()
        .enumerate()
        .map(|(k, &b)| if owns(k as u64) { b } else { 1 })
        .collect();
    // Count first: a filtered collect has no size hint, and the doubling
    // growth would be paid once per shard per run.
    let owned = trace.requests.iter().filter(|r| owns(r.key)).count();
    let mut requests = Vec::with_capacity(owned);
    requests.extend(trace.requests.iter().copied().filter(|r| owns(r.key)));
    Trace {
        name: format!("{} [shard {shard}/{n}]", trace.name),
        sizes,
        requests,
    }
}

fn merge_reports(trace: &Trace, reports: impl Iterator<Item = RunReport>) -> RunReport {
    let mut merged = RunReport {
        store: StoreKind::Redis, // overwritten below
        workload: trace.name.clone(),
        requests: 0,
        runtime_ns: 0.0,
        reads: 0,
        writes: 0,
        read_ns_total: 0.0,
        write_ns_total: 0.0,
        read_hist: Histogram::new(),
        write_hist: Histogram::new(),
        // Every trace request lands in exactly one shard's samples, so
        // the merged vector's final length is known up front.
        samples: Vec::with_capacity(trace.requests.len()),
    };
    for r in reports {
        merged.store = r.store;
        merged.requests += r.requests;
        merged.runtime_ns = merged.runtime_ns.max(r.runtime_ns);
        merged.reads += r.reads;
        merged.writes += r.writes;
        merged.read_ns_total += r.read_ns_total;
        merged.write_ns_total += r.write_ns_total;
        merged.read_hist.merge(&r.read_hist);
        merged.write_hist.merge(&r.write_hist);
        merged.samples.extend(r.samples);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::timeline().scaled(128, 4_000).generate(4)
    }

    #[test]
    fn one_shard_equals_plain_server() {
        let t = trace();
        let cluster = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, 1).unwrap();
        let cr = cluster.run(&t);
        let sr = Server::build(StoreKind::Redis, &t, Placement::AllFast)
            .unwrap()
            .run(&t);
        assert_eq!(cr.requests, sr.requests);
        let rel = (cr.runtime_ns - sr.runtime_ns).abs() / sr.runtime_ns;
        assert!(
            rel < 0.02,
            "1-shard {} vs server {}",
            cr.runtime_ns,
            sr.runtime_ns
        );
    }

    #[test]
    fn all_requests_are_served_exactly_once() {
        let t = trace();
        for n in [2, 4, 7] {
            let cluster =
                ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, n).unwrap();
            let r = cluster.run(&t);
            assert_eq!(r.requests, t.len(), "n={n}");
            assert_eq!(r.reads + r.writes, t.len() as u64);
            assert_eq!(r.samples.len(), t.len());
        }
    }

    #[test]
    fn sharding_reduces_cluster_runtime() {
        let t = trace();
        let one = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, 1)
            .unwrap()
            .run(&t);
        let four = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, 4)
            .unwrap()
            .run(&t);
        assert!(
            four.runtime_ns < one.runtime_ns / 2.0,
            "4 shards {} vs 1 shard {}",
            four.runtime_ns,
            one.runtime_ns
        );
    }

    #[test]
    fn shard_traces_partition_requests() {
        let t = trace();
        let n = 3;
        let subs: Vec<Trace> = (0..n).map(|s| shard_trace(&t, s, n)).collect();
        let total: usize = subs.iter().map(|s| s.len()).sum();
        assert_eq!(total, t.len());
        for (s, sub) in subs.iter().enumerate() {
            for r in &sub.requests {
                assert_eq!(r.key as usize % n, s);
            }
        }
    }

    #[test]
    fn telemetered_cluster_merges_shard_epochs() {
        let t = trace();
        let cluster = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, 4).unwrap();
        let (report, snaps) = cluster.run_telemetered(&t, 500);
        assert_eq!(report.requests, t.len());
        assert!(!snaps.is_empty());
        let requests: u64 = snaps.iter().map(|s| s.counter("kv.requests")).sum();
        assert_eq!(requests, t.len() as u64);
        // Cluster-level metrics land on the final epoch.
        let last = snaps.last().unwrap();
        assert_eq!(last.counter("kv.shards"), 4);
        let runtime = last.gauge("kv.shard.runtime_ns").unwrap();
        assert_eq!(runtime.count, 4);
        assert_eq!(runtime.max, report.runtime_ns);
    }

    #[test]
    fn fault_plan_routes_crashes_to_their_shard() {
        use mnemo_faults::{FaultEvent, FaultPlan};
        let t = trace();
        let cluster = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, 4).unwrap();
        let clean = cluster.run(&t);
        let restart = clean.runtime_ns * 4.0;
        cluster.install_fault_plan(&FaultPlan::new(3).with(FaultEvent::ShardCrash {
            shard: 1,
            at_ns: 0,
            restart_ns: restart,
            rebuild_ns_per_key: 0.0,
        }));
        let (faulted, snaps) = cluster.run_telemetered(&t, 0);
        let crashes: u64 = snaps
            .iter()
            .map(|s| s.counter("kv.fault.shard_crashes"))
            .sum();
        assert_eq!(crashes, 1, "only shard 1 crashes");
        // The crashed shard's recovery dominates the cluster runtime.
        assert!(
            faulted.runtime_ns > clean.runtime_ns + restart * 0.9,
            "faulted {} vs clean {} + restart {}",
            faulted.runtime_ns,
            clean.runtime_ns,
            restart
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let t = trace();
        let _ = ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllFast, 0);
    }

    #[test]
    fn contended_scaling_is_sublinear() {
        let t = trace();
        let runtime = |contended: bool, n: usize| {
            let c = if contended {
                ShardedCluster::build_contended(StoreKind::Redis, &t, &Placement::AllSlow, n)
            } else {
                ShardedCluster::build(StoreKind::Redis, &t, &Placement::AllSlow, n)
            }
            .unwrap();
            c.run(&t).runtime_ns
        };
        let free4 = runtime(false, 4);
        let shared4 = runtime(true, 4);
        assert!(shared4 > free4, "bandwidth sharing must cost time");
        // And still faster than a single contended shard (latency and CPU
        // parallelism still help).
        let shared1 = runtime(true, 1);
        assert!(shared4 < shared1);
    }
}
