//! Cache-mode deployment: FastMem as a DRAM cache over SlowMem.
//!
//! The paper explicitly scopes this *out*: "We do assume that SlowMem is
//! used as an extension of the flat memory address space, in other words
//! FastMem does not serve the purpose of caching for SlowMem." On real
//! Optane systems this excluded alternative exists as Intel's Memory
//! Mode, so the reproduction provides it as a comparator:
//!
//! * every value's home is SlowMem;
//! * a FastMem object cache (LRU, write-back) fronts it: hits are served
//!   at FastMem speed, misses pay the SlowMem read plus an admission
//!   write into FastMem, and evicting a dirty victim pays its write-back;
//! * unlike Mnemo's placement, nothing must be decided up front — but
//!   every miss pays admission traffic, and the operator still buys the
//!   same FastMem capacity.
//!
//! The `cache_mode` experiment compares this against Mnemo's static
//! partition at equal FastMem capacity.

use crate::engine::{EngineError, KvEngine};
use crate::profile::StoreKind;
use crate::server::{make_engine, RequestSample, RunReport};
use hybridmem::cache::ObjectLru;
use hybridmem::{AccessKind, DetHashSet, Histogram, HybridSpec, MemTier, SimClock};
use ycsb::{Op, Trace};

/// Cache-mode statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheModeStats {
    /// Requests served from the FastMem cache.
    pub hits: u64,
    /// Requests that had to touch SlowMem.
    pub misses: u64,
    /// Dirty victims written back to SlowMem.
    pub writebacks: u64,
}

impl CacheModeStats {
    /// Request hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A server whose FastMem acts as an inclusive, write-back object cache
/// of SlowMem.
pub struct CacheModeServer {
    engine: Box<dyn KvEngine>,
    directory: ObjectLru,
    dirty: DetHashSet<u64>,
    spec: HybridSpec,
    store: StoreKind,
    stats: CacheModeStats,
}

impl CacheModeServer {
    /// Build over the paper testbed with a FastMem cache of
    /// `fast_capacity_bytes`; the dataset homes in SlowMem.
    pub fn build(
        kind: StoreKind,
        trace: &Trace,
        fast_capacity_bytes: u64,
    ) -> Result<CacheModeServer, EngineError> {
        Self::build_with(
            kind,
            HybridSpec::paper_testbed(),
            trace,
            fast_capacity_bytes,
        )
    }

    /// Build with an explicit testbed spec.
    pub fn build_with(
        kind: StoreKind,
        spec: HybridSpec,
        trace: &Trace,
        fast_capacity_bytes: u64,
    ) -> Result<CacheModeServer, EngineError> {
        let mut engine = make_engine(kind, spec.clone());
        for (key, &bytes) in trace.sizes.iter().enumerate() {
            engine.load(key as u64, bytes, MemTier::Slow)?;
        }
        Ok(CacheModeServer {
            engine,
            directory: ObjectLru::new(fast_capacity_bytes),
            dirty: DetHashSet::default(),
            spec,
            store: kind,
            stats: CacheModeStats::default(),
        })
    }

    /// Cache statistics of the last run.
    pub fn stats(&self) -> CacheModeStats {
        self.stats
    }

    /// Admit `key` (of `bytes`) into the cache, charging the admission
    /// write and any dirty-victim write-backs.
    fn admit(&mut self, key: u64, bytes: u64) -> f64 {
        let mut ns = self.spec.fast.access_ns(AccessKind::Write, bytes);
        for victim in self.directory.insert_reporting(key, bytes) {
            if self.dirty.remove(&victim) {
                self.stats.writebacks += 1;
                let victim_bytes = self.engine.value_bytes(victim).unwrap_or(0);
                // Read the dirty copy from FastMem, write it home.
                ns += self.spec.fast.access_ns(AccessKind::Read, victim_bytes)
                    + self.spec.slow.access_ns(AccessKind::Write, victim_bytes);
            }
        }
        ns
    }

    fn serve(&mut self, key: u64, op: Op) -> f64 {
        let bytes = self
            .engine
            .value_bytes(key)
            // mnemo-lint: allow(R001, "build() loads every key of the trace at SlowMem before serving, so lookups cannot miss")
            .expect("trace references unloaded key");
        let profile = *self.engine.profile();
        if self.directory.touch(key) {
            // Hit: the whole request path runs at FastMem speed — index
            // walk and value traffic against the cached copy.
            self.stats.hits += 1;
            let kind = match op {
                Op::Read => AccessKind::Read,
                Op::Update => AccessKind::Write,
            };
            if op == Op::Update {
                self.dirty.insert(key);
            }
            let amp = match op {
                Op::Read => profile.read_amplification,
                Op::Update => profile.write_amplification,
            };
            profile.fixed_op_ns
                + profile.index_touches as f64
                    * self
                        .spec
                        .fast
                        .access_ns(AccessKind::Read, profile.touch_bytes)
                + amp * self.spec.fast.access_ns(kind, bytes)
        } else {
            // Miss: serve from the SlowMem home through the engine (LLC
            // included), then admit into the FastMem cache.
            self.stats.misses += 1;
            let home = match op {
                Op::Read => self.engine.get(key),
                Op::Update => self.engine.put(key),
            }
            // mnemo-lint: allow(R001, "build() loads every key of the trace at SlowMem before serving, so lookups cannot miss")
            .expect("trace references unloaded key");
            if op == Op::Update {
                self.dirty.insert(key);
            }
            home + self.admit(key, bytes)
        }
    }

    /// Execute the trace.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        self.engine.reset_measurement_state();
        self.stats = CacheModeStats::default();
        let mut clock = SimClock::new();
        let mut report = RunReport {
            store: self.store,
            workload: format!("{} [cache mode]", trace.name),
            requests: trace.len(),
            runtime_ns: 0.0,
            reads: 0,
            writes: 0,
            read_ns_total: 0.0,
            write_ns_total: 0.0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            samples: Vec::with_capacity(trace.len()),
        };
        for r in &trace.requests {
            let ns = self.serve(r.key, r.op);
            clock.advance(ns);
            match r.op {
                Op::Read => {
                    report.reads += 1;
                    report.read_ns_total += ns;
                    report.read_hist.record(ns);
                }
                Op::Update => {
                    report.writes += 1;
                    report.write_ns_total += ns;
                    report.write_hist.record(ns);
                }
            }
            report.samples.push(RequestSample {
                key: r.key,
                op: r.op,
                service_ns: ns,
            });
        }
        report.runtime_ns = clock.now_ns() as f64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Placement, Server};
    use ycsb::WorkloadSpec;

    fn scaled_spec(trace: &Trace) -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.cache.capacity_bytes = (trace.dataset_bytes() / 85).max(1 << 16);
        spec
    }

    #[test]
    fn hot_set_converges_to_high_hit_ratio() {
        let t = WorkloadSpec::trending().scaled(300, 9_000).generate(2);
        let budget = t.dataset_bytes() / 3; // comfortably holds the hot set
        let mut server =
            CacheModeServer::build_with(StoreKind::Redis, scaled_spec(&t), &t, budget).unwrap();
        let _ = server.run(&t);
        let stats = server.stats();
        assert!(
            stats.hit_ratio() > 0.6,
            "hit ratio {:.3}",
            stats.hit_ratio()
        );
    }

    #[test]
    fn cache_mode_beats_all_slow_and_loses_to_all_fast() {
        let t = WorkloadSpec::trending().scaled(250, 6_000).generate(4);
        let budget = t.dataset_bytes() / 4;
        let mut cm =
            CacheModeServer::build_with(StoreKind::Redis, scaled_spec(&t), &t, budget).unwrap();
        let cache_mode = cm.run(&t).throughput_ops_s();
        let run = |p: Placement| {
            Server::build_with(
                StoreKind::Redis,
                scaled_spec(&t),
                hybridmem::clock::NoiseConfig::disabled(),
                &t,
                p,
            )
            .unwrap()
            .run(&t)
            .throughput_ops_s()
        };
        assert!(
            cache_mode > run(Placement::AllSlow),
            "cache must help over no cache"
        );
        assert!(
            cache_mode < run(Placement::AllFast),
            "cache cannot beat all-DRAM"
        );
    }

    #[test]
    fn writebacks_happen_only_for_dirty_victims() {
        // Read-only workload: victims are clean, so no write-backs.
        let t = WorkloadSpec::timeline().scaled(300, 5_000).generate(5);
        let budget = t.dataset_bytes() / 10; // force evictions
        let mut server =
            CacheModeServer::build_with(StoreKind::Redis, scaled_spec(&t), &t, budget).unwrap();
        let _ = server.run(&t);
        assert!(server.stats().misses > 0);
        assert_eq!(server.stats().writebacks, 0, "read-only => clean victims");

        // Update-heavy workload under the same pressure: write-backs.
        let t = WorkloadSpec::edit_thumbnail()
            .scaled(300, 5_000)
            .generate(5);
        let mut server = CacheModeServer::build_with(
            StoreKind::Redis,
            scaled_spec(&t),
            &t,
            t.dataset_bytes() / 10,
        )
        .unwrap();
        let _ = server.run(&t);
        assert!(
            server.stats().writebacks > 0,
            "dirty victims must be written back"
        );
    }

    #[test]
    fn cache_mode_tracks_sliding_patterns_without_planning() {
        // News feed: cache-mode admission-on-access follows the window
        // instantly, unlike any static placement at the same capacity.
        let t = WorkloadSpec::news_feed().scaled(300, 12_000).generate(7);
        let budget = t.dataset_bytes() / 5;
        let mut cm =
            CacheModeServer::build_with(StoreKind::Redis, scaled_spec(&t), &t, budget).unwrap();
        let cache_mode = cm.run(&t).throughput_ops_s();

        // Static oracle at the same capacity.
        let counts = t.key_counts();
        let mut order: Vec<u64> = (0..t.keys()).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(counts[k as usize].0 + counts[k as usize].1));
        let mut used = 0u64;
        let fast: hybridmem::DetHashSet<u64> = order
            .iter()
            .copied()
            .take_while(|&k| {
                used += t.sizes[k as usize];
                used <= budget
            })
            .collect();
        let static_tp = Server::build_with(
            StoreKind::Redis,
            scaled_spec(&t),
            hybridmem::clock::NoiseConfig::disabled(),
            &t,
            Placement::FastSet(fast),
        )
        .unwrap()
        .run(&t)
        .throughput_ops_s();
        assert!(
            cache_mode > static_tp,
            "cache mode {cache_mode:.0} must beat static {static_tp:.0} on news feed"
        );
    }
}
