//! N-tier trace execution: a Redis-like engine over a [`TierStack`],
//! driven by a pluggable [`TieringPolicy`].
//!
//! [`TieredServer`] is the N-tier counterpart of
//! [`Server`](crate::Server): same
//! request loop, same charge arithmetic, same noise and fault plumbing
//! — but the memory system is an ordered stack of any depth and the
//! per-key placement comes from a policy instead of a fixed
//! [`Placement`](crate::Placement). At N=2 with the greedy policy and
//! no epochs, a run is bit-identical to the legacy two-tier server with
//! the Pattern Engine's `FastSet` placement (covered by `tests/tier.rs`),
//! which keeps every golden figure byte-stable.
//!
//! With `epoch_requests > 0` the policy re-plans every that many
//! requests; the server diffs the desired assignments against current
//! placements and charges each move's copy cost (read from source +
//! write to destination) to the run's clock, accumulated in
//! [`MigrationStats`].

use crate::engine::OpCharge;
use crate::profile::{EngineProfile, StoreKind};
use crate::server::{RequestSample, RunReport};
use hybridmem::clock::NoiseConfig;
use hybridmem::stack::{StackError, StackSpec, TierStack};
use hybridmem::{AccessKind, DenseU64Map, Histogram, NoiseModel, ObjectId, SimClock, TierId};
use mnemo_faults::{FaultPlan, ShardCrash};
use mnemo_telemetry::{AccessStatKeys, CacheStatKeys, EpochLog, Snapshot};
use mnemo_tier::{KeyStat, TieringPolicy};
use ycsb::{Op, Trace};

/// Per-value header overhead, matching the Redis-like engine's
/// `robj` + SDS + dict-entry allocation rounding so two-tier runs stay
/// byte-compatible with [`RedisLike`](crate::redis_like::RedisLike).
const VALUE_HEADER_BYTES: u64 = 64;

/// Errors surfaced by the tiered engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TieredError {
    /// Key not loaded.
    UnknownKey(u64),
    /// Key already loaded (double `load`).
    DuplicateKey(u64),
    /// The tier stack rejected an operation.
    Memory(StackError),
}

impl std::fmt::Display for TieredError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieredError::UnknownKey(k) => write!(f, "unknown key {k}"),
            TieredError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            TieredError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for TieredError {}

impl From<StackError> for TieredError {
    fn from(e: StackError) -> Self {
        TieredError::Memory(e)
    }
}

/// Migration accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationStats {
    /// Epoch re-plans executed.
    pub epochs: u64,
    /// Keys actually moved between tiers.
    pub moved_keys: u64,
    /// Logical bytes moved.
    pub moved_bytes: u64,
    /// Total nanoseconds charged to the run's clock for moves.
    pub migration_ns: f64,
}

/// Redis-like engine over an N-tier stack: chained dict front-end with
/// load-factor-dependent probe depth, value-header allocation rounding
/// and the batched index + value charge path — the same float
/// arithmetic as [`RedisLike`](crate::redis_like::RedisLike), tier count
/// aside.
pub struct TieredEngine {
    profile: EngineProfile,
    mem: TierStack,
    /// key -> (object, logical value bytes).
    table: DenseU64Map<(ObjectId, u64)>,
    /// Power-of-two dict table size (doubles like Redis' dict).
    table_size: u64,
}

impl TieredEngine {
    /// Build over a fresh stack with the Redis cost profile.
    pub fn new(spec: StackSpec) -> Result<TieredEngine, TieredError> {
        Ok(TieredEngine {
            profile: StoreKind::Redis.profile(),
            mem: TierStack::new(spec)?,
            table: DenseU64Map::new(),
            table_size: 4,
        })
    }

    /// The engine's cost profile.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Current dict load factor (keys per bucket).
    pub fn load_factor(&self) -> f64 {
        self.table.len() as f64 / self.table_size as f64
    }

    fn maybe_grow(&mut self) {
        while self.table.len() as u64 > self.table_size {
            self.table_size *= 2;
        }
    }

    /// Expected chain-length multiplier at the current load factor.
    fn chain_scale(&self) -> f64 {
        1.0 + self.load_factor() / 2.0
    }

    /// Pre-load a key of `bytes` into `tier` (unmeasured population).
    pub fn load(&mut self, key: u64, bytes: u64, tier: TierId) -> Result<(), TieredError> {
        if self.table.contains_key(key) {
            return Err(TieredError::DuplicateKey(key));
        }
        let stored = bytes + VALUE_HEADER_BYTES;
        let id = self.mem.alloc(stored.max(1), tier)?;
        self.table.insert(key, (id, bytes));
        self.maybe_grow();
        Ok(())
    }

    fn lookup(&self, key: u64) -> Result<(ObjectId, u64), TieredError> {
        self.table
            .get(key)
            .copied()
            .ok_or(TieredError::UnknownKey(key))
    }

    /// The full index + value charge of one operation — the same charge
    /// order as the two-tier `EngineCore::charge_op`: index walk first,
    /// then value traffic, then amplification passes.
    fn charge_op(
        &mut self,
        key: u64,
        kind: AccessKind,
        touches: u32,
    ) -> Result<OpCharge, TieredError> {
        let (id, value_bytes) = self.lookup(key)?;
        let p = self.mem.placement(id)?;
        let index_ns = self.mem.touch_n(
            p.tier,
            AccessKind::Read,
            self.profile.touch_bytes,
            u64::from(touches),
        );
        let amp = match kind {
            AccessKind::Read => self.profile.read_amplification,
            AccessKind::Write => self.profile.write_amplification,
        };
        let mut value_ns = self.mem.access_at(id, p, kind);
        if amp > 1.0 {
            value_ns += (amp - 1.0) * self.mem.touch(p.tier, kind, value_bytes);
        }
        Ok(OpCharge { index_ns, value_ns })
    }

    /// Serve a GET; returns the simulated service time in nanoseconds.
    pub fn get(&mut self, key: u64) -> Result<f64, TieredError> {
        let op = self.charge_op(key, AccessKind::Read, self.profile.index_touches)?;
        let index = op.index_ns * self.chain_scale();
        Ok(self.profile.fixed_op_ns + index + op.value_ns)
    }

    /// Serve a same-size UPDATE; returns the service time in nanoseconds.
    pub fn put(&mut self, key: u64) -> Result<f64, TieredError> {
        let op = self.charge_op(key, AccessKind::Write, self.profile.index_touches)?;
        let index = op.index_ns * self.chain_scale();
        Ok(self.profile.fixed_op_ns + index + op.value_ns)
    }

    /// The tier currently holding a key.
    pub fn placement_of(&self, key: u64) -> Option<TierId> {
        let (id, _) = self.table.get(key).copied()?;
        self.mem.placement(id).ok().map(|p| p.tier)
    }

    /// Move a key's value to `tier`, returning the simulated copy cost
    /// (zero for a no-op move).
    pub fn migrate(&mut self, key: u64, tier: TierId) -> Result<f64, TieredError> {
        let (id, _) = self.lookup(key)?;
        Ok(self.mem.migrate(id, tier)?)
    }

    /// Number of loaded keys.
    pub fn key_count(&self) -> usize {
        self.table.len()
    }

    /// Engine bytes in a tier (device accounting, headers included).
    pub fn bytes_in(&self, tier: TierId) -> u64 {
        self.mem.used(tier)
    }

    /// The underlying stack (stats, cache counters).
    pub fn memory(&self) -> &TierStack {
        &self.mem
    }

    /// Mutable stack access (sim-time pushes, degradation).
    pub fn memory_mut(&mut self) -> &mut TierStack {
        &mut self.mem
    }

    /// Reset caches and statistics between measured runs.
    pub fn reset_measurement_state(&mut self) {
        self.mem.reset_measurement_state();
    }
}

/// An N-tier server: one [`TieredEngine`], one [`TieringPolicy`], and
/// the same measurement loop as the two-tier [`Server`](crate::Server).
pub struct TieredServer {
    engine: TieredEngine,
    noise: NoiseModel,
    policy: Box<dyn TieringPolicy>,
    /// Full-dataset sizes, for epoch stat assembly.
    sizes: Vec<u64>,
    /// Re-plan period in requests; 0 disables epochs (static placement).
    epoch_requests: u64,
    /// Per-key read/write counts within the current epoch.
    epoch_reads: Vec<u64>,
    epoch_writes: Vec<u64>,
    migration: MigrationStats,
    degraded: bool,
    crashes: Vec<ShardCrash>,
}

impl TieredServer {
    /// Build over `spec`, place the trace's dataset with `policy`, no
    /// noise, no epochs (static placement).
    pub fn build(
        spec: StackSpec,
        policy: Box<dyn TieringPolicy>,
        trace: &Trace,
    ) -> Result<TieredServer, TieredError> {
        TieredServer::build_with(spec, NoiseConfig::disabled(), 0, policy, trace)
    }

    /// Fully parameterised constructor. `epoch_requests > 0` makes the
    /// policy re-plan (and the server charge migrations) every that
    /// many requests.
    pub fn build_with(
        spec: StackSpec,
        noise: NoiseConfig,
        epoch_requests: u64,
        mut policy: Box<dyn TieringPolicy>,
        trace: &Trace,
    ) -> Result<TieredServer, TieredError> {
        let stats = trace_stats(trace);
        let assignment = policy.place(&stats, &spec);
        let num_tiers = spec.tiers.len();
        let mut engine = TieredEngine::new(spec)?;
        for (s, &tier) in stats.iter().zip(assignment.iter()) {
            // Policies plan against logical value bytes; the engine adds
            // per-value header overhead, so a capacity-tight assigned
            // tier can run out. The plan is advisory: spill toward the
            // bottom of the stack first, then back up, and only fail
            // when no tier at all has room.
            let mut err = None;
            let spill = (tier.index()..num_tiers).chain((0..tier.index()).rev());
            for t in spill {
                match engine.load(s.key, s.bytes, TierId(u8::try_from(t).unwrap_or(u8::MAX))) {
                    Ok(()) => {
                        err = None;
                        break;
                    }
                    Err(e @ TieredError::Memory(_)) => err = Some(e),
                    Err(e) => return Err(e),
                }
            }
            if let Some(e) = err {
                return Err(e);
            }
        }
        let keys = trace.sizes.len();
        Ok(TieredServer {
            engine,
            noise: NoiseModel::new(noise),
            policy,
            sizes: trace.sizes.clone(),
            epoch_requests,
            epoch_reads: vec![0; keys],
            epoch_writes: vec![0; keys],
            migration: MigrationStats::default(),
            degraded: false,
            crashes: Vec::new(),
        })
    }

    /// Install (or clear) a time-varying device degradation profile.
    pub fn set_degradation(&mut self, profile: Option<hybridmem::DegradationProfile>) {
        self.degraded = profile.is_some();
        self.engine.memory_mut().set_degradation(profile);
        if !self.degraded {
            self.engine.memory_mut().set_now_ns(0);
        }
    }

    /// Install a crash schedule (sorted by time).
    pub fn set_crash_schedule(&mut self, crashes: Vec<ShardCrash>) {
        self.crashes = crashes;
    }

    /// Install the device-side parts of a fault plan (degradation
    /// windows keyed by tier id plus shard-0 crashes).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let profile = plan.degradation_profile();
        self.set_degradation(if profile.is_empty() {
            None
        } else {
            Some(profile)
        });
        self.set_crash_schedule(plan.shard_crashes(0));
    }

    /// Migration accounting of the most recent run.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migration
    }

    /// The engine (for inspection).
    pub fn engine(&self) -> &TieredEngine {
        &self.engine
    }

    /// Execute the trace and report measurements.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        self.run_instrumented(trace, None)
    }

    /// [`Self::run`] with telemetry: per-tier hit and device counters
    /// under `kv.tier.<name>.*`, occupancy gauges at every epoch roll,
    /// and migration counters. Epoch length follows `epoch_len`
    /// requests (0 = one epoch for the whole run).
    pub fn run_telemetered(&mut self, trace: &Trace, epoch_len: u64) -> (RunReport, Vec<Snapshot>) {
        let mut log = EpochLog::new(epoch_len);
        let report = self.run_instrumented(trace, Some(&mut log));
        (report, log.finish())
    }

    /// Collect the epoch's stats, ask the policy for new assignments,
    /// and charge every actual move to the clock.
    fn run_epoch(&mut self, clock: &mut SimClock, telemetry: &mut Option<&mut EpochLog>) {
        self.migration.epochs += 1;
        let stats: Vec<KeyStat> = self
            .sizes
            .iter()
            .enumerate()
            .map(|(key, &bytes)| KeyStat {
                key: key as u64,
                bytes,
                reads: self.epoch_reads[key],
                writes: self.epoch_writes[key],
            })
            .collect();
        self.epoch_reads.iter_mut().for_each(|c| *c = 0);
        self.epoch_writes.iter_mut().for_each(|c| *c = 0);
        let desired = {
            let spec = self.engine.memory().spec().clone();
            self.policy.on_epoch(&stats, &spec)
        };
        if self.degraded {
            self.engine.memory_mut().set_now_ns(clock.now_ns());
        }
        let mut moved_keys = 0u64;
        let mut moved_bytes = 0u64;
        let mut epoch_ns = 0.0;
        for (key, tier) in desired {
            if self.engine.placement_of(key) == Some(tier) {
                continue;
            }
            // A failed move (target tier full) skips the key rather
            // than aborting the run: re-planning is best-effort.
            if let Ok(ns) = self.engine.migrate(key, tier) {
                moved_keys += 1;
                moved_bytes += self.sizes.get(key as usize).copied().unwrap_or(0);
                epoch_ns += ns;
            }
        }
        self.migration.moved_keys += moved_keys;
        self.migration.moved_bytes += moved_bytes;
        self.migration.migration_ns += epoch_ns;
        clock.advance(epoch_ns);
        if let Some(log) = telemetry.as_deref_mut() {
            let names: Vec<String> = {
                let spec = self.engine.memory().spec();
                spec.tiers.iter().map(|t| t.name.clone()).collect()
            };
            let tel = log.recorder();
            tel.count("kv.tier.epochs", 1);
            tel.count("kv.tier.moved_keys", moved_keys);
            tel.count("kv.tier.moved_bytes", moved_bytes);
            tel.gauge("kv.tier.migration_ns", epoch_ns);
            for (i, name) in names.iter().enumerate() {
                let tier = TierId(u8::try_from(i).unwrap_or(u8::MAX));
                let used = self.engine.memory().used(tier);
                tel.gauge(&format!("kv.tier.{name}.occupancy_bytes"), used as f64);
            }
        }
    }

    fn run_instrumented(
        &mut self,
        trace: &Trace,
        mut telemetry: Option<&mut EpochLog>,
    ) -> RunReport {
        self.engine.reset_measurement_state();
        self.migration = MigrationStats::default();
        self.epoch_reads.iter_mut().for_each(|c| *c = 0);
        self.epoch_writes.iter_mut().for_each(|c| *c = 0);
        let mut clock = SimClock::new();
        let mut report = RunReport {
            store: StoreKind::Redis,
            workload: trace.name.clone(),
            requests: trace.len(),
            runtime_ns: 0.0,
            reads: 0,
            writes: 0,
            read_ns_total: 0.0,
            write_ns_total: 0.0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            samples: Vec::with_capacity(trace.len()),
        };
        let mut next_crash = 0usize;
        // Per-tier metric names, formatted once per run.
        let stat_keys: Option<(Vec<(String, AccessStatKeys)>, CacheStatKeys)> =
            telemetry.as_ref().map(|_| {
                let spec = self.engine.memory().spec();
                let tiers = spec
                    .tiers
                    .iter()
                    .map(|t| {
                        let prefix = format!("kv.tier.{}", t.name);
                        (format!("{prefix}.hits"), AccessStatKeys::new(&prefix))
                    })
                    .collect();
                (tiers, CacheStatKeys::new("kv.llc"))
            });
        for (seq, r) in trace.requests.iter().enumerate() {
            if self.epoch_requests > 0 && seq > 0 && seq as u64 % self.epoch_requests == 0 {
                self.run_epoch(&mut clock, &mut telemetry);
            }
            while next_crash < self.crashes.len()
                && clock.now_ns() >= self.crashes[next_crash].at_ns
            {
                let crash = self.crashes[next_crash];
                next_crash += 1;
                let recovery = crash.recovery_ns(self.engine.key_count());
                clock.advance(recovery);
                self.engine.memory_mut().clear_cache();
                if let Some(log) = telemetry.as_deref_mut() {
                    let tel = log.recorder();
                    tel.count("kv.fault.shard_crashes", 1);
                    tel.gauge("kv.fault.recovery_ns", recovery);
                }
            }
            if self.degraded {
                self.engine.memory_mut().set_now_ns(clock.now_ns());
            }
            let degraded_now = self.degraded
                && telemetry.is_some()
                && self
                    .engine
                    .memory()
                    .degradation()
                    .is_some_and(|p| p.is_active_at(clock.now_ns()));
            let pre = telemetry.as_ref().map(|_| {
                let tier = self.engine.placement_of(r.key);
                let mem = self.engine.memory();
                let dev = tier.map(|t| *mem.tier_stats(t));
                (tier, dev, mem.cache_stats())
            });
            let raw = match r.op {
                Op::Read => self.engine.get(r.key),
                Op::Update => self.engine.put(r.key),
            }
            // mnemo-lint: allow(R001, "build loads every key of the trace before run, so requests cannot hit an unloaded key")
            .expect("trace references unloaded key");
            let kind = match r.op {
                Op::Read => {
                    self.epoch_reads[r.key as usize] += 1;
                    AccessKind::Read
                }
                Op::Update => {
                    self.epoch_writes[r.key as usize] += 1;
                    AccessKind::Write
                }
            };
            self.policy.on_access(r.key, kind, seq as u64);
            let ns = self.noise.perturb(raw);
            clock.advance(ns);
            if let (Some(log), Some((tier, pre_dev, pre_cache))) = (telemetry.as_deref_mut(), pre) {
                let mem = self.engine.memory();
                let cache_delta = mem.cache_stats().since(&pre_cache);
                let tel = log.recorder();
                tel.count("kv.requests", 1);
                tel.count(
                    match r.op {
                        Op::Read => "kv.reads",
                        Op::Update => "kv.writes",
                    },
                    1,
                );
                tel.observe("kv.request.service_ns", ns);
                if degraded_now {
                    tel.count("kv.fault.degraded_requests", 1);
                }
                if let Some((tier_keys, llc_keys)) = stat_keys.as_ref() {
                    if let (Some(tier), Some(pre_dev)) = (tier, pre_dev) {
                        if let Some((hit_name, dev_keys)) = tier_keys.get(tier.index()) {
                            tel.count(hit_name, 1);
                            let dev_delta = self.engine.memory().tier_stats(tier).since(&pre_dev);
                            tel.record_access_stats_with(dev_keys, &dev_delta);
                        }
                    }
                    tel.record_cache_stats_with(llc_keys, &cache_delta);
                }
                log.tick();
            }
            match r.op {
                Op::Read => {
                    report.reads += 1;
                    report.read_ns_total += ns;
                    report.read_hist.record(ns);
                }
                Op::Update => {
                    report.writes += 1;
                    report.write_ns_total += ns;
                    report.write_hist.record(ns);
                }
            }
            report.samples.push(RequestSample {
                key: r.key,
                op: r.op,
                service_ns: ns,
            });
        }
        report.runtime_ns = clock.now_ns() as f64;
        report
    }
}

/// Whole-trace per-key stats, in key order — the offline knowledge the
/// paper's Pattern Engine extracts from the workload description.
pub fn trace_stats(trace: &Trace) -> Vec<KeyStat> {
    let counts = trace.key_counts();
    trace
        .sizes
        .iter()
        .enumerate()
        .map(|(key, &bytes)| KeyStat {
            key: key as u64,
            bytes,
            reads: counts[key].0,
            writes: counts[key].1,
        })
        .collect()
}

/// Per-epoch future stats windows for the oracle policy: the trace cut
/// every `epoch_requests` requests (one window for the whole trace when
/// zero).
pub fn trace_windows(trace: &Trace, epoch_requests: u64) -> Vec<Vec<KeyStat>> {
    if epoch_requests == 0 {
        return vec![trace_stats(trace)];
    }
    let keys = trace.sizes.len();
    let mut windows = Vec::new();
    for chunk in trace
        .requests
        .chunks(hybridmem::num::usize_from_u64(epoch_requests))
    {
        let mut reads = vec![0u64; keys];
        let mut writes = vec![0u64; keys];
        for r in chunk {
            match r.op {
                Op::Read => reads[r.key as usize] += 1,
                Op::Update => writes[r.key as usize] += 1,
            }
        }
        windows.push(
            trace
                .sizes
                .iter()
                .enumerate()
                .map(|(key, &bytes)| KeyStat {
                    key: key as u64,
                    bytes,
                    reads: reads[key],
                    writes: writes[key],
                })
                .collect(),
        );
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemo_tier::{dram_optane_ssd, GreedyPolicy, PolicyKind};
    use ycsb::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::trending().scaled(200, 3_000).generate(42)
    }

    #[test]
    fn three_tier_run_is_deterministic_and_accounted() {
        let t = trace();
        let run = |_: u32| {
            TieredServer::build(dram_optane_ssd(), Box::new(GreedyPolicy), &t)
                .unwrap()
                .run(&t)
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.runtime_ns.to_bits(), b.runtime_ns.to_bits());
        assert_eq!(a.reads + a.writes, t.len() as u64);
        assert_eq!(a.samples.len(), t.len());
    }

    #[test]
    fn every_policy_serves_the_full_trace() {
        let t = trace();
        for kind in PolicyKind::ALL {
            let windows = trace_windows(&t, 500);
            let mut server = TieredServer::build_with(
                dram_optane_ssd(),
                NoiseConfig::disabled(),
                500,
                kind.build(9, &windows),
                &t,
            )
            .unwrap();
            let report = server.run(&t);
            assert_eq!(report.requests, t.len(), "{kind}");
            assert!(report.runtime_ns > 0.0, "{kind}");
        }
    }

    #[test]
    fn epochs_charge_migrations_into_the_runtime() {
        let t = trace();
        // A tight top tier forces the LRU re-plan to move keys.
        let mut spec = dram_optane_ssd();
        spec.tiers[0].capacity_bytes = t.dataset_bytes() / 6;
        spec.tiers[1].capacity_bytes = t.dataset_bytes() / 3;
        let static_run = TieredServer::build(spec.clone(), PolicyKind::Lru.build(0, &[]), &t)
            .unwrap()
            .run(&t);
        let mut moving = TieredServer::build_with(
            spec,
            NoiseConfig::disabled(),
            250,
            PolicyKind::Lru.build(0, &[]),
            &t,
        )
        .unwrap();
        let moved = moving.run(&t);
        let stats = moving.migration_stats();
        assert!(stats.epochs > 0);
        assert!(stats.moved_keys > 0, "LRU must move something: {stats:?}");
        assert!(
            moved.runtime_ns > static_run.runtime_ns,
            "migration cost is part of the measured runtime"
        );
        assert!(stats.migration_ns > 0.0);
    }

    #[test]
    fn telemetry_counts_tier_hits_by_name() {
        let t = trace();
        let mut server =
            TieredServer::build(dram_optane_ssd(), Box::new(GreedyPolicy), &t).unwrap();
        let (report, snaps) = server.run_telemetered(&t, 0);
        let sum = |name: &str| snaps.iter().map(|s| s.counter(name)).sum::<u64>();
        assert_eq!(sum("kv.requests"), t.len() as u64);
        let tier_hits: u64 = ["dram", "optane", "ssd"]
            .iter()
            .map(|n| sum(&format!("kv.tier.{n}.hits")))
            .sum();
        assert_eq!(tier_hits, t.len() as u64);
        // Telemetry must be a pure observer.
        let clean = TieredServer::build(dram_optane_ssd(), Box::new(GreedyPolicy), &t)
            .unwrap()
            .run(&t);
        assert_eq!(report.runtime_ns.to_bits(), clean.runtime_ns.to_bits());
    }

    #[test]
    fn fault_plans_degrade_named_tiers() {
        use mnemo_faults::TierNames;
        let t = trace();
        let clean = TieredServer::build(dram_optane_ssd(), Box::new(GreedyPolicy), &t)
            .unwrap()
            .run(&t);
        let names = TierNames::from_names(&["dram", "optane", "ssd"]);
        let plan_text = r#"
seed = 1

[[event]]
kind = "latency_spike"
tier = "dram"
start_ns = 0
end_ns = 340282366920938463463374607431768211455
factor = 40.0

[[event]]
kind = "bandwidth_throttle"
tier = "dram"
start_ns = 0
end_ns = 340282366920938463463374607431768211455
factor = 0.025
"#;
        let plan = FaultPlan::parse_toml_with(plan_text, &names).unwrap();
        let mut server =
            TieredServer::build(dram_optane_ssd(), Box::new(GreedyPolicy), &t).unwrap();
        server.install_fault_plan(&plan);
        let faulted = server.run(&t);
        assert!(
            faulted.runtime_ns > clean.runtime_ns * 1.01,
            "faulted {} vs clean {}",
            faulted.runtime_ns,
            clean.runtime_ns
        );
        // Clearing restores nominal timing exactly.
        server.set_degradation(None);
        server.set_crash_schedule(Vec::new());
        let restored = server.run(&t);
        assert_eq!(restored.runtime_ns.to_bits(), clean.runtime_ns.to_bits());
    }
}
