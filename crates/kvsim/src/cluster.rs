//! The paper's two-instance deployment.
//!
//! Section II: "we run two server instances on the same testbed ... bind
//! the execution of the server processes to the CPU cores of the FastMem
//! socket, and their memory allocations to one memory node, either FastMem
//! or SlowMem exclusively", with a modified YCSB client that "can redirect
//! requests across the two server instances".
//!
//! [`TwoInstanceCluster`] reproduces that architecture literally: a
//! FastMem-bound server, a SlowMem-bound server, and a client-side router
//! keyed on the placement set. It is behaviourally equivalent to a single
//! placement-aware [`Server`](crate::server::Server) (they share all cost
//! models), which an integration test verifies — the cluster exists so
//! the Placement Engine can populate *servers*, as in the paper.

use crate::engine::EngineError;
use crate::profile::StoreKind;
use crate::server::{make_engine, Placement, RequestSample, RunReport};
use hybridmem::clock::NoiseConfig;
use hybridmem::{DetHashSet, Histogram, HybridSpec, MemTier, NoiseModel, SimClock};
use ycsb::{Op, Trace};

/// A FastMem server + SlowMem server pair with client-side routing.
pub struct TwoInstanceCluster {
    fast: Box<dyn crate::engine::KvEngine>,
    slow: Box<dyn crate::engine::KvEngine>,
    fast_keys: DetHashSet<u64>,
    noise: NoiseModel,
    store: StoreKind,
}

impl TwoInstanceCluster {
    /// Deploy both instances and load the dataset: keys in `fast_keys` go
    /// to the FastServer, the rest to the SlowServer.
    pub fn build(
        kind: StoreKind,
        trace: &Trace,
        fast_keys: DetHashSet<u64>,
    ) -> Result<TwoInstanceCluster, EngineError> {
        TwoInstanceCluster::build_with(
            kind,
            HybridSpec::paper_testbed(),
            NoiseConfig::disabled(),
            trace,
            fast_keys,
        )
    }

    /// Fully parameterised constructor.
    pub fn build_with(
        kind: StoreKind,
        spec: HybridSpec,
        noise: NoiseConfig,
        trace: &Trace,
        fast_keys: DetHashSet<u64>,
    ) -> Result<TwoInstanceCluster, EngineError> {
        let mut fast = make_engine(kind, spec.clone());
        let mut slow = make_engine(kind, spec);
        for (key, &bytes) in trace.sizes.iter().enumerate() {
            let key = key as u64;
            if fast_keys.contains(&key) {
                fast.load(key, bytes, MemTier::Fast)?;
            } else {
                slow.load(key, bytes, MemTier::Slow)?;
            }
        }
        Ok(TwoInstanceCluster {
            fast,
            slow,
            fast_keys,
            noise: NoiseModel::new(noise),
            store: kind,
        })
    }

    /// Deploy from a [`Placement`].
    pub fn from_placement(
        kind: StoreKind,
        trace: &Trace,
        placement: &Placement,
    ) -> Result<TwoInstanceCluster, EngineError> {
        let fast_keys = (0..trace.keys())
            .filter(|&k| placement.tier_of(k) == MemTier::Fast)
            .collect();
        TwoInstanceCluster::build(kind, trace, fast_keys)
    }

    /// Which instance a key routes to.
    pub fn route(&self, key: u64) -> MemTier {
        if self.fast_keys.contains(&key) {
            MemTier::Fast
        } else {
            MemTier::Slow
        }
    }

    /// Number of keys held by each instance, `(fast, slow)`.
    pub fn key_split(&self) -> (usize, usize) {
        (self.fast.key_count(), self.slow.key_count())
    }

    /// Bytes held by each instance, `(fast, slow)`.
    pub fn byte_split(&self) -> (u64, u64) {
        (
            self.fast.bytes_in(MemTier::Fast),
            self.slow.bytes_in(MemTier::Slow),
        )
    }

    /// Execute the trace through the router.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        self.run_instrumented(trace, None)
    }

    /// [`Self::run`] with telemetry: one epoch snapshot every
    /// `epoch_len` requests (0 = whole run), recording per-request
    /// service times plus the router's decisions (`kv.route.fast` /
    /// `kv.route.slow`) and each instance's LLC hit/miss deltas.
    pub fn run_telemetered(
        &mut self,
        trace: &Trace,
        epoch_len: u64,
    ) -> (RunReport, Vec<mnemo_telemetry::Snapshot>) {
        let mut log = mnemo_telemetry::EpochLog::new(epoch_len);
        let report = self.run_instrumented(trace, Some(&mut log));
        (report, log.finish())
    }

    fn run_instrumented(
        &mut self,
        trace: &Trace,
        mut telemetry: Option<&mut mnemo_telemetry::EpochLog>,
    ) -> RunReport {
        self.fast.reset_measurement_state();
        self.slow.reset_measurement_state();
        let mut clock = SimClock::new();
        let mut report = RunReport {
            store: self.store,
            workload: trace.name.clone(),
            requests: trace.len(),
            runtime_ns: 0.0,
            reads: 0,
            writes: 0,
            read_ns_total: 0.0,
            write_ns_total: 0.0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            samples: Vec::with_capacity(trace.len()),
        };
        for r in &trace.requests {
            let routed_fast = self.fast_keys.contains(&r.key);
            let instance = if routed_fast {
                self.fast.as_mut()
            } else {
                self.slow.as_mut()
            };
            let pre_cache = telemetry.as_ref().map(|_| instance.memory().cache_stats());
            let raw = match r.op {
                Op::Read => instance.get(r.key),
                Op::Update => instance.put(r.key),
            }
            // mnemo-lint: allow(R001, "build() loads every key of the trace into one of the two instances, so routing cannot hit an unloaded key")
            .expect("trace references unloaded key");
            let ns = self.noise.perturb(raw);
            clock.advance(ns);
            if let (Some(log), Some(pre_cache)) = (telemetry.as_deref_mut(), pre_cache) {
                let instance = if routed_fast { &self.fast } else { &self.slow };
                let cache_delta = instance.memory().cache_stats().since(&pre_cache);
                let tel = log.recorder();
                tel.count("kv.requests", 1);
                tel.observe("kv.request.service_ns", ns);
                let (route_name, llc_prefix) = if routed_fast {
                    ("kv.route.fast", "kv.llc.fast")
                } else {
                    ("kv.route.slow", "kv.llc.slow")
                };
                tel.count(route_name, 1);
                tel.record_cache_stats(llc_prefix, &cache_delta);
                log.tick();
            }
            match r.op {
                Op::Read => {
                    report.reads += 1;
                    report.read_ns_total += ns;
                    report.read_hist.record(ns);
                }
                Op::Update => {
                    report.writes += 1;
                    report.write_ns_total += ns;
                    report.write_hist.record(ns);
                }
            }
            report.samples.push(RequestSample {
                key: r.key,
                op: r.op,
                service_ns: ns,
            });
        }
        report.runtime_ns = clock.now_ns() as f64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;
    use ycsb::WorkloadSpec;

    fn trace() -> Trace {
        WorkloadSpec::trending().scaled(200, 3_000).generate(9)
    }

    #[test]
    fn routing_respects_fast_set() {
        let t = trace();
        let fast: DetHashSet<u64> = (0..50).collect();
        let c = TwoInstanceCluster::build(StoreKind::Redis, &t, fast).unwrap();
        assert_eq!(c.route(10), MemTier::Fast);
        assert_eq!(c.route(60), MemTier::Slow);
        assert_eq!(c.key_split(), (50, 150));
        let (fb, sb) = c.byte_split();
        assert!(fb > 0 && sb > 0);
    }

    #[test]
    fn cluster_agrees_with_single_placement_aware_server() {
        let t = trace();
        let fast: DetHashSet<u64> = (0..100).collect();
        let mut cluster = TwoInstanceCluster::build(StoreKind::Redis, &t, fast.clone()).unwrap();
        let cr = cluster.run(&t);
        let sr = Server::build(StoreKind::Redis, &t, Placement::FastSet(fast))
            .unwrap()
            .run(&t);
        let rel = (cr.throughput_ops_s() - sr.throughput_ops_s()).abs() / sr.throughput_ops_s();
        // Separate per-instance LLCs and dict load factors leave a small
        // gap; the architectures must agree to a few percent.
        assert!(
            rel < 0.05,
            "cluster {} vs server {}",
            cr.throughput_ops_s(),
            sr.throughput_ops_s()
        );
    }

    #[test]
    fn empty_fast_set_equals_all_slow() {
        let t = trace();
        let mut cluster =
            TwoInstanceCluster::build(StoreKind::Redis, &t, DetHashSet::default()).unwrap();
        let cr = cluster.run(&t);
        let sr = Server::build(StoreKind::Redis, &t, Placement::AllSlow)
            .unwrap()
            .run(&t);
        let rel = (cr.throughput_ops_s() - sr.throughput_ops_s()).abs() / sr.throughput_ops_s();
        assert!(
            rel < 0.01,
            "cluster {} vs server {}",
            cr.throughput_ops_s(),
            sr.throughput_ops_s()
        );
    }

    #[test]
    fn telemetered_cluster_counts_routing_decisions() {
        let t = trace();
        let fast: DetHashSet<u64> = (0..50).collect();
        let mut cluster = TwoInstanceCluster::build(StoreKind::Redis, &t, fast.clone()).unwrap();
        let (report, snaps) = cluster.run_telemetered(&t, 0);
        assert_eq!(snaps.len(), 1);
        let snap = &snaps[0];
        let expected_fast = t.requests.iter().filter(|r| fast.contains(&r.key)).count() as u64;
        assert_eq!(snap.counter("kv.route.fast"), expected_fast);
        assert_eq!(
            snap.counter("kv.route.fast") + snap.counter("kv.route.slow"),
            report.requests as u64
        );
        assert!(snap.counter("kv.llc.fast.hits") + snap.counter("kv.llc.fast.misses") > 0);
    }

    #[test]
    fn from_placement_constructor() {
        let t = trace();
        let c = TwoInstanceCluster::from_placement(StoreKind::Memcached, &t, &Placement::AllFast)
            .unwrap();
        assert_eq!(c.key_split().0, 200);
    }
}
