//! Memcached-like engine: slab-allocated, protocol-heavy server.
//!
//! Values live in power-law slab classes (base 96 bytes, 1.25 growth
//! factor, as memcached's default `-f 1.25`), each item carrying a fixed
//! header. The per-op fixed cost is high — memcached's value to the paper
//! is precisely that its protocol/client path *masks* memory latency,
//! which is why Fig. 9 shows it running fully on SlowMem inside a 10%
//! slowdown budget.

use crate::engine::{EngineCore, EngineError, KvEngine};
use crate::profile::{EngineProfile, StoreKind};
use hybridmem::{AccessKind, HybridMemory, HybridSpec, MemTier};

/// memcached's per-item header (item struct + CAS + key).
const ITEM_HEADER_BYTES: u64 = 48;
/// Smallest slab chunk.
const SLAB_BASE_BYTES: u64 = 96;
/// Slab growth factor (memcached default 1.25).
const SLAB_GROWTH: f64 = 1.25;
/// Largest slab chunk (1 MiB, memcached's default item size limit).
const SLAB_MAX_BYTES: u64 = 1 << 20;

/// All slab chunk sizes, smallest to largest.
pub fn slab_classes() -> Vec<u64> {
    let mut classes = Vec::new();
    let mut size = SLAB_BASE_BYTES as f64;
    while (size as u64) < SLAB_MAX_BYTES {
        classes.push(size as u64);
        size *= SLAB_GROWTH;
    }
    classes.push(SLAB_MAX_BYTES);
    classes
}

/// The chunk size an item of `bytes` (value + header) is stored in.
pub fn slab_chunk_for(bytes: u64) -> u64 {
    for class in slab_classes() {
        if bytes <= class {
            return class;
        }
    }
    SLAB_MAX_BYTES
}

/// Memcached-like key-value engine.
pub struct MemcachedLike {
    core: EngineCore,
    /// Per-slab-class item counts, indexed by class position.
    class_counts: Vec<u64>,
    /// Sum of logical value bytes over all loaded keys.
    core_value_sum: u64,
}

impl MemcachedLike {
    /// Build over a fresh memory system.
    pub fn new(spec: HybridSpec) -> MemcachedLike {
        MemcachedLike::with_profile(StoreKind::Memcached.profile(), spec)
    }

    /// Build with a custom profile (ablations).
    pub fn with_profile(profile: EngineProfile, spec: HybridSpec) -> MemcachedLike {
        MemcachedLike {
            core: EngineCore::new(profile, HybridMemory::new(spec)),
            class_counts: vec![0; slab_classes().len()],
            core_value_sum: 0,
        }
    }

    fn class_index(bytes: u64) -> usize {
        slab_classes()
            .iter()
            .position(|&c| bytes <= c)
            .unwrap_or(slab_classes().len() - 1)
    }

    /// Slab-allocator internal fragmentation (chunk bytes reserved minus
    /// logical value bytes stored).
    pub fn slab_overhead_bytes(&self) -> u64 {
        let reserved = self.bytes_in(MemTier::Fast) + self.bytes_in(MemTier::Slow);
        reserved.saturating_sub(self.core_value_sum)
    }

    fn bump_class(&mut self, stored: u64, delta: i64) {
        let idx = Self::class_index(stored);
        let c = &mut self.class_counts[idx];
        *c = (*c as i64 + delta).max(0) as u64;
    }
}

impl KvEngine for MemcachedLike {
    fn profile(&self) -> &EngineProfile {
        self.core.profile()
    }

    fn load(&mut self, key: u64, bytes: u64, tier: MemTier) -> Result<(), EngineError> {
        let chunk = slab_chunk_for(bytes + ITEM_HEADER_BYTES);
        self.core.load(key, bytes, chunk, tier)?;
        self.core_value_sum += bytes;
        self.bump_class(chunk, 1);
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<f64, EngineError> {
        let op = self
            .core
            .charge_op(key, AccessKind::Read, self.core.profile().index_touches)?;
        Ok(self.core.profile().fixed_op_ns + op.index_ns + op.value_ns)
    }

    fn put(&mut self, key: u64) -> Result<f64, EngineError> {
        let op = self
            .core
            .charge_op(key, AccessKind::Write, self.core.profile().index_touches)?;
        Ok(self.core.profile().fixed_op_ns + op.index_ns + op.value_ns)
    }

    fn delete(&mut self, key: u64) -> Result<f64, EngineError> {
        let index = self
            .core
            .index_walk(key, self.core.profile().index_touches)?;
        let bytes = self.core.remove(key)?;
        self.core_value_sum = self.core_value_sum.saturating_sub(bytes);
        let chunk = slab_chunk_for(bytes + ITEM_HEADER_BYTES);
        self.bump_class(chunk, -1);
        Ok(self.core.profile().fixed_op_ns + index)
    }

    fn placement_of(&self, key: u64) -> Option<MemTier> {
        self.core.placement_of(key)
    }

    fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError> {
        self.core.migrate(key, tier)
    }

    fn key_count(&self) -> usize {
        self.core.key_count()
    }

    fn bytes_in(&self, tier: MemTier) -> u64 {
        self.core.bytes_in(tier)
    }

    fn value_bytes(&self, key: u64) -> Option<u64> {
        self.core.value_bytes(key)
    }

    fn reset_measurement_state(&mut self) {
        self.core.reset_measurement_state();
    }

    fn memory(&self) -> &HybridMemory {
        self.core.memory()
    }

    fn memory_mut(&mut self) -> &mut HybridMemory {
        self.core.memory_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 26;
        spec.slow_capacity = 1 << 26;
        spec
    }

    #[test]
    fn slab_classes_grow_geometrically() {
        let classes = slab_classes();
        assert!(classes.len() > 20);
        assert_eq!(classes[0], SLAB_BASE_BYTES);
        assert_eq!(*classes.last().unwrap(), SLAB_MAX_BYTES);
        for w in classes.windows(2) {
            assert!(w[1] > w[0]);
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                ratio <= 1.26 + 1e-9 || w[1] == SLAB_MAX_BYTES,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn chunk_rounding() {
        assert_eq!(slab_chunk_for(50), 96);
        assert_eq!(slab_chunk_for(96), 96);
        assert_eq!(slab_chunk_for(97), 120);
        assert_eq!(slab_chunk_for(10 << 20), SLAB_MAX_BYTES);
    }

    #[test]
    fn slab_overhead_is_visible() {
        let mut e = MemcachedLike::new(small_spec());
        e.load(1, 100, MemTier::Fast).unwrap(); // 100+48=148 -> 150-class
        let reserved = e.bytes_in(MemTier::Fast);
        assert!(reserved > 100, "reserved {reserved}");
        assert!(e.slab_overhead_bytes() > 0);
    }

    #[test]
    fn memcached_is_least_sensitive() {
        let mut e = MemcachedLike::new(small_spec());
        e.load(1, 100_000, MemTier::Fast).unwrap();
        e.load(2, 100_000, MemTier::Slow).unwrap();
        e.get(1).unwrap();
        e.get(2).unwrap();
        e.reset_measurement_state();
        let f = e.get(1).unwrap();
        let s = e.get(2).unwrap();
        assert!(
            s / f < 1.15,
            "memcached slowdown must stay small: {}",
            s / f
        );
    }

    #[test]
    fn delete_updates_class_counts() {
        let mut e = MemcachedLike::new(small_spec());
        e.load(1, 100, MemTier::Fast).unwrap();
        let before: u64 = e.class_counts.iter().sum();
        e.delete(1).unwrap();
        let after: u64 = e.class_counts.iter().sum();
        assert_eq!(before - 1, after);
        assert_eq!(e.key_count(), 0);
    }
}
