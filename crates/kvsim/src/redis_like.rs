//! Redis-like engine: single-threaded dict server.
//!
//! Models the parts of Redis that matter for hybrid-memory sensitivity:
//! a chained hash dict whose expected probe depth grows with load factor,
//! an `robj`/SDS header per value, and a single copy of the value bytes
//! per operation. Everything else (event loop, RESP parsing, the loopback
//! network stack shared with the YCSB client) is the profile's fixed
//! per-op cost.

use crate::engine::{EngineCore, EngineError, KvEngine};
use crate::profile::{EngineProfile, StoreKind};
use hybridmem::{AccessKind, HybridMemory, HybridSpec, MemTier};

/// Per-value header overhead (robj + SDS header + dict entry), bytes.
const VALUE_HEADER_BYTES: u64 = 64;

/// Redis-like key-value engine.
pub struct RedisLike {
    core: EngineCore,
    /// Power-of-two dict table size (doubles like Redis' dict).
    table_size: u64,
}

impl RedisLike {
    /// Build over a fresh memory system.
    pub fn new(spec: HybridSpec) -> RedisLike {
        RedisLike::with_profile(StoreKind::Redis.profile(), spec)
    }

    /// Build with a custom profile (ablations).
    pub fn with_profile(profile: EngineProfile, spec: HybridSpec) -> RedisLike {
        RedisLike {
            core: EngineCore::new(profile, HybridMemory::new(spec)),
            table_size: 4,
        }
    }

    /// Current dict load factor (keys per bucket).
    pub fn load_factor(&self) -> f64 {
        self.core.key_count() as f64 / self.table_size as f64
    }

    fn maybe_grow(&mut self) {
        // Redis grows the dict when load factor reaches 1.
        while self.core.key_count() as u64 > self.table_size {
            self.table_size *= 2;
        }
    }

    /// Dict walk cost: the configured dependent touches, scaled by the
    /// expected chain length at the current load factor.
    fn index_cost(&mut self, key: u64) -> Result<f64, EngineError> {
        let base = self
            .core
            .index_walk(key, self.core.profile().index_touches)?;
        Ok(base * self.chain_scale())
    }

    /// Expected chain-length multiplier at the current load factor.
    fn chain_scale(&self) -> f64 {
        1.0 + self.load_factor() / 2.0
    }
}

impl KvEngine for RedisLike {
    fn profile(&self) -> &EngineProfile {
        self.core.profile()
    }

    fn load(&mut self, key: u64, bytes: u64, tier: MemTier) -> Result<(), EngineError> {
        self.core
            .load(key, bytes, bytes + VALUE_HEADER_BYTES, tier)?;
        self.maybe_grow();
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<f64, EngineError> {
        let op = self
            .core
            .charge_op(key, AccessKind::Read, self.core.profile().index_touches)?;
        let index = op.index_ns * self.chain_scale();
        Ok(self.core.profile().fixed_op_ns + index + op.value_ns)
    }

    fn put(&mut self, key: u64) -> Result<f64, EngineError> {
        let op = self
            .core
            .charge_op(key, AccessKind::Write, self.core.profile().index_touches)?;
        let index = op.index_ns * self.chain_scale();
        Ok(self.core.profile().fixed_op_ns + index + op.value_ns)
    }

    fn delete(&mut self, key: u64) -> Result<f64, EngineError> {
        let index = self.index_cost(key)?;
        self.core.remove(key)?;
        Ok(self.core.profile().fixed_op_ns + index)
    }

    fn placement_of(&self, key: u64) -> Option<MemTier> {
        self.core.placement_of(key)
    }

    fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError> {
        self.core.migrate(key, tier)
    }

    fn key_count(&self) -> usize {
        self.core.key_count()
    }

    fn bytes_in(&self, tier: MemTier) -> u64 {
        self.core.bytes_in(tier)
    }

    fn value_bytes(&self, key: u64) -> Option<u64> {
        self.core.value_bytes(key)
    }

    fn reset_measurement_state(&mut self) {
        self.core.reset_measurement_state();
    }

    fn memory(&self) -> &HybridMemory {
        self.core.memory()
    }

    fn memory_mut(&mut self) -> &mut HybridMemory {
        self.core.memory_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 26;
        spec.slow_capacity = 1 << 26;
        spec
    }

    #[test]
    fn get_put_delete_roundtrip() {
        let mut e = RedisLike::new(small_spec());
        e.load(1, 1000, MemTier::Fast).unwrap();
        assert!(e.get(1).unwrap() > 0.0);
        assert!(e.put(1).unwrap() > 0.0);
        assert!(e.delete(1).unwrap() > 0.0);
        assert_eq!(e.get(1).unwrap_err(), EngineError::UnknownKey(1));
    }

    #[test]
    fn slow_tier_is_slower_end_to_end() {
        let mut e = RedisLike::new(small_spec());
        e.load(1, 100_000, MemTier::Fast).unwrap();
        e.load(2, 100_000, MemTier::Slow).unwrap();
        // Skip cache warmup effects: measure second access of each.
        e.get(1).unwrap();
        e.get(2).unwrap();
        e.reset_measurement_state();
        let f = e.get(1).unwrap();
        let s = e.get(2).unwrap();
        assert!(s > f, "slow {s} fast {f}");
        // With the fixed op cost folded in, the slowdown is bounded (the
        // paper's ~1.4x band for thumbnails).
        assert!(s / f < 2.0, "ratio {}", s / f);
    }

    #[test]
    fn writes_less_exposed_than_reads() {
        let mut e = RedisLike::new(small_spec());
        e.load(1, 100_000, MemTier::Slow).unwrap();
        e.get(1).unwrap();
        e.reset_measurement_state();
        let r = e.get(1).unwrap();
        e.reset_measurement_state();
        let w = e.put(1).unwrap();
        assert!(w < r, "write {w} read {r}");
    }

    #[test]
    fn dict_grows_with_keys() {
        let mut e = RedisLike::new(small_spec());
        for k in 0..100 {
            e.load(k, 100, MemTier::Fast).unwrap();
        }
        assert!(e.load_factor() <= 1.0);
        assert_eq!(e.key_count(), 100);
    }

    #[test]
    fn header_overhead_is_accounted() {
        let mut e = RedisLike::new(small_spec());
        e.load(1, 1000, MemTier::Fast).unwrap();
        assert!(e.bytes_in(MemTier::Fast) >= 1000 + VALUE_HEADER_BYTES);
        assert_eq!(e.value_bytes(1), Some(1000));
    }

    #[test]
    fn migrate_between_tiers() {
        let mut e = RedisLike::new(small_spec());
        e.load(1, 1000, MemTier::Slow).unwrap();
        e.migrate(1, MemTier::Fast).unwrap();
        assert_eq!(e.placement_of(1), Some(MemTier::Fast));
        assert_eq!(e.bytes_in(MemTier::Slow), 0);
    }
}
