//! RocksDB-like engine: a *storage-engaged* store — the negative control
//! for Mnemo's estimation model.
//!
//! §V "Target applications": "We do not argue that the estimation model
//! will work for any data store, especially those engaging storage
//! components. Rather, data accesses that go through the storage
//! subsystem, need to be appropriately studied and modeled."
//!
//! This engine makes that claim testable. It models an LSM store whose
//! working set partially lives on disk: a block cache (LRU over value
//! bytes) fronts a simulated SSD. Reads that hit the block cache follow
//! the usual hybrid-memory path (tier placement matters); reads that
//! miss go to the SSD (placement-independent!) and admit the value into
//! the block cache. Writes land in a memtable (memory write) and charge
//! amortised compaction I/O.
//!
//! The consequence Mnemo cannot see: per-key promotion benefit now
//! depends on each key's *block-cache residency*, which correlates with
//! hotness — cold keys gain nothing from FastMem because their time goes
//! to the SSD. The `model_limits` experiment measures the resulting
//! estimate error.

use crate::engine::{EngineCore, EngineError, KvEngine};
use crate::profile::{EngineProfile, StoreKind};
use hybridmem::cache::ObjectLru;
use hybridmem::Cache as _;
use hybridmem::{AccessKind, HybridMemory, HybridSpec, MemTier};

/// Simulated SSD: ~90 µs access latency, 500 MB/s effective bandwidth.
const SSD_LATENCY_NS: f64 = 90_000.0;
const SSD_BYTES_PER_NS: f64 = 0.5;

/// Write amortisation: memtable flush + compaction rewrite the value
/// this many times on average (classic LSM write amplification ~10, but
/// amortised across the memtable batch the per-op charge is lower).
const AMORTISED_WRITE_AMP: f64 = 2.0;

/// Fraction of the hybrid memory capacity granted to the block cache.
/// Kept deliberately small (RocksDB defaults its block cache to a small
/// share of RAM and leans on the OS page cache): on the paper testbed
/// this yields ~400 MB — enough for a zipfian head, far short of the
/// ~1 GB datasets — so the tail genuinely lives on the SSD.
const BLOCK_CACHE_FRACTION: f64 = 0.05;

/// RocksDB-like storage-engaged engine.
pub struct RocksLike {
    core: EngineCore,
    block_cache: ObjectLru,
    disk_reads: u64,
    cache_reads: u64,
}

impl RocksLike {
    /// Build over a fresh memory system; the block cache is sized to a
    /// quarter of the configured memory capacity.
    pub fn new(spec: HybridSpec) -> RocksLike {
        let cache_bytes =
            ((spec.fast_capacity + spec.slow_capacity) as f64 * BLOCK_CACHE_FRACTION) as u64;
        RocksLike::with_cache_bytes(spec, cache_bytes)
    }

    /// Build with an explicit block-cache budget.
    pub fn with_cache_bytes(spec: HybridSpec, cache_bytes: u64) -> RocksLike {
        // Storage stores have lighter in-memory metadata than Redis but a
        // deep read path; the fixed cost matches Redis-class service.
        let profile = EngineProfile {
            kind: StoreKind::Rocks,
            fixed_op_ns: 120_000.0,
            index_touches: 4,
            touch_bytes: 64,
            read_amplification: 1.0,
            write_amplification: 1.0,
        };
        RocksLike {
            core: EngineCore::new(profile, HybridMemory::new(spec)),
            block_cache: ObjectLru::new(cache_bytes),
            disk_reads: 0,
            cache_reads: 0,
        }
    }

    /// SSD access time for `bytes`.
    fn ssd_ns(bytes: u64) -> f64 {
        SSD_LATENCY_NS + bytes as f64 / SSD_BYTES_PER_NS
    }

    /// `(block-cache reads, disk reads)` served so far.
    pub fn read_split(&self) -> (u64, u64) {
        (self.cache_reads, self.disk_reads)
    }

    /// Fraction of reads that went to the SSD.
    pub fn disk_read_ratio(&self) -> f64 {
        let total = self.cache_reads + self.disk_reads;
        if total == 0 {
            0.0
        } else {
            self.disk_reads as f64 / total as f64
        }
    }
}

impl KvEngine for RocksLike {
    fn profile(&self) -> &EngineProfile {
        self.core.profile()
    }

    fn load(&mut self, key: u64, bytes: u64, tier: MemTier) -> Result<(), EngineError> {
        // The tier reservation covers the key's *potential* block-cache
        // residency (the memory the store would use for it when hot).
        self.core.load(key, bytes, bytes + 64, tier)
    }

    fn get(&mut self, key: u64) -> Result<f64, EngineError> {
        let (_, bytes) = self.core.lookup(key)?;
        let index = self
            .core
            .index_walk(key, self.core.profile().index_touches)?;
        let data = if self.block_cache.touch(key) {
            // Block-cache hit: value served from memory in the key's tier.
            self.cache_reads += 1;
            self.core.value_traffic(key, AccessKind::Read)?
        } else {
            // Miss: the SSD serves it, independent of tier placement;
            // the value is admitted into the block cache (memory write in
            // the key's tier).
            self.disk_reads += 1;
            self.block_cache.insert_reporting(key, bytes);
            Self::ssd_ns(bytes) + self.core.value_traffic(key, AccessKind::Write)?
        };
        Ok(self.core.profile().fixed_op_ns + index + data)
    }

    fn put(&mut self, key: u64) -> Result<f64, EngineError> {
        let (_, bytes) = self.core.lookup(key)?;
        let index = self
            .core
            .index_walk(key, self.core.profile().index_touches)?;
        // Memtable write in the key's tier + amortised compaction I/O.
        let memwrite = self.core.value_traffic(key, AccessKind::Write)?;
        let compaction = AMORTISED_WRITE_AMP * Self::ssd_ns(bytes);
        // The fresh value lands in the block cache.
        self.block_cache.insert_reporting(key, bytes);
        Ok(self.core.profile().fixed_op_ns + index + memwrite + compaction)
    }

    fn delete(&mut self, key: u64) -> Result<f64, EngineError> {
        let index = self
            .core
            .index_walk(key, self.core.profile().index_touches)?;
        self.block_cache.invalidate(key);
        self.core.remove(key)?;
        Ok(self.core.profile().fixed_op_ns + index)
    }

    fn placement_of(&self, key: u64) -> Option<MemTier> {
        self.core.placement_of(key)
    }

    fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError> {
        self.core.migrate(key, tier)
    }

    fn key_count(&self) -> usize {
        self.core.key_count()
    }

    fn bytes_in(&self, tier: MemTier) -> u64 {
        self.core.bytes_in(tier)
    }

    fn value_bytes(&self, key: u64) -> Option<u64> {
        self.core.value_bytes(key)
    }

    fn reset_measurement_state(&mut self) {
        self.core.reset_measurement_state();
        self.block_cache.clear();
        self.disk_reads = 0;
        self.cache_reads = 0;
    }

    fn memory(&self) -> &HybridMemory {
        self.core.memory()
    }

    fn memory_mut(&mut self) -> &mut HybridMemory {
        self.core.memory_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 27;
        spec.slow_capacity = 1 << 27;
        spec.cache = hybridmem::CacheConfig::disabled();
        spec
    }

    #[test]
    fn cold_reads_hit_disk_then_cache() {
        let mut e = RocksLike::new(small_spec());
        e.load(1, 100_000, MemTier::Fast).unwrap();
        let cold = e.get(1).unwrap();
        let warm = e.get(1).unwrap();
        assert!(
            cold > warm + SSD_LATENCY_NS,
            "cold {cold} must include SSD time"
        );
        assert_eq!(e.read_split(), (1, 1));
    }

    #[test]
    fn disk_reads_are_placement_independent() {
        let mut e = RocksLike::with_cache_bytes(small_spec(), 0); // cache nothing
        e.load(1, 100_000, MemTier::Fast).unwrap();
        e.load(2, 100_000, MemTier::Slow).unwrap();
        let fast = e.get(1).unwrap();
        let slow = e.get(2).unwrap();
        // Both go to disk; only the admission write differs (small).
        let rel = (slow - fast) / fast;
        assert!(
            rel < 0.25,
            "tier placement must barely matter on disk reads: {rel}"
        );
    }

    #[test]
    fn cached_reads_are_placement_dependent() {
        let mut e = RocksLike::new(small_spec());
        e.load(1, 100_000, MemTier::Fast).unwrap();
        e.load(2, 100_000, MemTier::Slow).unwrap();
        e.get(1).unwrap();
        e.get(2).unwrap(); // both now block-cached
        let fast = e.get(1).unwrap();
        let slow = e.get(2).unwrap();
        assert!(
            slow > fast * 1.2,
            "cached reads expose the tier: {slow} vs {fast}"
        );
    }

    #[test]
    fn writes_pay_compaction() {
        let mut e = RocksLike::new(small_spec());
        e.load(1, 100_000, MemTier::Fast).unwrap();
        let w = e.put(1).unwrap();
        assert!(
            w > AMORTISED_WRITE_AMP * SSD_LATENCY_NS,
            "compaction I/O charged: {w}"
        );
        // And the write warms the block cache for the next read.
        let r = e.get(1).unwrap();
        assert!(r < w, "post-write read is a cache hit");
        assert_eq!(e.read_split(), (1, 0));
    }

    #[test]
    fn reset_clears_block_cache() {
        let mut e = RocksLike::new(small_spec());
        e.load(1, 50_000, MemTier::Fast).unwrap();
        e.get(1).unwrap();
        e.reset_measurement_state();
        e.get(1).unwrap();
        assert_eq!(e.read_split(), (0, 1), "post-reset read must be cold");
    }
}
