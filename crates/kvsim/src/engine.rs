//! The [`KvEngine`] trait and the shared engine core.
//!
//! Engines simulate the *server side* of the paper's setup: they own a
//! [`HybridMemory`], keep a key → object mapping, and translate every
//! client operation into (a) engine-specific index work, (b) value
//! traffic through the memory system, and (c) a fixed CPU/protocol cost.
//! The returned service times are what the YCSB-style
//! [`Server`](crate::server::Server) accumulates.

use crate::profile::EngineProfile;
use hybridmem::{AccessKind, AllocError, DenseU64Map, HybridMemory, MemTier, ObjectId};

/// Errors surfaced by engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Key not loaded.
    UnknownKey(u64),
    /// Key already loaded (double `load`).
    DuplicateKey(u64),
    /// The memory system rejected an allocation.
    Memory(AllocError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownKey(k) => write!(f, "unknown key {k}"),
            EngineError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            EngineError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AllocError> for EngineError {
    fn from(e: AllocError) -> Self {
        EngineError::Memory(e)
    }
}

/// A simulated key-value store engine.
pub trait KvEngine: Send {
    /// The engine's cost profile.
    fn profile(&self) -> &EngineProfile;

    /// Pre-load a key of `bytes` into `tier` (dataset population — not
    /// part of the measured run, costs nothing).
    fn load(&mut self, key: u64, bytes: u64, tier: MemTier) -> Result<(), EngineError>;

    /// Serve a GET; returns the simulated service time in nanoseconds.
    fn get(&mut self, key: u64) -> Result<f64, EngineError>;

    /// Serve a same-size UPDATE; returns the service time in nanoseconds.
    fn put(&mut self, key: u64) -> Result<f64, EngineError>;

    /// Serve a DELETE; returns the service time in nanoseconds.
    fn delete(&mut self, key: u64) -> Result<f64, EngineError>;

    /// Current tier of a key.
    fn placement_of(&self, key: u64) -> Option<MemTier>;

    /// Move a key's value (and its metadata) to `tier` outside measured
    /// time (static placement, as Mnemo's Placement Engine performs it).
    fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError>;

    /// Number of loaded keys.
    fn key_count(&self) -> usize;

    /// Bytes the engine occupies in `tier`, including allocator overhead.
    fn bytes_in(&self, tier: MemTier) -> u64;

    /// Logical value bytes stored for a key.
    fn value_bytes(&self, key: u64) -> Option<u64>;

    /// Reset caches and statistics between measured runs.
    fn reset_measurement_state(&mut self);

    /// Access the underlying memory system (stats, cache counters).
    fn memory(&self) -> &HybridMemory;

    /// Mutable access to the memory system — drivers use it to advance
    /// the devices' view of simulated time and install degradation
    /// profiles (fault injection).
    fn memory_mut(&mut self) -> &mut HybridMemory;
}

/// The two cost components of one index-plus-value operation, resolved
/// by [`EngineCore::charge_op`] with a single key lookup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCharge {
    /// Cost of the engine's dependent index pointer-chases.
    pub index_ns: f64,
    /// Cost of moving the value (including amplification passes).
    pub value_ns: f64,
}

/// Shared implementation: key table, memory system, value traffic.
///
/// Concrete engines embed an `EngineCore` and add their index-walk and
/// allocation-rounding behaviour through the hooks they pass in.
pub struct EngineCore {
    profile: EngineProfile,
    mem: HybridMemory,
    /// key -> (object, logical value bytes). Trace keys are dense, so
    /// the hot-path lookup is a vector index, not a hash probe.
    table: DenseU64Map<(ObjectId, u64)>,
}

impl EngineCore {
    /// Build a core over a memory system.
    pub fn new(profile: EngineProfile, mem: HybridMemory) -> EngineCore {
        EngineCore {
            profile,
            mem,
            table: DenseU64Map::new(),
        }
    }

    /// The profile.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// The memory system.
    pub fn memory(&self) -> &HybridMemory {
        &self.mem
    }

    /// Mutable memory system (engine internals only).
    pub fn memory_mut(&mut self) -> &mut HybridMemory {
        &mut self.mem
    }

    /// Insert a key whose stored footprint is `stored_bytes` (the
    /// engine's rounded allocation for `value_bytes`).
    pub fn load(
        &mut self,
        key: u64,
        value_bytes: u64,
        stored_bytes: u64,
        tier: MemTier,
    ) -> Result<(), EngineError> {
        if self.table.contains_key(key) {
            return Err(EngineError::DuplicateKey(key));
        }
        let id = self.mem.alloc(stored_bytes.max(1), tier)?;
        self.table.insert(key, (id, value_bytes));
        Ok(())
    }

    /// Look up a key.
    pub fn lookup(&self, key: u64) -> Result<(ObjectId, u64), EngineError> {
        self.table
            .get(key)
            .copied()
            .ok_or(EngineError::UnknownKey(key))
    }

    /// The tier currently holding a key.
    pub fn placement_of(&self, key: u64) -> Option<MemTier> {
        let (id, _) = self.table.get(key).copied()?;
        self.mem.placement(id).ok().map(|p| p.tier)
    }

    /// Value traffic of one operation: one cached access over the stored
    /// object plus `(amplification - 1)` extra uncached passes (the
    /// (de)serialisation copies of object-heavy stores stream through
    /// fresh buffers, so they pay device speed again).
    pub fn value_traffic(&mut self, key: u64, kind: AccessKind) -> Result<f64, EngineError> {
        let (id, value_bytes) = self.lookup(key)?;
        let tier = self.mem.placement(id).map_err(EngineError::Memory)?.tier;
        let amp = match kind {
            AccessKind::Read => self.profile.read_amplification,
            AccessKind::Write => self.profile.write_amplification,
        };
        let mut ns = self.mem.access(id, kind);
        if amp > 1.0 {
            ns += (amp - 1.0) * self.mem.touch(tier, kind, value_bytes);
        }
        Ok(ns)
    }

    /// One dependent metadata pointer-chase in the key's tier.
    pub fn index_touch(&mut self, key: u64) -> Result<f64, EngineError> {
        let (id, _) = self.lookup(key)?;
        let tier = self.mem.placement(id).map_err(EngineError::Memory)?.tier;
        let bytes = self.profile.touch_bytes;
        Ok(self.mem.touch(tier, AccessKind::Read, bytes))
    }

    /// `touches` dependent metadata pointer-chases in the key's tier.
    /// Resolved with one lookup and charged as a batch — bit-identical
    /// to `touches` separate [`EngineCore::index_touch`] calls, since
    /// every touch in the chain is the same size in the same tier.
    pub fn index_walk(&mut self, key: u64, touches: u32) -> Result<f64, EngineError> {
        if touches == 0 {
            return Ok(0.0);
        }
        let (id, _) = self.lookup(key)?;
        let tier = self.mem.placement(id).map_err(EngineError::Memory)?.tier;
        let bytes = self.profile.touch_bytes;
        Ok(self
            .mem
            .touch_n(tier, AccessKind::Read, bytes, u64::from(touches)))
    }

    /// The full index + value charge of one operation, with the key
    /// lookup and placement probe done once instead of once per
    /// component. Charges the index walk first, then the value traffic
    /// — the same device-access order as the unbatched sequence, so
    /// stats and totals stay bit-identical.
    pub fn charge_op(
        &mut self,
        key: u64,
        kind: AccessKind,
        touches: u32,
    ) -> Result<OpCharge, EngineError> {
        let (id, value_bytes) = self.lookup(key)?;
        let p = self.mem.placement(id).map_err(EngineError::Memory)?;
        let index_ns = self.mem.touch_n(
            p.tier,
            AccessKind::Read,
            self.profile.touch_bytes,
            u64::from(touches),
        );
        let amp = match kind {
            AccessKind::Read => self.profile.read_amplification,
            AccessKind::Write => self.profile.write_amplification,
        };
        let mut value_ns = self.mem.access_at(id, p, kind);
        if amp > 1.0 {
            value_ns += (amp - 1.0) * self.mem.touch(p.tier, kind, value_bytes);
        }
        Ok(OpCharge { index_ns, value_ns })
    }

    /// Remove a key, freeing its storage.
    pub fn remove(&mut self, key: u64) -> Result<u64, EngineError> {
        let (id, value_bytes) = self.table.remove(key).ok_or(EngineError::UnknownKey(key))?;
        self.mem.free(id)?;
        Ok(value_bytes)
    }

    /// Migrate a key's object.
    pub fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError> {
        let (id, _) = self.lookup(key)?;
        self.mem.migrate(id, tier)?;
        Ok(())
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.table.len()
    }

    /// Logical value bytes of a key.
    pub fn value_bytes(&self, key: u64) -> Option<u64> {
        self.table.get(key).map(|&(_, b)| b)
    }

    /// Engine bytes in a tier (device accounting).
    pub fn bytes_in(&self, tier: MemTier) -> u64 {
        self.mem.used(tier)
    }

    /// Reset measurement state.
    pub fn reset_measurement_state(&mut self) {
        self.mem.reset_measurement_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StoreKind;
    use hybridmem::HybridSpec;

    fn core() -> EngineCore {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 24;
        spec.slow_capacity = 1 << 24;
        EngineCore::new(StoreKind::Redis.profile(), HybridMemory::new(spec))
    }

    #[test]
    fn load_lookup_remove() {
        let mut c = core();
        c.load(1, 100, 128, MemTier::Fast).unwrap();
        assert_eq!(c.key_count(), 1);
        assert_eq!(c.value_bytes(1), Some(100));
        assert_eq!(c.placement_of(1), Some(MemTier::Fast));
        assert_eq!(
            c.load(1, 100, 128, MemTier::Fast).unwrap_err(),
            EngineError::DuplicateKey(1)
        );
        assert_eq!(c.remove(1).unwrap(), 100);
        assert_eq!(c.lookup(1).unwrap_err(), EngineError::UnknownKey(1));
    }

    #[test]
    fn value_traffic_depends_on_tier() {
        let mut c = core();
        c.load(1, 100_000, 100_000, MemTier::Fast).unwrap();
        c.load(2, 100_000, 100_000, MemTier::Slow).unwrap();
        let tf = c.value_traffic(1, AccessKind::Read).unwrap();
        let ts = c.value_traffic(2, AccessKind::Read).unwrap();
        assert!(ts > 3.0 * tf, "slow {ts} fast {tf}");
    }

    #[test]
    fn index_walk_scales_with_touches() {
        let mut c = core();
        c.load(1, 64, 64, MemTier::Slow).unwrap();
        let one = c.index_walk(1, 1).unwrap();
        let ten = c.index_walk(1, 10).unwrap();
        assert!((ten - 10.0 * one).abs() < 1e-6);
    }

    #[test]
    fn charge_op_is_bit_identical_to_unbatched_components() {
        for kind in [AccessKind::Read, AccessKind::Write] {
            let mut split = core();
            let mut fused = core();
            for c in [&mut split, &mut fused] {
                c.load(1, 100_000, 100_000, MemTier::Slow).unwrap();
                // Warm the cache so both paths see the same hit pattern.
                c.value_traffic(1, kind).unwrap();
            }
            let index = split.index_walk(1, 5).unwrap();
            let value = split.value_traffic(1, kind).unwrap();
            let op = fused.charge_op(1, kind, 5).unwrap();
            assert_eq!(index.to_bits(), op.index_ns.to_bits(), "{kind:?}");
            assert_eq!(value.to_bits(), op.value_ns.to_bits(), "{kind:?}");
            assert_eq!(
                split.memory().tier_stats(MemTier::Slow),
                fused.memory().tier_stats(MemTier::Slow)
            );
        }
    }

    #[test]
    fn charge_op_unknown_key_errors() {
        let mut c = core();
        assert_eq!(
            c.charge_op(9, AccessKind::Read, 3).unwrap_err(),
            EngineError::UnknownKey(9)
        );
    }

    #[test]
    fn migrate_updates_placement() {
        let mut c = core();
        c.load(1, 100, 128, MemTier::Slow).unwrap();
        c.migrate(1, MemTier::Fast).unwrap();
        assert_eq!(c.placement_of(1), Some(MemTier::Fast));
        assert_eq!(c.bytes_in(MemTier::Slow), 0);
    }

    #[test]
    fn amplified_reads_cost_more() {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 24;
        spec.slow_capacity = 1 << 24;
        let mut plain =
            EngineCore::new(StoreKind::Redis.profile(), HybridMemory::new(spec.clone()));
        let mut amped = EngineCore::new(StoreKind::Dynamo.profile(), HybridMemory::new(spec));
        plain.load(1, 50_000, 50_000, MemTier::Slow).unwrap();
        amped.load(1, 50_000, 50_000, MemTier::Slow).unwrap();
        let a = plain.value_traffic(1, AccessKind::Read).unwrap();
        let b = amped.value_traffic(1, AccessKind::Read).unwrap();
        assert!(b > 2.0 * a, "amplification must dominate: {b} vs {a}");
    }
}
