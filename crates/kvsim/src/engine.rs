//! The [`KvEngine`] trait and the shared engine core.
//!
//! Engines simulate the *server side* of the paper's setup: they own a
//! [`HybridMemory`], keep a key → object mapping, and translate every
//! client operation into (a) engine-specific index work, (b) value
//! traffic through the memory system, and (c) a fixed CPU/protocol cost.
//! The returned service times are what the YCSB-style
//! [`Server`](crate::server::Server) accumulates.

use crate::profile::EngineProfile;
use hybridmem::{AccessKind, AllocError, DetHashMap, HybridMemory, MemTier, ObjectId};

/// Errors surfaced by engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Key not loaded.
    UnknownKey(u64),
    /// Key already loaded (double `load`).
    DuplicateKey(u64),
    /// The memory system rejected an allocation.
    Memory(AllocError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownKey(k) => write!(f, "unknown key {k}"),
            EngineError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            EngineError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<AllocError> for EngineError {
    fn from(e: AllocError) -> Self {
        EngineError::Memory(e)
    }
}

/// A simulated key-value store engine.
pub trait KvEngine: Send {
    /// The engine's cost profile.
    fn profile(&self) -> &EngineProfile;

    /// Pre-load a key of `bytes` into `tier` (dataset population — not
    /// part of the measured run, costs nothing).
    fn load(&mut self, key: u64, bytes: u64, tier: MemTier) -> Result<(), EngineError>;

    /// Serve a GET; returns the simulated service time in nanoseconds.
    fn get(&mut self, key: u64) -> Result<f64, EngineError>;

    /// Serve a same-size UPDATE; returns the service time in nanoseconds.
    fn put(&mut self, key: u64) -> Result<f64, EngineError>;

    /// Serve a DELETE; returns the service time in nanoseconds.
    fn delete(&mut self, key: u64) -> Result<f64, EngineError>;

    /// Current tier of a key.
    fn placement_of(&self, key: u64) -> Option<MemTier>;

    /// Move a key's value (and its metadata) to `tier` outside measured
    /// time (static placement, as Mnemo's Placement Engine performs it).
    fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError>;

    /// Number of loaded keys.
    fn key_count(&self) -> usize;

    /// Bytes the engine occupies in `tier`, including allocator overhead.
    fn bytes_in(&self, tier: MemTier) -> u64;

    /// Logical value bytes stored for a key.
    fn value_bytes(&self, key: u64) -> Option<u64>;

    /// Reset caches and statistics between measured runs.
    fn reset_measurement_state(&mut self);

    /// Access the underlying memory system (stats, cache counters).
    fn memory(&self) -> &HybridMemory;

    /// Mutable access to the memory system — drivers use it to advance
    /// the devices' view of simulated time and install degradation
    /// profiles (fault injection).
    fn memory_mut(&mut self) -> &mut HybridMemory;
}

/// Shared implementation: key table, memory system, value traffic.
///
/// Concrete engines embed an `EngineCore` and add their index-walk and
/// allocation-rounding behaviour through the hooks they pass in.
pub struct EngineCore {
    profile: EngineProfile,
    mem: HybridMemory,
    /// key -> (object, logical value bytes).
    table: DetHashMap<u64, (ObjectId, u64)>,
}

impl EngineCore {
    /// Build a core over a memory system.
    pub fn new(profile: EngineProfile, mem: HybridMemory) -> EngineCore {
        EngineCore {
            profile,
            mem,
            table: DetHashMap::default(),
        }
    }

    /// The profile.
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// The memory system.
    pub fn memory(&self) -> &HybridMemory {
        &self.mem
    }

    /// Mutable memory system (engine internals only).
    pub fn memory_mut(&mut self) -> &mut HybridMemory {
        &mut self.mem
    }

    /// Insert a key whose stored footprint is `stored_bytes` (the
    /// engine's rounded allocation for `value_bytes`).
    pub fn load(
        &mut self,
        key: u64,
        value_bytes: u64,
        stored_bytes: u64,
        tier: MemTier,
    ) -> Result<(), EngineError> {
        if self.table.contains_key(&key) {
            return Err(EngineError::DuplicateKey(key));
        }
        let id = self.mem.alloc(stored_bytes.max(1), tier)?;
        self.table.insert(key, (id, value_bytes));
        Ok(())
    }

    /// Look up a key.
    pub fn lookup(&self, key: u64) -> Result<(ObjectId, u64), EngineError> {
        self.table
            .get(&key)
            .copied()
            .ok_or(EngineError::UnknownKey(key))
    }

    /// The tier currently holding a key.
    pub fn placement_of(&self, key: u64) -> Option<MemTier> {
        let (id, _) = self.table.get(&key).copied()?;
        self.mem.placement(id).ok().map(|p| p.tier)
    }

    /// Value traffic of one operation: one cached access over the stored
    /// object plus `(amplification - 1)` extra uncached passes (the
    /// (de)serialisation copies of object-heavy stores stream through
    /// fresh buffers, so they pay device speed again).
    pub fn value_traffic(&mut self, key: u64, kind: AccessKind) -> Result<f64, EngineError> {
        let (id, value_bytes) = self.lookup(key)?;
        let tier = self.mem.placement(id).map_err(EngineError::Memory)?.tier;
        let amp = match kind {
            AccessKind::Read => self.profile.read_amplification,
            AccessKind::Write => self.profile.write_amplification,
        };
        let mut ns = self.mem.access(id, kind);
        if amp > 1.0 {
            ns += (amp - 1.0) * self.mem.touch(tier, kind, value_bytes);
        }
        Ok(ns)
    }

    /// One dependent metadata pointer-chase in the key's tier.
    pub fn index_touch(&mut self, key: u64) -> Result<f64, EngineError> {
        let (id, _) = self.lookup(key)?;
        let tier = self.mem.placement(id).map_err(EngineError::Memory)?.tier;
        let bytes = self.profile.touch_bytes;
        Ok(self.mem.touch(tier, AccessKind::Read, bytes))
    }

    /// `touches` dependent metadata pointer-chases in the key's tier.
    pub fn index_walk(&mut self, key: u64, touches: u32) -> Result<f64, EngineError> {
        let mut ns = 0.0;
        for _ in 0..touches {
            ns += self.index_touch(key)?;
        }
        Ok(ns)
    }

    /// Remove a key, freeing its storage.
    pub fn remove(&mut self, key: u64) -> Result<u64, EngineError> {
        let (id, value_bytes) = self
            .table
            .remove(&key)
            .ok_or(EngineError::UnknownKey(key))?;
        self.mem.free(id)?;
        Ok(value_bytes)
    }

    /// Migrate a key's object.
    pub fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError> {
        let (id, _) = self.lookup(key)?;
        self.mem.migrate(id, tier)?;
        Ok(())
    }

    /// Number of keys.
    pub fn key_count(&self) -> usize {
        self.table.len()
    }

    /// Logical value bytes of a key.
    pub fn value_bytes(&self, key: u64) -> Option<u64> {
        self.table.get(&key).map(|&(_, b)| b)
    }

    /// Engine bytes in a tier (device accounting).
    pub fn bytes_in(&self, tier: MemTier) -> u64 {
        self.mem.used(tier)
    }

    /// Reset measurement state.
    pub fn reset_measurement_state(&mut self) {
        self.mem.reset_measurement_state();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::StoreKind;
    use hybridmem::HybridSpec;

    fn core() -> EngineCore {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 24;
        spec.slow_capacity = 1 << 24;
        EngineCore::new(StoreKind::Redis.profile(), HybridMemory::new(spec))
    }

    #[test]
    fn load_lookup_remove() {
        let mut c = core();
        c.load(1, 100, 128, MemTier::Fast).unwrap();
        assert_eq!(c.key_count(), 1);
        assert_eq!(c.value_bytes(1), Some(100));
        assert_eq!(c.placement_of(1), Some(MemTier::Fast));
        assert_eq!(
            c.load(1, 100, 128, MemTier::Fast).unwrap_err(),
            EngineError::DuplicateKey(1)
        );
        assert_eq!(c.remove(1).unwrap(), 100);
        assert_eq!(c.lookup(1).unwrap_err(), EngineError::UnknownKey(1));
    }

    #[test]
    fn value_traffic_depends_on_tier() {
        let mut c = core();
        c.load(1, 100_000, 100_000, MemTier::Fast).unwrap();
        c.load(2, 100_000, 100_000, MemTier::Slow).unwrap();
        let tf = c.value_traffic(1, AccessKind::Read).unwrap();
        let ts = c.value_traffic(2, AccessKind::Read).unwrap();
        assert!(ts > 3.0 * tf, "slow {ts} fast {tf}");
    }

    #[test]
    fn index_walk_scales_with_touches() {
        let mut c = core();
        c.load(1, 64, 64, MemTier::Slow).unwrap();
        let one = c.index_walk(1, 1).unwrap();
        let ten = c.index_walk(1, 10).unwrap();
        assert!((ten - 10.0 * one).abs() < 1e-6);
    }

    #[test]
    fn migrate_updates_placement() {
        let mut c = core();
        c.load(1, 100, 128, MemTier::Slow).unwrap();
        c.migrate(1, MemTier::Fast).unwrap();
        assert_eq!(c.placement_of(1), Some(MemTier::Fast));
        assert_eq!(c.bytes_in(MemTier::Slow), 0);
    }

    #[test]
    fn amplified_reads_cost_more() {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 24;
        spec.slow_capacity = 1 << 24;
        let mut plain =
            EngineCore::new(StoreKind::Redis.profile(), HybridMemory::new(spec.clone()));
        let mut amped = EngineCore::new(StoreKind::Dynamo.profile(), HybridMemory::new(spec));
        plain.load(1, 50_000, 50_000, MemTier::Slow).unwrap();
        amped.load(1, 50_000, 50_000, MemTier::Slow).unwrap();
        let a = plain.value_traffic(1, AccessKind::Read).unwrap();
        let b = amped.value_traffic(1, AccessKind::Read).unwrap();
        assert!(b > 2.0 * a, "amplification must dominate: {b} vs {a}");
    }
}
