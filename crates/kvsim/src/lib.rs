//! Key-value store simulation substrate for the Mnemo reproduction.
//!
//! The paper measures three unmodified in-memory key-value stores — Redis,
//! Memcached and (local) DynamoDB — deployed on a hybrid memory testbed
//! and driven by a YCSB client. This crate rebuilds those servers as
//! *engine models* over the [`hybridmem`] simulator:
//!
//! * [`profile`] — per-engine cost profiles (fixed per-op service cost,
//!   metadata pointer-chases, data amplification). These three constants
//!   mechanistically reproduce the sensitivity ordering the paper
//!   observes in §V-A: DynamoDB ≫ Redis ≫ Memcached.
//! * [`engine`] — the [`KvEngine`] trait: load / get /
//!   put / delete with per-key tier placement and migration.
//! * [`redis_like`], [`memcached_like`], [`dynamo_like`] — the three
//!   engines, each with its own index and allocation behaviour (dict
//!   pointer-chasing, slab classes, object-graph amplification);
//!   [`rocks_like`] adds a storage-engaged LSM engine as the negative
//!   control for the estimation model's target class.
//! * [`server`] — executes [`ycsb`] traces against an engine, producing
//!   runtimes, throughputs, per-request service times and latency
//!   histograms (the paper's Sensitivity Engine measures against this).
//! * [`cluster`] — the paper's two-instance deployment: a FastMem-bound
//!   server plus a SlowMem-bound server and a client-side key router.
//! * [`dynamic`] — a migrating tiering baseline (the "existing tiering
//!   solution" of the paper's Fig. 2b), used to quantify when Mnemo's
//!   static placement suffices.
//! * [`cache_mode`] — FastMem as a write-back DRAM cache of SlowMem
//!   (Intel Memory Mode-style), the deployment the paper scopes out.
//! * [`sharded`] — a concurrent multi-shard deployment driven by the
//!   bounded `mnemo-par` worker pool.
//!
//! # Example
//!
//! ```
//! use kvsim::{Server, StoreKind, Placement};
//! use ycsb::WorkloadSpec;
//!
//! let trace = WorkloadSpec::trending().scaled(200, 2_000).generate(1);
//! let mut server = Server::build(StoreKind::Redis, &trace, Placement::AllFast).unwrap();
//! let fast = server.run(&trace);
//! let mut server = Server::build(StoreKind::Redis, &trace, Placement::AllSlow).unwrap();
//! let slow = server.run(&trace);
//! assert!(fast.throughput_ops_s() > slow.throughput_ops_s());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache_mode;
pub mod cluster;
pub mod dynamic;
pub mod dynamo_like;
pub mod engine;
pub mod memcached_like;
pub mod profile;
pub mod redis_like;
pub mod rocks_like;
pub mod server;
pub mod sharded;
pub mod tiered;

pub use cache_mode::{CacheModeServer, CacheModeStats};
pub use cluster::TwoInstanceCluster;
pub use dynamic::{DynamicConfig, DynamicTieringServer};
pub use engine::{EngineError, KvEngine, OpCharge};
pub use profile::{EngineProfile, StoreKind};
pub use server::{Placement, RequestSample, RunReport, Server};
pub use sharded::ShardedCluster;
pub use tiered::{MigrationStats, TieredEngine, TieredError, TieredServer};
