//! Dynamic tiering baseline — the "existing tiering solution" Mnemo is
//! complementary to (paper Fig. 2b).
//!
//! Mnemo provides "a static key allocation, with no support for dynamic
//! data migration" (§IV). The systems it builds on (X-Mem, HeteroOS,
//! Unimem) *migrate at runtime* instead: they monitor accesses and
//! periodically promote hot data into FastMem, paying migration traffic.
//! [`DynamicTieringServer`] implements that loop over the same engines:
//!
//! * every `epoch_requests` requests, keys are scored by an
//!   exponentially-decayed access count divided by size (the same
//!   density rule as MnemoT's weights);
//! * the FastMem budget is refilled with the top-density keys;
//! * every migration's simulated copy cost is charged to the runtime —
//!   dynamism is not free.
//!
//! The `dynamic_vs_static` experiment uses this to show where static
//! placement suffices (stable patterns like Trending) and where only
//! migration helps (sliding patterns like News Feed).

use crate::engine::{EngineError, KvEngine};
use crate::profile::StoreKind;
use crate::server::{make_engine, RequestSample, RunReport};
use hybridmem::{Histogram, HybridSpec, MemTier, SimClock};
use mnemo_faults::{Backoff, FaultPlan, MigrationFaults};
use ycsb::{Op, Trace};

/// Configuration of the dynamic tierer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Requests between re-tiering decisions.
    pub epoch_requests: usize,
    /// FastMem byte budget the tierer may fill.
    pub fast_budget_bytes: u64,
    /// Per-epoch decay of the access scores (0 = forget everything each
    /// epoch, 1 = never forget). HeteroOS-style history smoothing.
    pub decay: f64,
    /// Residency bonus: a key already in FastMem keeps its slot unless a
    /// challenger's access density exceeds the resident's by this factor.
    /// Without it, one-hit cold keys displace momentarily-quiet hot keys
    /// every epoch and the tierer thrashes (the instability real tiering
    /// systems damp with exactly this kind of hysteresis).
    pub hysteresis: f64,
    /// Minimum decayed score a *non-resident* key needs to be considered
    /// for promotion — the classic two-touch (2Q / second-chance) filter
    /// that keeps one-hit wonders from evicting quiet residents.
    pub promotion_threshold: f64,
}

impl DynamicConfig {
    /// A reasonable default: re-tier every 1000 requests, ~3-epoch score
    /// memory, 50% residency bonus.
    pub fn new(fast_budget_bytes: u64) -> DynamicConfig {
        DynamicConfig {
            epoch_requests: 1000,
            fast_budget_bytes,
            decay: 0.7,
            hysteresis: 0.5,
            promotion_threshold: 2.0,
        }
    }
}

/// Outcome counters of a dynamic run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MigrationStats {
    /// Keys moved into FastMem.
    pub promotions: u64,
    /// Keys moved out of FastMem.
    pub demotions: u64,
    /// Total simulated nanoseconds spent copying data between tiers.
    pub migration_ns: f64,
    /// Migration attempts re-issued after an injected failure.
    pub retries: u64,
    /// Injected migration failures (each failed attempt counts once).
    pub failures: u64,
    /// Migrations abandoned after exhausting the retry budget — the key
    /// gracefully stays in its current (SlowMem) placement.
    pub fallbacks: u64,
    /// Total simulated nanoseconds spent in backoff delays.
    pub retry_ns: f64,
}

/// A server whose placement is continuously re-tiered at runtime.
pub struct DynamicTieringServer {
    engine: Box<dyn KvEngine>,
    config: DynamicConfig,
    store: StoreKind,
    /// Decayed per-key access score.
    scores: Vec<f64>,
    stats: MigrationStats,
    /// Seeded migration-failure schedule (empty = no injection).
    faults: MigrationFaults,
    /// Retry policy applied when a migration fails.
    backoff: Backoff,
    /// Whether a degradation profile is installed (drives per-request
    /// sim-time pushes into the devices).
    degraded: bool,
}

impl DynamicTieringServer {
    /// Build over the paper testbed; the dataset starts all-SlowMem (the
    /// tierer must discover the hot set, as real systems do).
    pub fn build(
        kind: StoreKind,
        trace: &Trace,
        config: DynamicConfig,
    ) -> Result<DynamicTieringServer, EngineError> {
        Self::build_with(kind, HybridSpec::paper_testbed(), trace, config)
    }

    /// Build with an explicit testbed spec.
    pub fn build_with(
        kind: StoreKind,
        spec: HybridSpec,
        trace: &Trace,
        config: DynamicConfig,
    ) -> Result<DynamicTieringServer, EngineError> {
        assert!(config.epoch_requests > 0, "epoch must be positive");
        assert!((0.0..=1.0).contains(&config.decay), "decay out of [0,1]");
        assert!(config.hysteresis >= 0.0, "hysteresis must be non-negative");
        let mut engine = make_engine(kind, spec);
        for (key, &bytes) in trace.sizes.iter().enumerate() {
            engine.load(key as u64, bytes, MemTier::Slow)?;
        }
        Ok(DynamicTieringServer {
            engine,
            config,
            store: kind,
            scores: vec![0.0; trace.sizes.len()],
            stats: MigrationStats::default(),
            faults: MigrationFaults::default(),
            backoff: Backoff::default(),
            degraded: false,
        })
    }

    /// Migration statistics of the last run.
    pub fn migration_stats(&self) -> MigrationStats {
        self.stats
    }

    /// Install a fault plan: device degradation windows plus the seeded
    /// migration-failure schedule and its retry policy.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let profile = plan.degradation_profile();
        self.degraded = !profile.is_empty();
        self.engine
            .memory_mut()
            .set_degradation(if profile.is_empty() {
                None
            } else {
                Some(profile)
            });
        self.faults = plan.migration_faults();
        self.backoff = plan.backoff;
    }

    /// Re-tier: fill the budget with the top-density keys (residents
    /// enjoy the hysteresis bonus); return the simulated migration cost,
    /// including any backoff delays spent retrying injected failures.
    /// `now_ns` anchors the failure schedule to simulated time.
    fn retier(&mut self, now_ns: u128) -> f64 {
        // Density order over scored keys, hysteresis-boosted residents.
        let density = |engine: &dyn KvEngine, scores: &[f64], hysteresis: f64, key: u64| -> f64 {
            let base = scores[key as usize] / engine.value_bytes(key).unwrap_or(1).max(1) as f64;
            if engine.placement_of(key) == Some(MemTier::Fast) {
                base * (1.0 + hysteresis)
            } else {
                base
            }
        };
        let mut order: Vec<u64> = (0..self.scores.len() as u64).collect();
        order.sort_by(|&a, &b| {
            let sa = density(
                self.engine.as_ref(),
                &self.scores,
                self.config.hysteresis,
                a,
            );
            let sb = density(
                self.engine.as_ref(),
                &self.scores,
                self.config.hysteresis,
                b,
            );
            sb.total_cmp(&sa).then(a.cmp(&b))
        });
        // Desired FastMem set under the budget.
        let mut budget = self.config.fast_budget_bytes;
        let mut want_fast = vec![false; self.scores.len()];
        for &key in &order {
            let score = self.scores[key as usize];
            if score <= 0.0 {
                break;
            }
            let resident = self.engine.placement_of(key) == Some(MemTier::Fast);
            if !resident && score < self.config.promotion_threshold {
                continue;
            }
            let bytes = self.engine.value_bytes(key).unwrap_or(0);
            if bytes <= budget {
                budget -= bytes;
                want_fast[key as usize] = true;
            }
        }
        // Apply: demote first (to free capacity), then promote. The
        // engine's migrate is unmetered, so charge the copy cost by the
        // memory system's own arithmetic: read source + write target.
        // Injected failures drive a capped-exponential retry loop; a key
        // that exhausts the budget gracefully keeps its current placement
        // (for promotions, that is the SlowMem fallback) and only the
        // backoff delays are charged.
        let mut cost = 0.0;
        let spec = self.engine.memory().spec().clone();
        let apply = |engine: &mut dyn KvEngine,
                     stats: &mut MigrationStats,
                     faults: &MigrationFaults,
                     backoff: &Backoff,
                     key: u64,
                     target: MemTier|
         -> f64 {
            let bytes = engine.value_bytes(key).unwrap_or(0);
            let mut delay = 0.0f64;
            let mut attempt = 0u32;
            loop {
                // Delays push the attempt forward in simulated time, so a
                // failure window can expire mid-backoff.
                let at = now_ns + delay as u128;
                if !faults.is_empty() && faults.fails(at, key, attempt) {
                    stats.failures += 1;
                    if attempt >= backoff.max_retries {
                        stats.fallbacks += 1;
                        stats.retry_ns += delay;
                        return delay;
                    }
                    delay += backoff.delay_ns(attempt);
                    stats.retries += 1;
                    attempt += 1;
                    continue;
                }
                stats.retry_ns += delay;
                if engine.migrate(key, target).is_err() {
                    return delay;
                }
                match target {
                    MemTier::Fast => stats.promotions += 1,
                    MemTier::Slow => stats.demotions += 1,
                }
                let (src, dst) = match target {
                    MemTier::Fast => (&spec.slow, &spec.fast),
                    MemTier::Slow => (&spec.fast, &spec.slow),
                };
                return delay
                    + src.access_ns(hybridmem::AccessKind::Read, bytes)
                    + dst.access_ns(hybridmem::AccessKind::Write, bytes);
            }
        };
        for key in 0..self.scores.len() as u64 {
            let current = self.engine.placement_of(key);
            if current == Some(MemTier::Fast) && !want_fast[key as usize] {
                cost += apply(
                    self.engine.as_mut(),
                    &mut self.stats,
                    &self.faults,
                    &self.backoff,
                    key,
                    MemTier::Slow,
                );
            }
        }
        for key in 0..self.scores.len() as u64 {
            let current = self.engine.placement_of(key);
            if current == Some(MemTier::Slow) && want_fast[key as usize] {
                cost += apply(
                    self.engine.as_mut(),
                    &mut self.stats,
                    &self.faults,
                    &self.backoff,
                    key,
                    MemTier::Fast,
                );
            }
        }
        // Decay the history.
        for s in &mut self.scores {
            *s *= self.config.decay;
        }
        self.stats.migration_ns += cost;
        cost
    }

    /// Execute the trace with periodic re-tiering; migration time is
    /// part of the measured runtime.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        self.run_instrumented(trace, None)
    }

    /// [`Self::run`] with telemetry: one snapshot every `epoch_len`
    /// requests (0 = whole run), recording per-request service times,
    /// tier hits, and every re-tiering decision's migration events
    /// (`kv.migration.promotions` / `demotions` counters and the
    /// simulated copy cost as the `kv.migration.cost_ns` gauge, one
    /// observation per re-tiering pass).
    pub fn run_telemetered(
        &mut self,
        trace: &Trace,
        epoch_len: u64,
    ) -> (RunReport, Vec<mnemo_telemetry::Snapshot>) {
        let mut log = mnemo_telemetry::EpochLog::new(epoch_len);
        let report = self.run_instrumented(trace, Some(&mut log));
        (report, log.finish())
    }

    fn run_instrumented(
        &mut self,
        trace: &Trace,
        mut telemetry: Option<&mut mnemo_telemetry::EpochLog>,
    ) -> RunReport {
        self.engine.reset_measurement_state();
        self.stats = MigrationStats::default();
        let mut clock = SimClock::new();
        let mut report = RunReport {
            store: self.store,
            workload: format!("{} [dynamic]", trace.name),
            requests: trace.len(),
            runtime_ns: 0.0,
            reads: 0,
            writes: 0,
            read_ns_total: 0.0,
            write_ns_total: 0.0,
            read_hist: Histogram::new(),
            write_hist: Histogram::new(),
            samples: Vec::with_capacity(trace.len()),
        };
        for (i, r) in trace.requests.iter().enumerate() {
            if i > 0 && i % self.config.epoch_requests == 0 {
                let before = self.stats;
                let cost = self.retier(clock.now_ns());
                clock.advance(cost);
                if let Some(log) = telemetry.as_deref_mut() {
                    let tel = log.recorder();
                    tel.count("kv.migration.retierings", 1);
                    tel.count(
                        "kv.migration.promotions",
                        self.stats.promotions - before.promotions,
                    );
                    tel.count(
                        "kv.migration.demotions",
                        self.stats.demotions - before.demotions,
                    );
                    tel.gauge("kv.migration.cost_ns", cost);
                    tel.count("kv.migration.retries", self.stats.retries - before.retries);
                    tel.count(
                        "kv.fault.migration_failures",
                        self.stats.failures - before.failures,
                    );
                    tel.count(
                        "kv.migration.fallbacks",
                        self.stats.fallbacks - before.fallbacks,
                    );
                    if self.stats.retry_ns > before.retry_ns {
                        tel.gauge(
                            "kv.migration.retry_ns",
                            self.stats.retry_ns - before.retry_ns,
                        );
                    }
                }
            }
            if self.degraded {
                self.engine.memory_mut().set_now_ns(clock.now_ns());
            }
            self.scores[r.key as usize] += 1.0;
            let tier = telemetry
                .as_ref()
                .and_then(|_| self.engine.placement_of(r.key));
            let ns = match r.op {
                Op::Read => self.engine.get(r.key),
                Op::Update => self.engine.put(r.key),
            }
            // mnemo-lint: allow(R001, "the dynamic server loads every key of the trace before run, so requests cannot hit an unloaded key")
            .expect("trace references unloaded key");
            clock.advance(ns);
            if let Some(log) = telemetry.as_deref_mut() {
                let tel = log.recorder();
                tel.count("kv.requests", 1);
                tel.observe("kv.request.service_ns", ns);
                match tier {
                    Some(MemTier::Fast) => tel.count("kv.tier.fast_hits", 1),
                    Some(MemTier::Slow) => tel.count("kv.tier.slow_hits", 1),
                    None => {}
                }
                log.tick();
            }
            match r.op {
                Op::Read => {
                    report.reads += 1;
                    report.read_ns_total += ns;
                    report.read_hist.record(ns);
                }
                Op::Update => {
                    report.writes += 1;
                    report.write_ns_total += ns;
                    report.write_hist.record(ns);
                }
            }
            report.samples.push(RequestSample {
                key: r.key,
                op: r.op,
                service_ns: ns,
            });
        }
        report.runtime_ns = clock.now_ns() as f64;
        report
    }

    /// Bytes currently placed in FastMem.
    pub fn fast_bytes(&self) -> u64 {
        self.engine.bytes_in(MemTier::Fast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Placement, Server};
    use ycsb::WorkloadSpec;

    fn budget_for(trace: &Trace) -> u64 {
        trace.dataset_bytes() / 5
    }

    /// Paper-proportioned testbed (the full 12 MB LLC would cache these
    /// reduced-scale datasets outright and mask placement effects).
    fn scaled_spec(trace: &Trace) -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.cache.capacity_bytes = (trace.dataset_bytes() / 85).max(1 << 16);
        spec
    }

    #[test]
    fn dynamic_respects_budget() {
        let t = WorkloadSpec::trending().scaled(200, 4_000).generate(3);
        let mut server =
            DynamicTieringServer::build(StoreKind::Redis, &t, DynamicConfig::new(budget_for(&t)))
                .unwrap();
        let _ = server.run(&t);
        // Engine-side overhead makes bytes slightly exceed the logical
        // budget; allow the header slack.
        assert!(
            server.fast_bytes() <= budget_for(&t) + 64 * t.keys(),
            "fast bytes {} exceed budget {}",
            server.fast_bytes(),
            budget_for(&t)
        );
        assert!(server.migration_stats().promotions > 0);
    }

    #[test]
    fn dynamic_beats_static_on_sliding_patterns() {
        // News feed: the hot window slides, so a static placement (even a
        // clairvoyant one from full-trace counts) decays, while the
        // dynamic tierer follows the window.
        let t = WorkloadSpec::news_feed().scaled(300, 12_000).generate(7);
        let budget = budget_for(&t);
        let mut dynamic = DynamicTieringServer::build_with(
            StoreKind::Redis,
            scaled_spec(&t),
            &t,
            DynamicConfig {
                epoch_requests: 500,
                decay: 0.3,
                ..DynamicConfig::new(budget)
            },
        )
        .unwrap();
        let dyn_report = dynamic.run(&t);

        // Static oracle: hottest keys by full-trace counts, same budget.
        let counts = t.key_counts();
        let mut order: Vec<u64> = (0..t.keys()).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(counts[k as usize].0 + counts[k as usize].1));
        let mut used = 0u64;
        let fast: hybridmem::DetHashSet<u64> = order
            .iter()
            .copied()
            .take_while(|&k| {
                used += t.sizes[k as usize];
                used <= budget
            })
            .collect();
        let static_report = Server::build_with(
            StoreKind::Redis,
            scaled_spec(&t),
            hybridmem::clock::NoiseConfig::disabled(),
            &t,
            Placement::FastSet(fast),
        )
        .unwrap()
        .run(&t);

        assert!(
            dyn_report.throughput_ops_s() > static_report.throughput_ops_s(),
            "dynamic {} must beat static {} on news feed",
            dyn_report.throughput_ops_s(),
            static_report.throughput_ops_s()
        );
    }

    #[test]
    fn static_suffices_on_stable_patterns() {
        // Trending: the hot set never moves; static placement (Mnemo's
        // product) matches or beats the migrating tierer, which pays
        // migration traffic for nothing.
        let t = WorkloadSpec::trending().scaled(300, 12_000).generate(7);
        let budget = budget_for(&t);
        let mut dynamic = DynamicTieringServer::build_with(
            StoreKind::Redis,
            scaled_spec(&t),
            &t,
            DynamicConfig {
                epoch_requests: 500,
                decay: 0.3,
                ..DynamicConfig::new(budget)
            },
        )
        .unwrap();
        let dyn_report = dynamic.run(&t);

        let counts = t.key_counts();
        let mut order: Vec<u64> = (0..t.keys()).collect();
        order.sort_by_key(|&k| std::cmp::Reverse(counts[k as usize].0 + counts[k as usize].1));
        let mut used = 0u64;
        let fast: hybridmem::DetHashSet<u64> = order
            .iter()
            .copied()
            .take_while(|&k| {
                used += t.sizes[k as usize];
                used <= budget
            })
            .collect();
        let static_report = Server::build_with(
            StoreKind::Redis,
            scaled_spec(&t),
            hybridmem::clock::NoiseConfig::disabled(),
            &t,
            Placement::FastSet(fast),
        )
        .unwrap()
        .run(&t);

        assert!(
            static_report.throughput_ops_s() >= dyn_report.throughput_ops_s() * 0.98,
            "static {} should match dynamic {} on trending",
            static_report.throughput_ops_s(),
            dyn_report.throughput_ops_s()
        );
    }

    #[test]
    fn migration_costs_are_charged() {
        let t = WorkloadSpec::timeline().scaled(200, 6_000).generate(2);
        let mut server = DynamicTieringServer::build(
            StoreKind::Redis,
            &t,
            DynamicConfig {
                epoch_requests: 200,
                ..DynamicConfig::new(budget_for(&t))
            },
        )
        .unwrap();
        let report = server.run(&t);
        let stats = server.migration_stats();
        assert!(stats.migration_ns > 0.0);
        // Runtime includes migration time on top of request service time.
        let service: f64 = report.samples.iter().map(|s| s.service_ns).sum();
        assert!(
            report.runtime_ns > service,
            "migration must inflate runtime"
        );
    }

    #[test]
    fn telemetered_run_records_migration_events() {
        let t = WorkloadSpec::timeline().scaled(200, 6_000).generate(2);
        let mut server = DynamicTieringServer::build(
            StoreKind::Redis,
            &t,
            DynamicConfig {
                epoch_requests: 200,
                ..DynamicConfig::new(budget_for(&t))
            },
        )
        .unwrap();
        let (report, snaps) = server.run_telemetered(&t, 1_000);
        let stats = server.migration_stats();
        let sum = |name: &str| snaps.iter().map(|s| s.counter(name)).sum::<u64>();
        assert_eq!(sum("kv.requests"), report.requests as u64);
        assert_eq!(sum("kv.migration.promotions"), stats.promotions);
        assert_eq!(sum("kv.migration.demotions"), stats.demotions);
        let cost: f64 = snaps
            .iter()
            .filter_map(|s| s.gauge("kv.migration.cost_ns"))
            .map(|g| g.sum)
            .sum();
        assert!((cost - stats.migration_ns).abs() < 1e-6 * stats.migration_ns.max(1.0));
        assert!(sum("kv.migration.retierings") > 0);
    }

    #[test]
    fn injected_migration_failures_fall_back_gracefully() {
        use mnemo_faults::FaultEvent;
        let t = WorkloadSpec::timeline().scaled(200, 6_000).generate(2);
        let cfg = DynamicConfig {
            epoch_requests: 200,
            ..DynamicConfig::new(budget_for(&t))
        };
        let mut server = DynamicTieringServer::build(StoreKind::Redis, &t, cfg).unwrap();
        server.install_fault_plan(&FaultPlan::new(9).with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: u128::MAX,
            probability: 1.0,
        }));
        let report = server.run(&t);
        let stats = server.migration_stats();
        assert_eq!(stats.promotions, 0, "every migration is injected to fail");
        assert_eq!(stats.demotions, 0);
        assert!(stats.fallbacks > 0, "abandoned migrations must be counted");
        let cap = u64::from(Backoff::default().max_retries);
        assert_eq!(
            stats.retries,
            stats.fallbacks * cap,
            "retry count is bounded by the backoff cap"
        );
        assert_eq!(stats.failures, stats.fallbacks * (cap + 1));
        assert!(stats.retry_ns > 0.0, "backoff delays are charged");
        assert_eq!(server.fast_bytes(), 0, "keys gracefully stay in SlowMem");
        let service: f64 = report.samples.iter().map(|s| s.service_ns).sum();
        assert!(
            report.runtime_ns > service + stats.retry_ns * 0.99,
            "retry delays inflate the measured runtime"
        );
    }

    #[test]
    fn faulted_dynamic_runs_are_deterministic_and_counted() {
        use mnemo_faults::FaultEvent;
        let t = WorkloadSpec::timeline().scaled(200, 6_000).generate(2);
        let plan = FaultPlan::new(7).with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: u128::MAX,
            probability: 0.5,
        });
        let run = || {
            let cfg = DynamicConfig {
                epoch_requests: 200,
                ..DynamicConfig::new(budget_for(&t))
            };
            let mut server = DynamicTieringServer::build(StoreKind::Redis, &t, cfg).unwrap();
            server.install_fault_plan(&plan);
            let out = server.run_telemetered(&t, 0);
            (out, server.migration_stats())
        };
        let ((r1, snaps), s1) = run();
        let ((r2, _), s2) = run();
        assert_eq!(r1.runtime_ns.to_bits(), r2.runtime_ns.to_bits());
        assert_eq!(s1, s2, "seeded injection must be reproducible");
        assert!(s1.retries > 0, "p=0.5 must fail some attempts");
        assert!(s1.promotions > 0, "p=0.5 must let some retries through");
        let sum = |name: &str| snaps.iter().map(|s| s.counter(name)).sum::<u64>();
        assert_eq!(sum("kv.migration.retries"), s1.retries);
        assert_eq!(sum("kv.fault.migration_failures"), s1.failures);
        assert_eq!(sum("kv.migration.fallbacks"), s1.fallbacks);
        let retry_ns: f64 = snaps
            .iter()
            .filter_map(|s| s.gauge("kv.migration.retry_ns"))
            .map(|g| g.sum)
            .sum();
        assert!((retry_ns - s1.retry_ns).abs() < 1e-6 * s1.retry_ns.max(1.0));
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epoch_rejected() {
        let t = WorkloadSpec::trending().scaled(10, 10).generate(0);
        let _ = DynamicTieringServer::build(
            StoreKind::Redis,
            &t,
            DynamicConfig {
                epoch_requests: 0,
                ..DynamicConfig::new(100)
            },
        );
    }
}
