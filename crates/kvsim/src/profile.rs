//! Per-engine cost profiles.
//!
//! Each simulated store is characterised by a handful of constants that
//! determine how exposed its request path is to memory-tier latency and
//! bandwidth. The constants are calibrated so the *relative* behaviours
//! of §V-A hold:
//!
//! * **Redis** — single-threaded event loop, cheap protocol, a dict
//!   pointer-chase per op, values copied once. FastMem-only throughput
//!   lands ~40% above SlowMem-only for thumbnail workloads (Fig. 5a).
//! * **Memcached** — heavyweight client/protocol path whose fixed per-op
//!   cost masks memory time; "barely gets influenced" and can run fully
//!   on SlowMem inside a 10% SLO (Fig. 9).
//! * **DynamoDB (local)** — Java object graphs and (de)serialisation
//!   amplify every value access several-fold, plus a deep index walk; "the
//!   most impacted when executing over SlowMem" (Fig. 8b).

use serde::{Deserialize, Serialize};

/// The three stores the paper evaluates, plus a storage-engaged negative
/// control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoreKind {
    /// Redis-like: single-threaded dict server.
    Redis,
    /// Memcached-like: slab-allocated, protocol-heavy server.
    Memcached,
    /// DynamoDB-local-like: object-graph-heavy document store.
    Dynamo,
    /// RocksDB-like: storage-engaged LSM store — *outside* Mnemo's target
    /// class (§V "Target applications"); used to demonstrate where the
    /// estimation model breaks.
    Rocks,
}

impl StoreKind {
    /// The paper's three stores, in its presentation order (the
    /// storage-engaged `Rocks` negative control is deliberately not
    /// part of the paper suite).
    pub const ALL: [StoreKind; 3] = [StoreKind::Redis, StoreKind::Dynamo, StoreKind::Memcached];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Redis => "Redis",
            StoreKind::Memcached => "Memcached",
            StoreKind::Dynamo => "DynamoDB",
            StoreKind::Rocks => "RocksDB-like",
        }
    }

    /// The calibrated profile for this store.
    pub fn profile(self) -> EngineProfile {
        match self {
            StoreKind::Redis => EngineProfile {
                kind: self,
                fixed_op_ns: 110_000.0,
                index_touches: 2,
                touch_bytes: 64,
                read_amplification: 1.0,
                write_amplification: 1.0,
            },
            StoreKind::Memcached => EngineProfile {
                kind: self,
                fixed_op_ns: 500_000.0,
                index_touches: 2,
                touch_bytes: 64,
                read_amplification: 1.0,
                write_amplification: 1.0,
            },
            StoreKind::Dynamo => EngineProfile {
                kind: self,
                fixed_op_ns: 150_000.0,
                index_touches: 10,
                touch_bytes: 64,
                read_amplification: 3.0,
                write_amplification: 2.0,
            },
            StoreKind::Rocks => EngineProfile {
                kind: self,
                fixed_op_ns: 120_000.0,
                index_touches: 4,
                touch_bytes: 64,
                read_amplification: 1.0,
                write_amplification: 1.0,
            },
        }
    }
}

impl std::fmt::Display for StoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The cost constants of one engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Which store this profiles.
    pub kind: StoreKind,
    /// Fixed service cost per operation in nanoseconds: client library,
    /// loopback network stack, protocol parsing, event loop — everything
    /// that does not touch the value bytes. (The paper's baselines fold
    /// exactly these costs into the measured read/write times.)
    pub fixed_op_ns: f64,
    /// Dependent metadata pointer-chases per operation (dict entries,
    /// slab headers, index nodes), each in the key's tier.
    pub index_touches: u32,
    /// Bytes per metadata touch.
    pub touch_bytes: u64,
    /// How many times the value bytes cross memory on a read (1 = one
    /// copy; >1 models deserialisation/marshalling passes).
    pub read_amplification: f64,
    /// Same for writes.
    pub write_amplification: f64,
}

impl EngineProfile {
    /// A free-form profile for experiments outside the three presets.
    pub fn custom(
        fixed_op_ns: f64,
        index_touches: u32,
        read_amplification: f64,
        write_amplification: f64,
    ) -> EngineProfile {
        EngineProfile {
            kind: StoreKind::Redis,
            fixed_op_ns,
            index_touches,
            touch_bytes: 64,
            read_amplification,
            write_amplification,
        }
    }

    /// First-order read service time of this profile with the value in
    /// the given tier (no cache): the calibration target quantity.
    pub fn read_service_ns(&self, tier: &hybridmem::TierSpec, bytes: u64) -> f64 {
        use hybridmem::AccessKind;
        self.fixed_op_ns
            + self.index_touches as f64 * tier.access_ns(AccessKind::Read, self.touch_bytes)
            + self.read_amplification * tier.access_ns(AccessKind::Read, bytes)
    }

    /// Calibrate the fixed per-op cost so that the profile's read path
    /// shows exactly `target_slowdown` (e.g. 1.40 for "SlowMem reads are
    /// 40% slower end to end") for records of `bytes` on the given
    /// hybrid spec. This is how the three presets' constants were chosen
    /// from the paper's observed sensitivities — making the calibration
    /// executable keeps it honest and repeatable.
    ///
    /// Returns `None` when the target is unattainable: the slowdown with
    /// zero fixed cost is the maximum possible; targets at or below 1.0
    /// are meaningless.
    pub fn calibrate_fixed_cost(
        &self,
        spec: &hybridmem::HybridSpec,
        bytes: u64,
        target_slowdown: f64,
    ) -> Option<f64> {
        use hybridmem::AccessKind;
        if target_slowdown <= 1.0 {
            return None;
        }
        // slowdown = (X + S) / (X + F)  =>  X = (S - target*F) / (target - 1)
        let mem = |tier: &hybridmem::TierSpec| {
            self.index_touches as f64 * tier.access_ns(AccessKind::Read, self.touch_bytes)
                + self.read_amplification * tier.access_ns(AccessKind::Read, bytes)
        };
        let fast = mem(&spec.fast);
        let slow = mem(&spec.slow);
        let x = (slow - target_slowdown * fast) / (target_slowdown - 1.0);
        if x.is_finite() && x >= 0.0 {
            Some(x)
        } else {
            None
        }
    }

    /// A copy of this profile with its fixed cost calibrated (see
    /// [`Self::calibrate_fixed_cost`]).
    pub fn calibrated(
        mut self,
        spec: &hybridmem::HybridSpec,
        bytes: u64,
        target_slowdown: f64,
    ) -> Option<EngineProfile> {
        self.fixed_op_ns = self.calibrate_fixed_cost(spec, bytes, target_slowdown)?;
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::{AccessKind, TierSpec};

    /// First-order service time of a read of `bytes` with everything in
    /// one tier (no cache): the quantity the calibration targets.
    fn read_ns(p: &EngineProfile, spec: &TierSpec, bytes: u64) -> f64 {
        p.fixed_op_ns
            + p.index_touches as f64 * spec.access_ns(AccessKind::Read, p.touch_bytes)
            + p.read_amplification * spec.access_ns(AccessKind::Read, bytes)
    }

    #[test]
    fn sensitivity_ordering_matches_section5() {
        let fast = TierSpec::paper_fastmem();
        let slow = TierSpec::paper_slowmem();
        let bytes = 100 * 1024; // thumbnail
        let slowdown = |kind: StoreKind| {
            let p = kind.profile();
            read_ns(&p, &slow, bytes) / read_ns(&p, &fast, bytes)
        };
        let redis = slowdown(StoreKind::Redis);
        let memcached = slowdown(StoreKind::Memcached);
        let dynamo = slowdown(StoreKind::Dynamo);
        assert!(
            dynamo > redis && redis > memcached,
            "ordering: dynamo {dynamo:.2} > redis {redis:.2} > memcached {memcached:.2}"
        );
        // Redis: "up to 40%" throughput gap between tiers (Fig. 5a).
        assert!((1.30..=1.55).contains(&redis), "redis slowdown {redis:.3}");
        // Memcached: inside a ~10% SLO even fully on SlowMem (Fig. 9).
        assert!(memcached < 1.12, "memcached slowdown {memcached:.3}");
        // DynamoDB: severely impacted.
        assert!(dynamo > 1.6, "dynamo slowdown {dynamo:.3}");
    }

    #[test]
    fn profiles_are_positive_and_finite() {
        for kind in StoreKind::ALL {
            let p = kind.profile();
            assert!(p.fixed_op_ns > 0.0);
            assert!(p.read_amplification >= 1.0);
            assert!(p.write_amplification >= 1.0);
            assert!(p.touch_bytes > 0);
        }
    }

    #[test]
    fn names() {
        assert_eq!(StoreKind::Redis.to_string(), "Redis");
        assert_eq!(StoreKind::Dynamo.name(), "DynamoDB");
    }

    #[test]
    fn calibration_recovers_preset_fixed_cost() {
        // Calibrating the Redis profile to its own observed slowdown at
        // thumbnail size must reproduce its fixed cost.
        let spec = hybridmem::HybridSpec::paper_testbed();
        let profile = StoreKind::Redis.profile();
        let bytes = 100 * 1024;
        let slowdown =
            profile.read_service_ns(&spec.slow, bytes) / profile.read_service_ns(&spec.fast, bytes);
        let x = profile
            .calibrate_fixed_cost(&spec, bytes, slowdown)
            .unwrap();
        assert!(
            (x - profile.fixed_op_ns).abs() / profile.fixed_op_ns < 1e-9,
            "recovered {x} vs preset {}",
            profile.fixed_op_ns
        );
    }

    #[test]
    fn calibration_hits_arbitrary_targets() {
        let spec = hybridmem::HybridSpec::paper_testbed();
        for target in [1.1, 1.4, 2.0] {
            let p = StoreKind::Redis
                .profile()
                .calibrated(&spec, 100 * 1024, target)
                .unwrap();
            let got = p.read_service_ns(&spec.slow, 100 * 1024)
                / p.read_service_ns(&spec.fast, 100 * 1024);
            assert!((got - target).abs() < 1e-9, "target {target}, got {got}");
        }
    }

    #[test]
    fn unattainable_targets_are_none() {
        let spec = hybridmem::HybridSpec::paper_testbed();
        let profile = StoreKind::Redis.profile();
        assert!(profile.calibrate_fixed_cost(&spec, 1024, 1.0).is_none());
        assert!(profile.calibrate_fixed_cost(&spec, 1024, 0.5).is_none());
        // Beyond the zero-fixed-cost maximum slowdown.
        let max = {
            let p = EngineProfile {
                fixed_op_ns: 0.0,
                ..profile
            };
            p.read_service_ns(&spec.slow, 1024) / p.read_service_ns(&spec.fast, 1024)
        };
        assert!(profile
            .calibrate_fixed_cost(&spec, 1024, max * 1.5)
            .is_none());
    }
}
