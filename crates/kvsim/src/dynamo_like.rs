//! DynamoDB-local-like engine: object-graph-heavy document store.
//!
//! The paper observes that "DynamoDB is severely impacted when allocating
//! data in SlowMem" (§V-A). Local DynamoDB is a JVM application storing
//! documents as attribute maps: every request walks a deep index, then
//! materialises the item as Java objects and (de)serialises it to JSON —
//! the value bytes cross memory several times. This engine models exactly
//! that: a depth-scaled index walk plus 3x read / 2x write amplification
//! over a 1.5x-inflated stored footprint.

use crate::engine::{EngineCore, EngineError, KvEngine};
use crate::profile::{EngineProfile, StoreKind};
use hybridmem::{AccessKind, HybridMemory, HybridSpec, MemTier};

/// Fixed per-item metadata footprint (attribute map skeleton, bytes).
const ITEM_OVERHEAD_BYTES: u64 = 128;
/// JVM object-representation inflation of the stored value bytes.
const STORAGE_INFLATION: f64 = 1.5;

/// DynamoDB-local-like key-value engine.
pub struct DynamoLike {
    core: EngineCore,
}

impl DynamoLike {
    /// Build over a fresh memory system.
    pub fn new(spec: HybridSpec) -> DynamoLike {
        DynamoLike::with_profile(StoreKind::Dynamo.profile(), spec)
    }

    /// Build with a custom profile (ablations).
    pub fn with_profile(profile: EngineProfile, spec: HybridSpec) -> DynamoLike {
        DynamoLike {
            core: EngineCore::new(profile, HybridMemory::new(spec)),
        }
    }

    /// Stored footprint of a value: inflated + fixed item overhead.
    pub fn stored_bytes(value_bytes: u64) -> u64 {
        (value_bytes as f64 * STORAGE_INFLATION) as u64 + ITEM_OVERHEAD_BYTES
    }

    /// Index-walk depth: the configured touches, deepened logarithmically
    /// with table size (a B-tree-ish index, unlike Redis' flat dict).
    fn index_depth(&self) -> u32 {
        let base = self.core.profile().index_touches;
        let n = self.core.key_count().max(2) as f64;
        // +1 touch per 4x growth beyond 1k items.
        let extra = ((n / 1000.0).max(1.0).log2() / 2.0) as u32;
        base + extra
    }
}

impl KvEngine for DynamoLike {
    fn profile(&self) -> &EngineProfile {
        self.core.profile()
    }

    fn load(&mut self, key: u64, bytes: u64, tier: MemTier) -> Result<(), EngineError> {
        self.core.load(key, bytes, Self::stored_bytes(bytes), tier)
    }

    fn get(&mut self, key: u64) -> Result<f64, EngineError> {
        let depth = self.index_depth();
        let op = self.core.charge_op(key, AccessKind::Read, depth)?;
        Ok(self.core.profile().fixed_op_ns + op.index_ns + op.value_ns)
    }

    fn put(&mut self, key: u64) -> Result<f64, EngineError> {
        let depth = self.index_depth();
        let op = self.core.charge_op(key, AccessKind::Write, depth)?;
        Ok(self.core.profile().fixed_op_ns + op.index_ns + op.value_ns)
    }

    fn delete(&mut self, key: u64) -> Result<f64, EngineError> {
        let depth = self.index_depth();
        let index = self.core.index_walk(key, depth)?;
        self.core.remove(key)?;
        Ok(self.core.profile().fixed_op_ns + index)
    }

    fn placement_of(&self, key: u64) -> Option<MemTier> {
        self.core.placement_of(key)
    }

    fn migrate(&mut self, key: u64, tier: MemTier) -> Result<(), EngineError> {
        self.core.migrate(key, tier)
    }

    fn key_count(&self) -> usize {
        self.core.key_count()
    }

    fn bytes_in(&self, tier: MemTier) -> u64 {
        self.core.bytes_in(tier)
    }

    fn value_bytes(&self, key: u64) -> Option<u64> {
        self.core.value_bytes(key)
    }

    fn reset_measurement_state(&mut self) {
        self.core.reset_measurement_state();
    }

    fn memory(&self) -> &HybridMemory {
        self.core.memory()
    }

    fn memory_mut(&mut self) -> &mut HybridMemory {
        self.core.memory_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redis_like::RedisLike;

    fn small_spec() -> HybridSpec {
        let mut spec = HybridSpec::paper_testbed();
        spec.fast_capacity = 1 << 26;
        spec.slow_capacity = 1 << 26;
        spec
    }

    #[test]
    fn storage_is_inflated() {
        assert_eq!(DynamoLike::stored_bytes(1000), 1628);
        let mut e = DynamoLike::new(small_spec());
        e.load(1, 1000, MemTier::Fast).unwrap();
        assert_eq!(e.bytes_in(MemTier::Fast), 1628);
        assert_eq!(e.value_bytes(1), Some(1000));
    }

    #[test]
    fn dynamo_most_sensitive_of_all_engines() {
        let slowdown_dynamo = {
            let mut e = DynamoLike::new(small_spec());
            e.load(1, 100_000, MemTier::Fast).unwrap();
            e.load(2, 100_000, MemTier::Slow).unwrap();
            e.get(1).unwrap();
            e.get(2).unwrap();
            e.reset_measurement_state();
            e.get(2).unwrap() / e.get(1).unwrap()
        };
        let slowdown_redis = {
            let mut e = RedisLike::new(small_spec());
            e.load(1, 100_000, MemTier::Fast).unwrap();
            e.load(2, 100_000, MemTier::Slow).unwrap();
            e.get(1).unwrap();
            e.get(2).unwrap();
            e.reset_measurement_state();
            e.get(2).unwrap() / e.get(1).unwrap()
        };
        assert!(
            slowdown_dynamo > slowdown_redis,
            "dynamo {slowdown_dynamo:.2} must exceed redis {slowdown_redis:.2}"
        );
        assert!(
            slowdown_dynamo > 1.5,
            "dynamo slowdown {slowdown_dynamo:.2}"
        );
    }

    #[test]
    fn index_deepens_with_table_size() {
        let mut small = DynamoLike::new(small_spec());
        small.load(0, 64, MemTier::Fast).unwrap();
        let shallow = small.index_depth();
        let mut big = DynamoLike::new(small_spec());
        for k in 0..50_000 {
            big.load(k, 64, MemTier::Fast).unwrap();
        }
        assert!(big.index_depth() > shallow);
    }

    #[test]
    fn delete_removes_key() {
        let mut e = DynamoLike::new(small_spec());
        e.load(5, 500, MemTier::Slow).unwrap();
        e.delete(5).unwrap();
        assert_eq!(e.key_count(), 0);
        assert!(e.get(5).is_err());
    }
}
