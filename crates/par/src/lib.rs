//! Deterministic bounded fork/join parallelism for Mnemo's sweeps.
//!
//! Every cost-vs-performance curve and every paper-figure sweep is
//! embarrassingly parallel across capacity splits, SLO points and
//! workload mixes — but naive `spawn`-per-job concurrency oversubscribes
//! wide sweeps and makes results depend on scheduling. This crate is the
//! one place the workspace forks: a small self-scheduling pool built on
//! the vendored crossbeam shim with three guarantees:
//!
//! * **bounded workers** — at most [`Pool::workers`] OS threads per
//!   parallel region, regardless of how many items a sweep has;
//! * **chunked self-scheduling** — workers atomically claim contiguous
//!   index chunks (the classic work-stealing deque degenerates to a
//!   shared counter for a fork/join region with no nested spawns), so
//!   a slow item never stalls the whole sweep behind one thread;
//! * **deterministic reduction** — results are reassembled in item-index
//!   order and every item is computed by the same pure closure, so the
//!   output of `map(n, f)` is **bit-identical** for every worker count,
//!   including the sequential `workers == 1` path. Callers that reduce
//!   (sum, merge) do so over the returned, index-ordered `Vec`.
//!
//! Worker-count resolution, strongest first: [`set_jobs`] (the CLI and
//! experiment harness `--jobs N` flag), the `MNEMO_JOBS` environment
//! variable, then [`std::thread::available_parallelism`].
//!
//! A worker panic is propagated to the caller via
//! [`std::panic::resume_unwind`] once all workers have joined, matching
//! plain-loop semantics.
//!
//! The crate also hosts [`SweepTimer`], the per-stage wall-clock
//! instrumentation the `bench-smoke` CI job reads: stages are recorded
//! with their item counts and emitted as CSV or JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parking_lot::Mutex;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Process-wide worker-count override (0 = unset). Set once at startup
/// from `--jobs`; read by [`Pool::current`].
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Chunks handed out per worker by the auto-chunking [`Pool::map`]: more
/// chunks than workers so an uneven item smooths out, few enough that
/// the claim counter stays cold.
const CHUNKS_PER_WORKER: usize = 4;

/// Auto-chunking floor: below this many items per chunk the per-chunk
/// bookkeeping outweighs cheap per-item work (curve rows, key deltas).
const MIN_CHUNK: usize = 64;

/// Override the worker count for all subsequently created pools (the
/// `--jobs N` flag). `0` clears the override, falling back to
/// `MNEMO_JOBS` / the machine's parallelism.
pub fn set_jobs(jobs: usize) {
    GLOBAL_JOBS.store(jobs, Ordering::SeqCst);
}

/// The worker count a [`Pool::current`] pool will use right now:
/// [`set_jobs`] override, else `MNEMO_JOBS`, else available parallelism.
pub fn effective_jobs() -> usize {
    let explicit = GLOBAL_JOBS.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("MNEMO_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A bounded fork/join pool. Cheap to construct: workers are scoped
/// threads spawned per parallel region and joined before it returns, so
/// a `Pool` is just a worker budget.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with an explicit worker budget (clamped to at least 1).
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The pool configured by `--jobs` / `MNEMO_JOBS` / the host.
    pub fn current() -> Pool {
        Pool::new(effective_jobs())
    }

    /// The worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Map `f` over `0..n` with automatic chunking, returning results in
    /// index order. Output is bit-identical for every worker count.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let chunk = n
            .div_ceil((self.workers * CHUNKS_PER_WORKER).max(1))
            .max(MIN_CHUNK);
        self.map_chunked(n, chunk, f)
    }

    /// Map `f` over a slice (item index + item), auto-chunked.
    pub fn map_slice<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map(items.len(), |i| f(i, &items[i]))
    }

    /// Run `n` *coarse* jobs (chunk size 1): each index is claimed
    /// individually, so expensive, uneven jobs — shard runs, whole
    /// consultations — balance across the bounded workers.
    pub fn run_jobs<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_chunked(n, 1, f)
    }

    /// Map `f` over `0..n` with an explicit chunk size. Workers claim
    /// chunk indices from a shared counter; each chunk's results are
    /// collected and the chunks reassembled in order, so the returned
    /// `Vec` equals the sequential `(0..n).map(f).collect()` exactly.
    pub fn map_chunked<T, F>(&self, n: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        assert!(chunk >= 1, "chunk size must be positive");
        let chunks = n.div_ceil(chunk);
        let workers = self.workers.min(chunks);
        if workers <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(chunks));
        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..workers {
                let (next, parts, f) = (&next, &parts, &f);
                scope.spawn(move |_| loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    let part: Vec<T> = (lo..hi).map(f).collect();
                    parts.lock().push((c, part));
                });
            }
        });
        if let Err(payload) = scope_result {
            panic::resume_unwind(payload);
        }
        let mut parts = parts.into_inner();
        parts.sort_unstable_by_key(|&(c, _)| c);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        out
    }

    /// Run two closures concurrently and return both results — the
    /// two-baseline (all-FastMem / all-SlowMem) measurement shape.
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if self.workers <= 1 {
            return (fa(), fb());
        }
        let scope_result = crossbeam::scope(|scope| {
            let hb = scope.spawn(|_| fb());
            let a = fa();
            (a, hb.join())
        });
        match scope_result {
            Ok((a, Ok(b))) => (a, b),
            Ok((_, Err(payload))) => panic::resume_unwind(payload),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// One timed stage of a sweep.
#[derive(Debug, Clone)]
pub struct StageSample {
    /// Stage name (e.g. `"consult"`, `"panel-a"`).
    pub name: String,
    /// Wall-clock time spent in the stage.
    pub wall: Duration,
    /// Items the stage processed (0 when not meaningful).
    pub items: usize,
}

/// Per-stage wall-clock instrumentation for a sweep, emitted as a
/// CSV/JSON summary so the `bench-smoke` CI job can track speedups and
/// spot perf regressions. Timing output is *diagnostic* — it is written
/// to separate `timing-*` artifacts precisely because wall-clock values
/// are not byte-stable and must stay out of the determinism gate.
///
/// Internally this is a thin façade over a `mnemo-telemetry`
/// [`Recorder`](mnemo_telemetry::Recorder): every stage becomes a
/// wall-domain span, and the legacy `timing-*.csv`/JSON artifacts are
/// rendered by the telemetry exporter, so the workspace has exactly one
/// timing code path. The recorder is exposed so sweeps can attach
/// counters/histograms to the same object and export the full set.
#[derive(Debug)]
pub struct SweepTimer {
    label: String,
    jobs: usize,
    started: Instant,
    recorder: mnemo_telemetry::Recorder,
}

impl SweepTimer {
    /// Start a timer for the named sweep, recording the effective worker
    /// count it runs with.
    pub fn new(label: &str) -> SweepTimer {
        SweepTimer {
            label: label.to_string(),
            jobs: effective_jobs(),
            // mnemo-lint: allow(D001, "SweepTimer is the diagnostic wall-clock; its timing-* artifacts are excluded from the determinism gates")
            started: Instant::now(),
            recorder: mnemo_telemetry::Recorder::new(),
        }
    }

    /// The sweep label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Worker count recorded at construction.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `f` as a named stage over `items` items, recording its
    /// wall-clock time.
    pub fn stage<T>(&mut self, name: &str, items: usize, f: impl FnOnce() -> T) -> T {
        self.recorder.time_wall(name, items as u64, f)
    }

    /// Record an externally timed stage.
    pub fn record(&mut self, name: &str, items: usize, wall: Duration) {
        self.recorder.record_wall_span(name, items as u64, wall);
    }

    /// The underlying telemetry recorder, for sweeps that record more
    /// than stage timings (counters, sim-domain histograms).
    pub fn recorder(&mut self) -> &mut mnemo_telemetry::Recorder {
        &mut self.recorder
    }

    /// The recorded stages, in execution order.
    pub fn stages(&self) -> Vec<StageSample> {
        self.recorder
            .spans()
            .iter()
            .map(|s| StageSample {
                name: s.name.clone(),
                wall: Duration::from_secs_f64(s.duration_ns / 1e9),
                items: s.items as usize,
            })
            .collect()
    }

    /// Wall-clock time since the timer started.
    pub fn total_wall(&self) -> Duration {
        self.started.elapsed()
    }

    /// Snapshot the timer's telemetry (spans aggregated as wall-domain
    /// histograms plus any extra metrics recorded via [`Self::recorder`])
    /// for export through the standard telemetry pipeline.
    pub fn snapshot(&self) -> mnemo_telemetry::Snapshot {
        self.recorder.snapshot(0)
    }

    /// CSV summary: one row per stage plus a `total` row (legacy
    /// `timing-*.csv` format, rendered by the telemetry exporter).
    pub fn to_csv(&self) -> String {
        mnemo_telemetry::export::timing_csv(
            &self.label,
            self.jobs,
            self.recorder.spans(),
            self.total_wall().as_secs_f64() * 1e3,
        )
    }

    /// JSON summary (hand-rolled; stage names are plain identifiers).
    pub fn to_json(&self) -> String {
        mnemo_telemetry::export::timing_json(
            &self.label,
            self.jobs,
            self.recorder.spans(),
            self.total_wall().as_secs_f64() * 1e3,
        )
    }

    /// One-line human summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "[timing] {} ({} jobs): {} stages, {:.1} ms total",
            self.label,
            self.jobs,
            self.recorder.spans().len(),
            self.total_wall().as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_index_order() {
        for workers in [1, 2, 3, 8] {
            let out = Pool::new(workers).map(100, |i| i * 3);
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunked_covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        for (n, chunk) in [(0usize, 1usize), (1, 1), (17, 3), (64, 64), (65, 64)] {
            let out = pool.map_chunked(n, chunk, |i| i);
            assert_eq!(out.len(), n, "n={n} chunk={chunk}");
            let distinct: HashSet<usize> = out.iter().copied().collect();
            assert_eq!(distinct.len(), n);
            assert_eq!(out, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn results_are_identical_across_worker_counts() {
        let reference = Pool::new(1).map(1000, |i| (i as f64).sqrt().sin());
        for workers in [2, 3, 5, 16] {
            let out = Pool::new(workers).map(1000, |i| (i as f64).sqrt().sin());
            // Bit-identical, not approximately equal.
            assert!(
                out.iter()
                    .zip(&reference)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn worker_count_is_bounded() {
        // 64 coarse jobs on a 3-worker pool must never have more than 3
        // running at once (the old spawn-per-job helper ran all 64).
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        Pool::new(3).run_jobs(64, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = panic::catch_unwind(|| {
            Pool::new(4).run_jobs(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn fallible_stages_yield_the_first_error_at_every_worker_count() {
        // A sweep stage whose per-item closure is fallible: results come
        // back in index order, so collecting into `Result` must surface
        // the error of the *lowest failing index* — not whichever worker
        // happened to hit its failure first in wall-clock time.
        let run = |workers: usize| -> Result<Vec<usize>, String> {
            Pool::new(workers)
                .run_jobs(64, |i| {
                    if i % 17 == 9 {
                        Err(format!("item {i} failed"))
                    } else {
                        Ok(i * i)
                    }
                })
                .into_iter()
                .collect()
        };
        for workers in [1, 2, 4, 8] {
            assert_eq!(
                run(workers),
                Err("item 9 failed".into()),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn fallible_stages_succeed_and_drain_in_order() {
        // No failures: the fallible path must be byte-identical to the
        // sequential collect, including after partial-chunk reassembly.
        let expect: Vec<usize> = (0..37).map(|i| i + 100).collect();
        for workers in [1, 3, 7] {
            let got: Result<Vec<usize>, String> = Pool::new(workers)
                .map_chunked(37, 4, |i| Ok(i + 100))
                .into_iter()
                .collect();
            assert_eq!(got.as_deref(), Ok(&expect[..]), "workers={workers}");
        }
    }

    #[test]
    fn fallible_join_carries_both_results() {
        let (a, b): (Result<u32, String>, Result<u32, String>) =
            Pool::new(2).join(|| Ok(4), || Err("right baseline failed".into()));
        assert_eq!(a, Ok(4));
        assert_eq!(b, Err("right baseline failed".into()));
    }

    #[test]
    fn join_returns_both_and_propagates_panics() {
        let (a, b) = Pool::new(2).join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        let panicked =
            panic::catch_unwind(|| Pool::new(2).join(|| 1, || -> usize { panic!("right side") }));
        assert!(panicked.is_err());
        // Sequential pools run both inline.
        let (a, b) = Pool::new(1).join(|| 7, || 9);
        assert_eq!((a, b), (7, 9));
    }

    #[test]
    fn set_jobs_overrides_environment() {
        set_jobs(5);
        assert_eq!(effective_jobs(), 5);
        assert_eq!(Pool::current().workers(), 5);
        set_jobs(0);
        assert!(effective_jobs() >= 1);
    }

    #[test]
    fn sweep_timer_emits_csv_and_json() {
        let mut t = SweepTimer::new("fig-test");
        let x = t.stage("consult", 3, || 42);
        assert_eq!(x, 42);
        t.record("write", 1, Duration::from_millis(2));
        let csv = t.to_csv();
        assert!(csv.starts_with("sweep,jobs,stage,items,wall_ms\n"));
        assert_eq!(csv.lines().count(), 4, "header + 2 stages + total:\n{csv}");
        assert!(csv.contains("fig-test"));
        assert!(csv.lines().last().unwrap().contains(",total,"));
        let json = t.to_json();
        assert!(json.contains("\"sweep\":\"fig-test\""));
        assert!(json.contains("\"stage\":\"consult\""));
        assert!(t.summary().contains("2 stages"));
        // The timer is a telemetry façade: stages surface in its
        // snapshot as wall-domain spans, and extra metrics recorded on
        // the inner recorder ride along.
        t.recorder().count("sweep.rows", 9);
        let snap = t.snapshot();
        assert_eq!(snap.counter("span.consult.items"), 3);
        assert_eq!(snap.counter("sweep.rows"), 9);
        assert_eq!(snap.histogram("span.write.wall_ns").unwrap().count(), 1);
        assert_eq!(t.stages().len(), 2);
        assert_eq!(t.stages()[0].name, "consult");
    }
}
