//! The fault plan: seeded, sim-clock-scheduled fault events.

use crate::backoff::Backoff;
use hybridmem::degrade::{DegradationProfile, DegradationWindow};
use hybridmem::TierId;

/// One scheduled fault. Time windows are half-open `[start_ns, end_ns)`
/// in simulated nanoseconds; `end_ns = u128::MAX` means "until the end of
/// the run".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The tier's access latency is multiplied by `factor` (>= 1) while
    /// the window is active.
    LatencySpike {
        /// Degraded tier (stack index; legacy `MemTier` values convert
        /// via [`hybridmem::MemTier::id`]).
        tier: TierId,
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
        /// Latency multiplier.
        factor: f64,
    },
    /// The tier's bandwidth is reduced to `factor` (in `(0, 1]`) of
    /// nominal while the window is active.
    BandwidthThrottle {
        /// Degraded tier.
        tier: TierId,
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
        /// Remaining bandwidth fraction.
        factor: f64,
    },
    /// The tier loses `bytes` of usable capacity while the window is
    /// active (wear-out or reservation loss). Existing reservations are
    /// kept; new ones see the reduced ceiling.
    CapacityShrink {
        /// Degraded tier.
        tier: TierId,
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
        /// Bytes removed from capacity.
        bytes: u64,
    },
    /// Migrations attempted inside the window fail with the given
    /// probability (seeded per `(plan seed, key, attempt)`, so the same
    /// plan fails the same migrations on every run and worker count).
    MigrationFailure {
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
        /// Failure probability in `[0, 1]`.
        probability: f64,
    },
    /// Shard `shard` crashes the first time its clock reaches `at_ns`:
    /// the run charges a fixed restart plus a per-key rebuild cost, and
    /// the shard restarts with a cold cache.
    ShardCrash {
        /// Crashing shard index.
        shard: usize,
        /// Simulated time of the crash.
        at_ns: u128,
        /// Fixed restart cost in simulated nanoseconds.
        restart_ns: f64,
        /// Rebuild cost per loaded key in simulated nanoseconds.
        rebuild_ns_per_key: f64,
    },
    /// Storage fault: a crash inside the window models power loss — only
    /// a seeded prefix of the bytes written since the last successful
    /// fsync survives (the journal tail is torn mid-frame).
    TornWrite {
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
    },
    /// Storage fault: a crash inside the window flips one seeded bit in
    /// one seeded byte of already-persisted journal data (media
    /// corruption; recovery must quarantine, not die).
    BitFlip {
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
    },
    /// Storage fault: per-record fsyncs inside the window fail, so the
    /// durable watermark stops advancing (rotation-point syncs are hard
    /// barriers and are exempt).
    FsyncFail {
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
    },
    /// Storage fault: a crash inside the window corrupts one seeded byte
    /// of the state-dump file; recovery must detect the checksum
    /// mismatch and fall back to a full journal replay.
    DumpCorrupt {
        /// Window start (inclusive).
        start_ns: u128,
        /// Window end (exclusive).
        end_ns: u128,
    },
}

impl FaultEvent {
    /// Whether this is a storage fault (journal / state-dump domain).
    /// Storage faults never degrade the simulated memory device, so a
    /// plan holding only storage events measures healthy baselines.
    pub fn is_storage(&self) -> bool {
        matches!(
            self,
            FaultEvent::TornWrite { .. }
                | FaultEvent::BitFlip { .. }
                | FaultEvent::FsyncFail { .. }
                | FaultEvent::DumpCorrupt { .. }
        )
    }
}

/// One crash scheduled for a specific shard (compiled view).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCrash {
    /// Simulated time of the crash.
    pub at_ns: u128,
    /// Fixed restart cost in simulated nanoseconds.
    pub restart_ns: f64,
    /// Rebuild cost per loaded key in simulated nanoseconds.
    pub rebuild_ns_per_key: f64,
}

impl ShardCrash {
    /// Total simulated cost of recovering a shard holding `keys` keys.
    pub fn recovery_ns(&self, keys: usize) -> f64 {
        self.restart_ns + self.rebuild_ns_per_key * keys as f64
    }
}

/// The compiled migration-failure schedule: a pure, seeded function of
/// `(now_ns, key, attempt)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MigrationFaults {
    seed: u64,
    /// `(start_ns, end_ns, probability)` windows.
    windows: Vec<(u128, u128, f64)>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MigrationFaults {
    /// Whether the schedule can ever fail a migration.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The combined failure probability at `now_ns` (overlapping windows
    /// compose as independent failure sources).
    pub fn probability_at(&self, now_ns: u128) -> f64 {
        let mut survive = 1.0;
        for &(start, end, p) in &self.windows {
            if start <= now_ns && now_ns < end {
                survive *= 1.0 - p;
            }
        }
        1.0 - survive
    }

    /// Whether the migration of `key` on retry `attempt` at `now_ns` is
    /// injected to fail. Deterministic: a seeded hash of
    /// `(seed, key, attempt)` is compared against the window probability,
    /// with no RNG state carried between calls — the verdict depends only
    /// on the arguments, never on execution order or worker count.
    pub fn fails(&self, now_ns: u128, key: u64, attempt: u32) -> bool {
        let p = self.probability_at(now_ns);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = splitmix64(self.seed ^ splitmix64(key) ^ splitmix64(0x5EED ^ attempt as u64));
        // 53 high bits -> uniform in [0, 1).
        let draw = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        draw < p
    }
}

/// The compiled storage-fault schedule: window membership tests for the
/// four storage fault kinds plus a pure seeded draw for picking torn
/// offsets, flip targets, and corrupt bytes. Like [`MigrationFaults`],
/// every verdict is a function of the arguments alone — no RNG state is
/// carried between calls, so chaos runs replay identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageFaults {
    seed: u64,
    torn: Vec<(u128, u128)>,
    flip: Vec<(u128, u128)>,
    fsync: Vec<(u128, u128)>,
    dump: Vec<(u128, u128)>,
}

fn window_active(windows: &[(u128, u128)], now_ns: u128) -> bool {
    windows
        .iter()
        .any(|&(start, end)| start <= now_ns && now_ns < end)
}

impl StorageFaults {
    /// Whether the schedule contains any storage fault at all.
    pub fn is_empty(&self) -> bool {
        self.torn.is_empty()
            && self.flip.is_empty()
            && self.fsync.is_empty()
            && self.dump.is_empty()
    }

    /// Whether a crash at `now_ns` tears the unsynced journal tail.
    pub fn torn_write_at(&self, now_ns: u128) -> bool {
        window_active(&self.torn, now_ns)
    }

    /// Whether a crash at `now_ns` flips a bit in persisted journal data.
    pub fn bit_flip_at(&self, now_ns: u128) -> bool {
        window_active(&self.flip, now_ns)
    }

    /// Whether a per-record fsync issued at `now_ns` fails.
    pub fn fsync_fails(&self, now_ns: u128) -> bool {
        window_active(&self.fsync, now_ns)
    }

    /// Whether a crash at `now_ns` corrupts the state-dump file.
    pub fn dump_corrupt_at(&self, now_ns: u128) -> bool {
        window_active(&self.dump, now_ns)
    }

    /// A pure seeded draw in `[0, bound)` (0 when `bound` is 0), salted
    /// so distinct decision points take independent values.
    pub fn draw(&self, salt: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        splitmix64(self.seed ^ splitmix64(salt)) % bound
    }
}

/// A complete, validated fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all probabilistic decisions (migration failures).
    pub seed: u64,
    /// Retry policy for failed migrations.
    pub backoff: Backoff,
    /// Scheduled fault events.
    pub events: Vec<FaultEvent>,
    /// Tenant scoping for serve-mode plans: `(event index, tenant name)`
    /// pairs, sparse — an event with no entry applies to every tenant.
    /// Device-level consumers (kvsim, hybridmem) ignore scoping; the
    /// serve daemon narrows a plan with [`FaultPlan::for_tenant`] before
    /// installing it.
    pub tenant_scope: Vec<(usize, String)>,
}

impl FaultPlan {
    /// An empty plan (no faults, default backoff).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            backoff: Backoff::default_policy(),
            events: Vec::new(),
            tenant_scope: Vec::new(),
        }
    }

    /// Builder-style event append.
    pub fn with(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Builder-style append of an event scoped to one tenant.
    pub fn with_for_tenant(mut self, event: FaultEvent, tenant: &str) -> FaultPlan {
        self.tenant_scope
            .push((self.events.len(), tenant.to_string()));
        self.events.push(event);
        self
    }

    /// The tenant an event is scoped to, if any.
    pub fn tenant_of(&self, event_index: usize) -> Option<&str> {
        self.tenant_scope
            .iter()
            .find(|(i, _)| *i == event_index)
            .map(|(_, t)| t.as_str())
    }

    /// Narrow the plan to what one tenant experiences: every unscoped
    /// event plus the events scoped to `tenant`, in their original
    /// order. The result carries no scoping — it is that tenant's whole
    /// world — and keeps the seed and backoff policy, so probabilistic
    /// draws and retry tiers stay identical to the full plan's.
    pub fn for_tenant(&self, tenant: &str) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            backoff: self.backoff,
            events: self
                .events
                .iter()
                .enumerate()
                .filter(|(i, _)| self.tenant_of(*i).is_none_or(|t| t == tenant))
                .map(|(_, e)| *e)
                .collect(),
            tenant_scope: Vec::new(),
        }
    }

    /// Whether the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validate every event's parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.backoff.validate()?;
        for (i, tenant) in &self.tenant_scope {
            if *i >= self.events.len() {
                return Err(format!(
                    "tenant scope references event {i} but the plan has {}",
                    self.events.len()
                ));
            }
            if tenant.is_empty() {
                return Err(format!("event {i}: tenant name must not be empty"));
            }
        }
        for (i, e) in self.events.iter().enumerate() {
            let window = |start: u128, end: u128| -> Result<(), String> {
                if start >= end {
                    Err(format!("event {i}: empty window [{start}, {end})"))
                } else {
                    Ok(())
                }
            };
            match *e {
                FaultEvent::LatencySpike {
                    start_ns,
                    end_ns,
                    factor,
                    ..
                } => {
                    window(start_ns, end_ns)?;
                    if !(factor.is_finite() && factor >= 1.0) {
                        return Err(format!(
                            "event {i}: latency factor must be >= 1, got {factor}"
                        ));
                    }
                }
                FaultEvent::BandwidthThrottle {
                    start_ns,
                    end_ns,
                    factor,
                    ..
                } => {
                    window(start_ns, end_ns)?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!(
                            "event {i}: bandwidth factor must be in (0, 1], got {factor}"
                        ));
                    }
                }
                FaultEvent::CapacityShrink {
                    start_ns, end_ns, ..
                } => window(start_ns, end_ns)?,
                FaultEvent::MigrationFailure {
                    start_ns,
                    end_ns,
                    probability,
                } => {
                    window(start_ns, end_ns)?;
                    if !(0.0..=1.0).contains(&probability) {
                        return Err(format!(
                            "event {i}: migration failure probability must be in [0, 1], got {probability}"
                        ));
                    }
                }
                FaultEvent::ShardCrash {
                    restart_ns,
                    rebuild_ns_per_key,
                    ..
                } => {
                    if !(restart_ns.is_finite() && restart_ns >= 0.0) {
                        return Err(format!("event {i}: restart_ns must be >= 0"));
                    }
                    if !(rebuild_ns_per_key.is_finite() && rebuild_ns_per_key >= 0.0) {
                        return Err(format!("event {i}: rebuild_ns_per_key must be >= 0"));
                    }
                }
                FaultEvent::TornWrite { start_ns, end_ns }
                | FaultEvent::BitFlip { start_ns, end_ns }
                | FaultEvent::FsyncFail { start_ns, end_ns }
                | FaultEvent::DumpCorrupt { start_ns, end_ns } => window(start_ns, end_ns)?,
            }
        }
        Ok(())
    }

    /// Compile the device-side events into a [`DegradationProfile`] for
    /// `hybridmem` to consult. Migration failures and shard crashes are
    /// not device degradation and are exposed separately.
    pub fn degradation_profile(&self) -> DegradationProfile {
        let mut profile = DegradationProfile::new();
        for e in &self.events {
            match *e {
                FaultEvent::LatencySpike {
                    tier,
                    start_ns,
                    end_ns,
                    factor,
                } => profile.push(DegradationWindow {
                    latency_mult: factor,
                    ..DegradationWindow::nominal(tier, start_ns, end_ns)
                }),
                FaultEvent::BandwidthThrottle {
                    tier,
                    start_ns,
                    end_ns,
                    factor,
                } => profile.push(DegradationWindow {
                    bandwidth_mult: factor,
                    ..DegradationWindow::nominal(tier, start_ns, end_ns)
                }),
                FaultEvent::CapacityShrink {
                    tier,
                    start_ns,
                    end_ns,
                    bytes,
                } => profile.push(DegradationWindow {
                    capacity_shrink: bytes,
                    ..DegradationWindow::nominal(tier, start_ns, end_ns)
                }),
                FaultEvent::MigrationFailure { .. } | FaultEvent::ShardCrash { .. } => {}
                // Storage faults live in the journal / state-dump domain,
                // not the memory device.
                FaultEvent::TornWrite { .. }
                | FaultEvent::BitFlip { .. }
                | FaultEvent::FsyncFail { .. }
                | FaultEvent::DumpCorrupt { .. } => {}
            }
        }
        profile
    }

    /// Compile the migration-failure schedule.
    pub fn migration_faults(&self) -> MigrationFaults {
        let windows = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::MigrationFailure {
                    start_ns,
                    end_ns,
                    probability,
                } => Some((start_ns, end_ns, probability)),
                _ => None,
            })
            .collect();
        MigrationFaults {
            seed: self.seed,
            windows,
        }
    }

    /// Compile the storage-fault schedule (torn writes, bit flips,
    /// fsync failures, dump corruption).
    pub fn storage_faults(&self) -> StorageFaults {
        let mut faults = StorageFaults {
            seed: self.seed,
            ..StorageFaults::default()
        };
        for e in &self.events {
            match *e {
                FaultEvent::TornWrite { start_ns, end_ns } => faults.torn.push((start_ns, end_ns)),
                FaultEvent::BitFlip { start_ns, end_ns } => faults.flip.push((start_ns, end_ns)),
                FaultEvent::FsyncFail { start_ns, end_ns } => faults.fsync.push((start_ns, end_ns)),
                FaultEvent::DumpCorrupt { start_ns, end_ns } => {
                    faults.dump.push((start_ns, end_ns))
                }
                _ => {}
            }
        }
        faults
    }

    /// The crashes scheduled for one shard, sorted by crash time.
    pub fn shard_crashes(&self, shard: usize) -> Vec<ShardCrash> {
        let mut crashes: Vec<ShardCrash> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ShardCrash {
                    shard: s,
                    at_ns,
                    restart_ns,
                    rebuild_ns_per_key,
                } if s == shard => Some(ShardCrash {
                    at_ns,
                    restart_ns,
                    rebuild_ns_per_key,
                }),
                _ => None,
            })
            .collect();
        crashes.sort_by_key(|c| c.at_ns);
        crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::MemTier;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new(7)
            .with(FaultEvent::LatencySpike {
                tier: MemTier::Slow.id(),
                start_ns: 0,
                end_ns: 1_000,
                factor: 3.0,
            })
            .with(FaultEvent::BandwidthThrottle {
                tier: MemTier::Slow.id(),
                start_ns: 500,
                end_ns: 2_000,
                factor: 0.25,
            })
            .with(FaultEvent::CapacityShrink {
                tier: MemTier::Fast.id(),
                start_ns: 0,
                end_ns: u128::MAX,
                bytes: 4096,
            })
            .with(FaultEvent::MigrationFailure {
                start_ns: 0,
                end_ns: 10_000,
                probability: 0.5,
            })
            .with(FaultEvent::ShardCrash {
                shard: 1,
                at_ns: 5_000,
                restart_ns: 100.0,
                rebuild_ns_per_key: 10.0,
            })
    }

    #[test]
    fn compiles_device_events_to_profile() {
        let plan = sample_plan();
        plan.validate().unwrap();
        let profile = plan.degradation_profile();
        assert_eq!(profile.windows().len(), 3);
        let f = profile.factors_at(MemTier::Slow, 750);
        assert_eq!(f.latency_mult, 3.0);
        assert_eq!(f.bandwidth_mult, 0.25);
        assert_eq!(profile.factors_at(MemTier::Fast, 750).capacity_shrink, 4096);
    }

    #[test]
    fn migration_faults_are_deterministic_and_windowed() {
        let faults = sample_plan().migration_faults();
        assert!(!faults.is_empty());
        assert_eq!(faults.probability_at(5_000), 0.5);
        assert_eq!(faults.probability_at(10_000), 0.0);
        // Same arguments, same verdict, forever.
        for key in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(
                    faults.fails(5_000, key, attempt),
                    faults.fails(5_000, key, attempt)
                );
            }
            assert!(!faults.fails(10_000, key, 0), "outside the window");
        }
        // Roughly half the keys fail at p = 0.5.
        let failures = (0..1000u64).filter(|&k| faults.fails(5_000, k, 0)).count();
        assert!((350..=650).contains(&failures), "failures {failures}");
        // Different seeds give different verdict patterns.
        let mut other = sample_plan();
        other.seed = 8;
        let other = other.migration_faults();
        assert!((0..1000u64).any(|k| faults.fails(5_000, k, 0) != other.fails(5_000, k, 0)));
    }

    #[test]
    fn storage_faults_compile_windows_and_draw_deterministically() {
        let plan = FaultPlan::new(11)
            .with(FaultEvent::TornWrite {
                start_ns: 1_000,
                end_ns: 2_000,
            })
            .with(FaultEvent::BitFlip {
                start_ns: 0,
                end_ns: 500,
            })
            .with(FaultEvent::FsyncFail {
                start_ns: 100,
                end_ns: 200,
            })
            .with(FaultEvent::DumpCorrupt {
                start_ns: 300,
                end_ns: u128::MAX,
            });
        plan.validate().unwrap();
        let storage = plan.storage_faults();
        assert!(!storage.is_empty());
        assert!(storage.torn_write_at(1_500) && !storage.torn_write_at(2_000));
        assert!(storage.bit_flip_at(0) && !storage.bit_flip_at(500));
        assert!(storage.fsync_fails(150) && !storage.fsync_fails(99));
        assert!(storage.dump_corrupt_at(300) && !storage.dump_corrupt_at(299));
        // Draws are pure functions of (seed, salt, bound).
        assert_eq!(storage.draw(42, 1_000), storage.draw(42, 1_000));
        assert!(storage.draw(42, 1_000) < 1_000);
        assert_eq!(storage.draw(7, 0), 0, "bound 0 never divides");
        let other = FaultPlan::new(12)
            .with(FaultEvent::TornWrite {
                start_ns: 0,
                end_ns: 1,
            })
            .storage_faults();
        assert!((0..64u64).any(|s| storage.draw(s, 1 << 30) != other.draw(s, 1 << 30)));
        // Storage events are invisible to the device profile and do not
        // mark a plan as device-degrading.
        assert_eq!(plan.degradation_profile().windows().len(), 0);
        assert!(plan.events.iter().all(FaultEvent::is_storage));
    }

    #[test]
    fn storage_windows_validate_like_device_windows() {
        let bad = FaultPlan::new(0).with(FaultEvent::TornWrite {
            start_ns: 5,
            end_ns: 5,
        });
        assert!(bad.validate().is_err());
        let ok = FaultPlan::new(0).with(FaultEvent::FsyncFail {
            start_ns: 5,
            end_ns: 6,
        });
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn overlapping_failure_windows_compose() {
        let plan = FaultPlan::new(1)
            .with(FaultEvent::MigrationFailure {
                start_ns: 0,
                end_ns: 100,
                probability: 0.5,
            })
            .with(FaultEvent::MigrationFailure {
                start_ns: 50,
                end_ns: 150,
                probability: 0.5,
            });
        let faults = plan.migration_faults();
        assert_eq!(faults.probability_at(75), 0.75);
        assert_eq!(faults.probability_at(125), 0.5);
    }

    #[test]
    fn certain_failure_and_certain_success() {
        let always = FaultPlan::new(1)
            .with(FaultEvent::MigrationFailure {
                start_ns: 0,
                end_ns: 100,
                probability: 1.0,
            })
            .migration_faults();
        assert!((0..50u64).all(|k| always.fails(10, k, 0)));
        let never = FaultPlan::new(1)
            .with(FaultEvent::MigrationFailure {
                start_ns: 0,
                end_ns: 100,
                probability: 0.0,
            })
            .migration_faults();
        assert!((0..50u64).all(|k| !never.fails(10, k, 0)));
    }

    #[test]
    fn shard_crashes_filter_and_sort() {
        let plan = sample_plan()
            .with(FaultEvent::ShardCrash {
                shard: 1,
                at_ns: 1_000,
                restart_ns: 50.0,
                rebuild_ns_per_key: 5.0,
            })
            .with(FaultEvent::ShardCrash {
                shard: 0,
                at_ns: 2_000,
                restart_ns: 50.0,
                rebuild_ns_per_key: 5.0,
            });
        let c1 = plan.shard_crashes(1);
        assert_eq!(c1.len(), 2);
        assert!(c1[0].at_ns < c1[1].at_ns);
        assert_eq!(plan.shard_crashes(0).len(), 1);
        assert!(plan.shard_crashes(9).is_empty());
        assert_eq!(c1[0].recovery_ns(10), 50.0 + 5.0 * 10.0);
    }

    #[test]
    fn tenant_scoping_narrows_the_plan() {
        let plan = FaultPlan::new(7)
            .with(FaultEvent::MigrationFailure {
                start_ns: 0,
                end_ns: 100,
                probability: 0.5,
            })
            .with_for_tenant(
                FaultEvent::ShardCrash {
                    shard: 0,
                    at_ns: 50,
                    restart_ns: 10.0,
                    rebuild_ns_per_key: 1.0,
                },
                "beta",
            )
            .with_for_tenant(
                FaultEvent::BandwidthThrottle {
                    tier: MemTier::Slow.id(),
                    start_ns: 0,
                    end_ns: 100,
                    factor: 0.5,
                },
                "gamma",
            );
        plan.validate().unwrap();
        assert_eq!(plan.tenant_of(0), None);
        assert_eq!(plan.tenant_of(1), Some("beta"));
        assert_eq!(plan.tenant_of(2), Some("gamma"));
        // Each tenant sees the unscoped event plus its own.
        let beta = plan.for_tenant("beta");
        assert_eq!(beta.events.len(), 2);
        assert_eq!(beta.shard_crashes(0).len(), 1);
        assert!(beta.tenant_scope.is_empty());
        assert_eq!(beta.seed, plan.seed, "draws stay seed-identical");
        let gamma = plan.for_tenant("gamma");
        assert_eq!(gamma.events.len(), 2);
        assert!(gamma.shard_crashes(0).is_empty());
        let alpha = plan.for_tenant("alpha");
        assert_eq!(alpha.events.len(), 1, "only the unscoped event");
    }

    #[test]
    fn validation_catches_bad_tenant_scope() {
        let mut plan = FaultPlan::new(0).with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: 1,
            probability: 0.1,
        });
        plan.tenant_scope.push((5, "ghost".into()));
        assert!(plan.validate().unwrap_err().contains("references event"));
        let mut plan = FaultPlan::new(0).with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: 1,
            probability: 0.1,
        });
        plan.tenant_scope.push((0, String::new()));
        assert!(plan.validate().unwrap_err().contains("must not be empty"));
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let bad = FaultPlan::new(0).with(FaultEvent::LatencySpike {
            tier: MemTier::Fast.id(),
            start_ns: 10,
            end_ns: 10,
            factor: 2.0,
        });
        assert!(bad.validate().unwrap_err().contains("empty window"));
        let bad = FaultPlan::new(0).with(FaultEvent::MigrationFailure {
            start_ns: 0,
            end_ns: 1,
            probability: 1.5,
        });
        assert!(bad.validate().unwrap_err().contains("probability"));
        let bad = FaultPlan::new(0).with(FaultEvent::BandwidthThrottle {
            tier: MemTier::Slow.id(),
            start_ns: 0,
            end_ns: 1,
            factor: 0.0,
        });
        assert!(bad.validate().unwrap_err().contains("bandwidth"));
    }
}
