//! Hand-rolled TOML- and JSON-subset parsers for fault plans.
//!
//! The build environment vendors a marker-only `serde` shim (derives emit
//! nothing), so plan files are parsed by hand. Both formats map onto the
//! same raw records before validation, and every syntax or schema error
//! carries the 1-based line it was found on.

use crate::backoff::Backoff;
use crate::plan::{FaultEvent, FaultPlan};
use hybridmem::TierId;

/// Tier-name resolution table used while parsing `tier = "..."` fields.
///
/// The default ([`TierNames::legacy`]) resolves the two-tier aliases
/// (`fast`/`fastmem`/`dram` and `slow`/`slowmem`/`nvm`). Hierarchy-aware
/// callers build one from their tier list with [`TierNames::from_names`]
/// so plans can reference tiers by hierarchy name; the positional
/// `tier<N>` forms and any non-colliding legacy alias keep resolving.
#[derive(Debug, Clone)]
pub struct TierNames {
    /// `(lowercased alias, tier)` pairs; first match wins.
    entries: Vec<(String, TierId)>,
    /// Primary names in stack order, for error messages.
    primary: Vec<String>,
}

const LEGACY_ALIASES: [(&str, TierId); 6] = [
    ("fast", TierId::FAST),
    ("fastmem", TierId::FAST),
    ("dram", TierId::FAST),
    ("slow", TierId::SLOW),
    ("slowmem", TierId::SLOW),
    ("nvm", TierId::SLOW),
];

impl TierNames {
    /// The legacy two-tier alias table.
    pub fn legacy() -> TierNames {
        TierNames {
            entries: LEGACY_ALIASES
                .iter()
                .map(|(n, t)| (n.to_string(), *t))
                .collect(),
            primary: vec!["fast".to_string(), "slow".to_string()],
        }
    }

    /// A table for a hierarchy's tier names in stack order (index 0 =
    /// topmost tier). Each tier also answers to `tier<index>`, and the
    /// legacy aliases keep resolving where they do not collide with a
    /// hierarchy name.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> TierNames {
        let mut entries: Vec<(String, TierId)> = Vec::new();
        let mut primary = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let id = TierId(u8::try_from(i).unwrap_or(u8::MAX));
            let lower = name.as_ref().to_ascii_lowercase();
            primary.push(lower.clone());
            entries.push((lower, id));
            entries.push((format!("tier{i}"), id));
        }
        for (alias, id) in LEGACY_ALIASES {
            if id.index() < names.len() && !entries.iter().any(|(n, _)| n == alias) {
                entries.push((alias.to_string(), id));
            }
        }
        TierNames { entries, primary }
    }

    /// Resolve a tier name, case-insensitively.
    pub fn resolve(&self, name: &str) -> Option<TierId> {
        let lower = name.to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, t)| *t)
    }

    /// The primary tier names in stack order, as shown in errors.
    pub fn primary(&self) -> &[String] {
        &self.primary
    }
}

/// A plan-file parse or validation error, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// 1-based line number; 0 for document-level errors.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl PlanError {
    fn at(line: usize, reason: impl Into<String>) -> PlanError {
        PlanError {
            line,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "fault plan: {}", self.reason)
        } else {
            write!(f, "fault plan line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for PlanError {}

/// Errors from [`FaultPlan::load`].
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file's contents were not a valid plan.
    Parse(PlanError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "cannot read fault plan: {e}"),
            LoadError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LoadError {}

/// One parsed scalar value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(u128),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

/// A flat key/value record plus the line each key appeared on.
#[derive(Debug, Default, Clone)]
struct Record {
    line: usize,
    fields: Vec<(String, Value, usize)>,
}

impl Record {
    fn insert(&mut self, key: String, value: Value, line: usize) -> Result<(), PlanError> {
        if self.fields.iter().any(|(k, _, _)| *k == key) {
            return Err(PlanError::at(line, format!("duplicate key `{key}`")));
        }
        self.fields.push((key, value, line));
        Ok(())
    }

    fn get(&self, key: &str) -> Option<(&Value, usize)> {
        self.fields
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v, *l))
    }

    fn str(&self, key: &str) -> Result<Option<(&str, usize)>, PlanError> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Str(s), l)) => Ok(Some((s, l))),
            Some((v, l)) => Err(PlanError::at(
                l,
                format!("`{key}` must be a string, got {}", v.type_name()),
            )),
        }
    }

    fn u128(&self, key: &str) -> Result<Option<u128>, PlanError> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Int(n), _)) => Ok(Some(*n)),
            Some((v, l)) => Err(PlanError::at(
                l,
                format!(
                    "`{key}` must be a non-negative integer, got {}",
                    v.type_name()
                ),
            )),
        }
    }

    fn u64(&self, key: &str) -> Result<Option<u64>, PlanError> {
        match self.u128(key)? {
            None => Ok(None),
            Some(n) => u64::try_from(n).map(Some).map_err(|_| {
                let l = self.get(key).map(|(_, l)| l).unwrap_or(self.line);
                PlanError::at(l, format!("`{key}` exceeds 64 bits"))
            }),
        }
    }

    fn f64(&self, key: &str) -> Result<Option<f64>, PlanError> {
        match self.get(key) {
            None => Ok(None),
            Some((Value::Float(x), _)) => Ok(Some(*x)),
            Some((Value::Int(n), _)) => Ok(Some(*n as f64)),
            Some((v, l)) => Err(PlanError::at(
                l,
                format!("`{key}` must be a number, got {}", v.type_name()),
            )),
        }
    }

    fn require_f64(&self, key: &str) -> Result<f64, PlanError> {
        self.f64(key)?
            .ok_or_else(|| PlanError::at(self.line, format!("missing required field `{key}`")))
    }

    fn tier(&self, tiers: &TierNames) -> Result<TierId, PlanError> {
        let (name, line) = self
            .str("tier")?
            .ok_or_else(|| PlanError::at(self.line, "missing required field `tier`"))?;
        tiers.resolve(name).ok_or_else(|| {
            PlanError::at(
                line,
                format!(
                    "unknown tier `{name}` (expected one of: {})",
                    tiers.primary().join(", ")
                ),
            )
        })
    }

    fn known_keys(&self, allowed: &[&str]) -> Result<(), PlanError> {
        for (k, _, l) in &self.fields {
            if !allowed.contains(&k.as_str()) {
                return Err(PlanError::at(*l, format!("unknown field `{k}`")));
            }
        }
        Ok(())
    }
}

/// Both front-ends produce this shape, then share the schema builder.
#[derive(Debug, Default)]
struct RawPlan {
    top: Record,
    backoff: Option<Record>,
    events: Vec<Record>,
}

fn build(raw: RawPlan, tiers: &TierNames) -> Result<FaultPlan, PlanError> {
    raw.top.known_keys(&["seed"])?;
    let seed = raw.top.u64("seed")?.unwrap_or(0);
    let mut plan = FaultPlan::new(seed);
    if let Some(b) = &raw.backoff {
        b.known_keys(&["base_ns", "factor", "cap_ns", "max_retries"])?;
        let d = Backoff::default_policy();
        plan.backoff = Backoff {
            base_ns: b.f64("base_ns")?.unwrap_or(d.base_ns),
            factor: b.f64("factor")?.unwrap_or(d.factor),
            cap_ns: b.f64("cap_ns")?.unwrap_or(d.cap_ns),
            max_retries: b
                .u64("max_retries")?
                .map(|n| {
                    u32::try_from(n)
                        .map_err(|_| PlanError::at(b.line, "`max_retries` exceeds 32 bits"))
                })
                .transpose()?
                .unwrap_or(d.max_retries),
        };
    }
    for e in &raw.events {
        let (kind, kind_line) = e
            .str("kind")?
            .ok_or_else(|| PlanError::at(e.line, "event is missing `kind`"))?;
        let start_ns = e.u128("start_ns")?.unwrap_or(0);
        let end_ns = e.u128("end_ns")?.unwrap_or(u128::MAX);
        // Any event kind may carry a `tenant = "name"` scope; serve-mode
        // consumers narrow the plan per tenant, everything else ignores it.
        let tenant = match e.str("tenant")? {
            Some(("", line)) => return Err(PlanError::at(line, "`tenant` must not be empty")),
            other => other.map(|(name, _)| name.to_string()),
        };
        let event = match kind {
            "latency_spike" => {
                e.known_keys(&["kind", "tier", "start_ns", "end_ns", "factor", "tenant"])?;
                FaultEvent::LatencySpike {
                    tier: e.tier(tiers)?,
                    start_ns,
                    end_ns,
                    factor: e.require_f64("factor")?,
                }
            }
            "bandwidth_throttle" => {
                e.known_keys(&["kind", "tier", "start_ns", "end_ns", "factor", "tenant"])?;
                FaultEvent::BandwidthThrottle {
                    tier: e.tier(tiers)?,
                    start_ns,
                    end_ns,
                    factor: e.require_f64("factor")?,
                }
            }
            "capacity_shrink" => {
                e.known_keys(&["kind", "tier", "start_ns", "end_ns", "bytes", "tenant"])?;
                FaultEvent::CapacityShrink {
                    tier: e.tier(tiers)?,
                    start_ns,
                    end_ns,
                    bytes: e
                        .u64("bytes")?
                        .ok_or_else(|| PlanError::at(e.line, "missing required field `bytes`"))?,
                }
            }
            "migration_failure" => {
                e.known_keys(&["kind", "start_ns", "end_ns", "probability", "tenant"])?;
                FaultEvent::MigrationFailure {
                    start_ns,
                    end_ns,
                    probability: e.require_f64("probability")?,
                }
            }
            "shard_crash" => {
                e.known_keys(&[
                    "kind",
                    "shard",
                    "at_ns",
                    "restart_ns",
                    "rebuild_ns_per_key",
                    "tenant",
                ])?;
                FaultEvent::ShardCrash {
                    shard: e
                        .u64("shard")?
                        .ok_or_else(|| PlanError::at(e.line, "missing required field `shard`"))?
                        as usize,
                    at_ns: e
                        .u128("at_ns")?
                        .ok_or_else(|| PlanError::at(e.line, "missing required field `at_ns`"))?,
                    restart_ns: e.f64("restart_ns")?.unwrap_or(0.0),
                    rebuild_ns_per_key: e.f64("rebuild_ns_per_key")?.unwrap_or(0.0),
                }
            }
            "torn_write" => {
                e.known_keys(&["kind", "start_ns", "end_ns", "tenant"])?;
                FaultEvent::TornWrite { start_ns, end_ns }
            }
            "bit_flip" => {
                e.known_keys(&["kind", "start_ns", "end_ns", "tenant"])?;
                FaultEvent::BitFlip { start_ns, end_ns }
            }
            "fsync_fail" => {
                e.known_keys(&["kind", "start_ns", "end_ns", "tenant"])?;
                FaultEvent::FsyncFail { start_ns, end_ns }
            }
            "dump_corrupt" => {
                e.known_keys(&["kind", "start_ns", "end_ns", "tenant"])?;
                FaultEvent::DumpCorrupt { start_ns, end_ns }
            }
            other => {
                return Err(PlanError::at(
                    kind_line,
                    format!("unknown event kind `{other}`"),
                ))
            }
        };
        if let Some(name) = tenant {
            plan.tenant_scope.push((plan.events.len(), name));
        }
        plan.events.push(event);
    }
    plan.validate().map_err(|reason| PlanError::at(0, reason))?;
    Ok(plan)
}

// ---------------------------------------------------------------- TOML --

/// Strip a trailing comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(text: &str, line: usize) -> Result<Value, PlanError> {
    let t = text.trim();
    if t.is_empty() {
        return Err(PlanError::at(line, "missing value"));
    }
    if let Some(stripped) = t.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return Err(PlanError::at(line, format!("unterminated string {t}")));
        };
        if inner.contains('"') {
            return Err(PlanError::at(line, format!("malformed string {t}")));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match t {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let digits = t.replace('_', "");
    if let Ok(n) = digits.parse::<u128>() {
        return Ok(Value::Int(n));
    }
    if let Ok(x) = digits.parse::<f64>() {
        if x.is_finite() {
            return Ok(Value::Float(x));
        }
    }
    Err(PlanError::at(line, format!("cannot parse value `{t}`")))
}

enum TomlSection {
    Top,
    Backoff,
    Event,
}

fn parse_toml(text: &str) -> Result<RawPlan, PlanError> {
    let mut raw = RawPlan::default();
    let mut section = TomlSection::Top;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            match header.trim() {
                "event" | "events" => {
                    raw.events.push(Record {
                        line: lineno,
                        fields: Vec::new(),
                    });
                    section = TomlSection::Event;
                }
                other => {
                    return Err(PlanError::at(
                        lineno,
                        format!("unknown array table `[[{other}]]`"),
                    ))
                }
            }
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            match header.trim() {
                "backoff" => {
                    if raw.backoff.is_some() {
                        return Err(PlanError::at(lineno, "duplicate [backoff] section"));
                    }
                    raw.backoff = Some(Record {
                        line: lineno,
                        fields: Vec::new(),
                    });
                    section = TomlSection::Backoff;
                }
                other => {
                    return Err(PlanError::at(
                        lineno,
                        format!("unknown section `[{other}]`"),
                    ))
                }
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(PlanError::at(
                lineno,
                format!("expected `key = value`, got `{line}`"),
            ));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(PlanError::at(lineno, format!("invalid key `{key}`")));
        }
        let value = parse_scalar(value, lineno)?;
        let record = match section {
            TomlSection::Top => &mut raw.top,
            TomlSection::Backoff => {
                // mnemo-lint: allow(R001, "entering [backoff] always initialises raw.backoff before any key line can reach this arm")
                raw.backoff.as_mut().expect("section set")
            }
            TomlSection::Event => {
                // mnemo-lint: allow(R001, "entering [[event]] always pushes a record before any key line can reach this arm")
                raw.events.last_mut().expect("section set")
            }
        };
        record.insert(key.to_string(), value, lineno)?;
    }
    Ok(raw)
}

// ---------------------------------------------------------------- JSON --

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Value(Value),
    Array(Vec<(Json, usize)>),
    Object(Vec<(String, Json, usize)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn line(&self) -> usize {
        1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }

    fn err(&self, reason: impl Into<String>) -> PlanError {
        PlanError::at(self.line(), reason.into())
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), PlanError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, PlanError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Value(Value::Str(self.parse_string()?))),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Json, PlanError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(Json::Value(value))
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, PlanError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan as UTF-8 from the byte before.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    // mnemo-lint: allow(R001, "from_utf8 succeeded on a slice that starts at an in-bounds byte, so there is at least one char")
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, PlanError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        // mnemo-lint: allow(R001, "the scan loop above only advances past ASCII digit/sign/exponent bytes, which are valid UTF-8")
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Json::Value(Value::Int(n)));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Value(Value::Float(x))),
            _ => Err(self.err(format!("cannot parse number `{text}`"))),
        }
    }

    fn parse_array(&mut self) -> Result<Json, PlanError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            let line = self.line();
            items.push((self.parse_value()?, line));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, PlanError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let line = self.line();
            let key = self.parse_string()?;
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value, line));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn json_record(fields: Vec<(String, Json, usize)>, line: usize) -> Result<Record, PlanError> {
    let mut record = Record {
        line,
        fields: Vec::new(),
    };
    for (key, value, l) in fields {
        match value {
            Json::Value(v) => record.insert(key, v, l)?,
            _ => {
                return Err(PlanError::at(
                    l,
                    format!("`{key}` must be a scalar in this position"),
                ))
            }
        }
    }
    Ok(record)
}

fn parse_json(text: &str) -> Result<RawPlan, PlanError> {
    let mut parser = JsonParser::new(text);
    let doc = parser.parse_object()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing content after plan object"));
    }
    let Json::Object(fields) = doc else {
        unreachable!("parse_object returns objects")
    };
    let mut raw = RawPlan::default();
    for (key, value, line) in fields {
        match (key.as_str(), value) {
            ("seed", Json::Value(v)) => raw.top.insert(key, v, line)?,
            ("backoff", Json::Object(f)) => raw.backoff = Some(json_record(f, line)?),
            ("events" | "event", Json::Array(items)) => {
                for (item, item_line) in items {
                    match item {
                        Json::Object(f) => raw.events.push(json_record(f, item_line)?),
                        _ => return Err(PlanError::at(item_line, "events must be objects")),
                    }
                }
            }
            (k, _) => {
                return Err(PlanError::at(
                    line,
                    format!("unknown or malformed top-level field `{k}`"),
                ))
            }
        }
    }
    Ok(raw)
}

// -------------------------------------------------------------- facade --

impl FaultPlan {
    /// Parse a plan from the TOML subset (`seed`, `[backoff]`,
    /// `[[event]]` tables of scalars), resolving tier names with the
    /// legacy two-tier aliases.
    pub fn parse_toml(text: &str) -> Result<FaultPlan, PlanError> {
        FaultPlan::parse_toml_with(text, &TierNames::legacy())
    }

    /// Parse the TOML subset with a custom tier-name table (hierarchy
    /// tier names resolve to their stack indices).
    pub fn parse_toml_with(text: &str, tiers: &TierNames) -> Result<FaultPlan, PlanError> {
        build(parse_toml(text)?, tiers)
    }

    /// Parse a plan from the JSON subset (`{"seed", "backoff", "events"}`).
    pub fn parse_json(text: &str) -> Result<FaultPlan, PlanError> {
        FaultPlan::parse_json_with(text, &TierNames::legacy())
    }

    /// Parse the JSON subset with a custom tier-name table.
    pub fn parse_json_with(text: &str, tiers: &TierNames) -> Result<FaultPlan, PlanError> {
        build(parse_json(text)?, tiers)
    }

    /// Parse either format, sniffed from the first non-space character.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanError> {
        FaultPlan::parse_with(text, &TierNames::legacy())
    }

    /// Parse either format with a custom tier-name table.
    pub fn parse_with(text: &str, tiers: &TierNames) -> Result<FaultPlan, PlanError> {
        if text.trim_start().starts_with('{') {
            FaultPlan::parse_json_with(text, tiers)
        } else {
            FaultPlan::parse_toml_with(text, tiers)
        }
    }

    /// Load a plan file (`.json` forces JSON; anything else is sniffed).
    pub fn load(path: &std::path::Path) -> Result<FaultPlan, LoadError> {
        FaultPlan::load_with(path, &TierNames::legacy())
    }

    /// Load a plan file with a custom tier-name table, so plans can
    /// reference the tiers of a loaded hierarchy by name.
    pub fn load_with(path: &std::path::Path, tiers: &TierNames) -> Result<FaultPlan, LoadError> {
        let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
        let plan = if path.extension().is_some_and(|e| e == "json") {
            FaultPlan::parse_json_with(&text, tiers)
        } else {
            FaultPlan::parse_with(&text, tiers)
        };
        plan.map_err(LoadError::Parse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML_PLAN: &str = r#"
# a representative plan
seed = 42

[backoff]
base_ns = 500
factor = 2.0
cap_ns = 8_000
max_retries = 3

[[event]]
kind = "latency_spike"
tier = "slow"          # the NVM side
start_ns = 0
end_ns = 1000000
factor = 3.0

[[event]]
kind = "bandwidth_throttle"
tier = "slow"
start_ns = 250000
end_ns = 750000
factor = 0.25

[[event]]
kind = "capacity_shrink"
tier = "fast"
start_ns = 100
bytes = 1048576

[[event]]
kind = "migration_failure"
start_ns = 0
end_ns = 500000
probability = 0.5

[[event]]
kind = "shard_crash"
shard = 1
at_ns = 300000
restart_ns = 50000
rebuild_ns_per_key = 120.5
"#;

    const JSON_PLAN: &str = r#"{
  "seed": 42,
  "backoff": {"base_ns": 500, "factor": 2.0, "cap_ns": 8000, "max_retries": 3},
  "events": [
    {"kind": "latency_spike", "tier": "slow", "start_ns": 0, "end_ns": 1000000, "factor": 3.0},
    {"kind": "bandwidth_throttle", "tier": "slow", "start_ns": 250000, "end_ns": 750000, "factor": 0.25},
    {"kind": "capacity_shrink", "tier": "fast", "start_ns": 100, "bytes": 1048576},
    {"kind": "migration_failure", "start_ns": 0, "end_ns": 500000, "probability": 0.5},
    {"kind": "shard_crash", "shard": 1, "at_ns": 300000, "restart_ns": 50000, "rebuild_ns_per_key": 120.5}
  ]
}"#;

    #[test]
    fn toml_and_json_parse_to_the_same_plan() {
        let toml = FaultPlan::parse_toml(TOML_PLAN).unwrap();
        let json = FaultPlan::parse_json(JSON_PLAN).unwrap();
        assert_eq!(toml, json);
        assert_eq!(toml.seed, 42);
        assert_eq!(toml.backoff.max_retries, 3);
        assert_eq!(toml.events.len(), 5);
        assert!(matches!(
            toml.events[2],
            FaultEvent::CapacityShrink {
                tier: TierId::FAST,
                start_ns: 100,
                end_ns: u128::MAX,
                bytes: 1_048_576,
            }
        ));
    }

    #[test]
    fn storage_fault_kinds_parse_from_toml_and_json() {
        let toml = r#"
seed = 9

[[event]]
kind = "torn_write"
start_ns = 1000
end_ns = 2000

[[event]]
kind = "bit_flip"
start_ns = 0
end_ns = 500

[[event]]
kind = "fsync_fail"
start_ns = 100
end_ns = 200

[[event]]
kind = "dump_corrupt"
start_ns = 300
"#;
        let json = r#"{
  "seed": 9,
  "events": [
    {"kind": "torn_write", "start_ns": 1000, "end_ns": 2000},
    {"kind": "bit_flip", "start_ns": 0, "end_ns": 500},
    {"kind": "fsync_fail", "start_ns": 100, "end_ns": 200},
    {"kind": "dump_corrupt", "start_ns": 300}
  ]
}"#;
        let plan = FaultPlan::parse_toml(toml).unwrap();
        assert_eq!(plan, FaultPlan::parse_json(json).unwrap());
        assert_eq!(plan.events.len(), 4);
        assert!(matches!(
            plan.events[0],
            FaultEvent::TornWrite {
                start_ns: 1_000,
                end_ns: 2_000,
            }
        ));
        assert!(matches!(
            plan.events[3],
            FaultEvent::DumpCorrupt {
                start_ns: 300,
                end_ns: u128::MAX,
            }
        ));
        assert!(plan.events.iter().all(FaultEvent::is_storage));
        // Unknown fields are still rejected with their line number.
        let bad =
            "seed = 1\n\n[[event]]\nkind = \"torn_write\"\nstart_ns = 0\nend_ns = 5\nshard = 1\n";
        let err = FaultPlan::parse_toml(bad).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(
            err.reason.contains("unknown field `shard`"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn hierarchy_names_resolve_with_positional_and_legacy_aliases() {
        let tiers = TierNames::from_names(&["DRAM", "optane", "ssd"]);
        // Hierarchy names, case-insensitively.
        assert_eq!(tiers.resolve("dram"), Some(TierId(0)));
        assert_eq!(tiers.resolve("Optane"), Some(TierId(1)));
        assert_eq!(tiers.resolve("SSD"), Some(TierId(2)));
        // Positional forms.
        assert_eq!(tiers.resolve("tier0"), Some(TierId(0)));
        assert_eq!(tiers.resolve("tier2"), Some(TierId(2)));
        // Non-colliding legacy aliases still work ("dram" is taken by
        // the hierarchy itself, and resolves to the same tier here).
        assert_eq!(tiers.resolve("fast"), Some(TierId::FAST));
        assert_eq!(tiers.resolve("slowmem"), Some(TierId::SLOW));
        assert_eq!(tiers.resolve("warp"), None);
        assert_eq!(tiers.primary(), &["dram", "optane", "ssd"]);
    }

    #[test]
    fn legacy_aliases_never_point_past_the_hierarchy() {
        let tiers = TierNames::from_names(&["only"]);
        assert_eq!(tiers.resolve("only"), Some(TierId(0)));
        assert_eq!(tiers.resolve("fast"), Some(TierId(0)));
        // "slow" would name tier 1, which this one-tier hierarchy lacks.
        assert_eq!(tiers.resolve("slow"), None);
    }

    #[test]
    fn plans_accept_hierarchy_tier_names() {
        let text = r#"
seed = 1

[[event]]
kind = "latency_spike"
tier = "optane"
start_ns = 0
end_ns = 10
factor = 2.0
"#;
        let tiers = TierNames::from_names(&["dram", "optane", "ssd"]);
        let plan = FaultPlan::parse_toml_with(text, &tiers).unwrap();
        assert!(matches!(
            plan.events[0],
            FaultEvent::LatencySpike {
                tier: TierId(1),
                ..
            }
        ));
    }

    #[test]
    fn unknown_tier_name_errors_with_line_and_known_names() {
        let text = r#"
seed = 1

[[event]]
kind = "latency_spike"
tier = "l2"
start_ns = 0
end_ns = 10
factor = 2.0
"#;
        let tiers = TierNames::from_names(&["dram", "optane", "ssd"]);
        let err = FaultPlan::parse_toml_with(text, &tiers).unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.reason.contains("unknown tier `l2`"), "{}", err.reason);
        assert!(err.reason.contains("dram, optane, ssd"), "{}", err.reason);
    }

    #[test]
    fn sniffing_dispatches_by_first_character() {
        assert_eq!(
            FaultPlan::parse(TOML_PLAN).unwrap(),
            FaultPlan::parse(JSON_PLAN).unwrap()
        );
    }

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let plan = FaultPlan::parse_toml("seed = 9\n").unwrap();
        assert_eq!(plan.seed, 9);
        assert!(plan.is_empty());
        assert_eq!(plan.backoff, Backoff::default_policy());
        let plan = FaultPlan::parse_json("{}").unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = FaultPlan::parse_toml("seed = 1\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = FaultPlan::parse_toml("[[event]]\nkind = \"latency_spike\"\n").unwrap_err();
        assert!(err.reason.contains("tier"), "{err}");
        let err =
            FaultPlan::parse_toml("[[event]]\nkind = \"warp_drive\"\ntier = \"fast\"").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("warp_drive"));
        let err = FaultPlan::parse_json("{\n  \"seed\": 1,\n  \"events\": oops\n}").unwrap_err();
        assert_eq!(err.line, 3, "{err}");
    }

    #[test]
    fn unknown_fields_and_duplicates_are_rejected() {
        let err = FaultPlan::parse_toml("seed = 1\nseed = 2\n").unwrap_err();
        assert!(err.reason.contains("duplicate"), "{err}");
        let err = FaultPlan::parse_toml(
            "[[event]]\nkind = \"migration_failure\"\nprobability = 0.5\ntypo_field = 1\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.reason.contains("typo_field"));
    }

    #[test]
    fn tenant_key_scopes_events_in_both_formats() {
        let toml = FaultPlan::parse_toml(
            "[[event]]\nkind = \"shard_crash\"\nshard = 0\nat_ns = 100\ntenant = \"beta\"\n\
             \n[[event]]\nkind = \"migration_failure\"\nprobability = 0.2\nstart_ns = 0\nend_ns = 10\n",
        )
        .unwrap();
        let json = FaultPlan::parse_json(
            r#"{"events": [
                {"kind": "shard_crash", "shard": 0, "at_ns": 100, "tenant": "beta"},
                {"kind": "migration_failure", "probability": 0.2, "start_ns": 0, "end_ns": 10}
            ]}"#,
        )
        .unwrap();
        assert_eq!(toml, json);
        assert_eq!(toml.tenant_of(0), Some("beta"));
        assert_eq!(toml.tenant_of(1), None);
        assert_eq!(toml.for_tenant("beta").events.len(), 2);
        assert_eq!(toml.for_tenant("alpha").events.len(), 1);
    }

    #[test]
    fn corrupt_tenant_fields_are_rejected_with_line_numbers() {
        // Non-string tenant: typed error on the offending line.
        let err = FaultPlan::parse_toml(
            "[[event]]\nkind = \"migration_failure\"\nprobability = 0.2\ntenant = 5\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.reason.contains("must be a string"), "{err}");
        // Empty tenant name.
        let err = FaultPlan::parse_toml(
            "[[event]]\nkind = \"migration_failure\"\ntenant = \"\"\nprobability = 0.2\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("must not be empty"), "{err}");
        // Duplicate tenant key.
        let err = FaultPlan::parse_json(
            "{\"events\": [\n{\"kind\": \"migration_failure\", \"probability\": 0.2,\n\"tenant\": \"a\",\n\"tenant\": \"b\"}]}",
        )
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.reason.contains("duplicate"), "{err}");
    }

    #[test]
    fn semantic_validation_is_applied_after_parse() {
        let err =
            FaultPlan::parse_toml("[[event]]\nkind = \"migration_failure\"\nprobability = 1.5\n")
                .unwrap_err();
        assert!(err.reason.contains("probability"), "{err}");
    }

    #[test]
    fn load_distinguishes_io_from_parse_errors() {
        let missing = FaultPlan::load(std::path::Path::new("/definitely/not/here.toml"));
        assert!(matches!(missing, Err(LoadError::Io(_))));
        let dir = std::env::temp_dir().join("mnemo-faults-parse-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.toml");
        std::fs::write(&path, TOML_PLAN).unwrap();
        let plan = FaultPlan::load(&path).unwrap();
        assert_eq!(plan.seed, 42);
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{ not json").unwrap();
        assert!(matches!(FaultPlan::load(&bad), Err(LoadError::Parse(_))));
    }
}
