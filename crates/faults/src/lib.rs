//! Deterministic fault injection for the Mnemo stack.
//!
//! Real hybrid memory misbehaves — NVM latency and bandwidth drift with
//! wear and contention, capacity reservations get lost, migrations fail,
//! shards crash. This crate describes that misbehaviour as a seeded,
//! sim-clock-scheduled [`FaultPlan`] (TOML- or JSON-loadable) and
//! compiles it into the forms the rest of the stack consumes:
//!
//! * [`FaultPlan::degradation_profile`] — per-tier latency spikes,
//!   bandwidth throttles and capacity shrinks as a
//!   [`hybridmem::DegradationProfile`] the devices consult on every
//!   access charge and reservation;
//! * [`FaultPlan::migration_faults`] — a pure seeded function of
//!   `(now_ns, key, attempt)` deciding which migrations fail, driving
//!   the dynamic tierer's capped-exponential [`Backoff`] retry loop;
//! * [`FaultPlan::shard_crashes`] — per-shard crash schedules with
//!   restart and rebuild costs for `ShardedCluster`.
//!
//! Everything is keyed off simulated time and the plan seed — no wall
//! clock, no shared RNG state — so a faulted run produces byte-identical
//! sim-domain results and telemetry for any `--jobs` worker count,
//! preserving the repository's determinism gates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod parse;
pub mod plan;

pub use backoff::Backoff;
pub use parse::{LoadError, PlanError, TierNames};
pub use plan::{FaultEvent, FaultPlan, MigrationFaults, ShardCrash, StorageFaults};
