//! Capped exponential retry backoff for failed migrations.

/// A capped-exponential backoff policy.
///
/// Attempt `k` (0-based) waits `min(base_ns * factor^k, cap_ns)` simulated
/// nanoseconds before retrying; after `max_retries` failed attempts the
/// caller gives up and falls back (for tiering: the key stays in SlowMem).
/// All delays are simulated time, charged to the run like any other cost,
/// so retried runs stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry, in simulated nanoseconds.
    pub base_ns: f64,
    /// Multiplier applied per attempt (>= 1).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap_ns: f64,
    /// Retries after the initial attempt before giving up.
    pub max_retries: u32,
}

impl Backoff {
    /// The default tiering policy: 1 µs base, doubling, capped at 64 µs,
    /// at most 5 retries.
    pub fn default_policy() -> Backoff {
        Backoff {
            base_ns: 1_000.0,
            factor: 2.0,
            cap_ns: 64_000.0,
            max_retries: 5,
        }
    }

    /// Validate the policy's fields.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_ns.is_finite() && self.base_ns >= 0.0) {
            return Err(format!(
                "backoff base_ns must be >= 0, got {}",
                self.base_ns
            ));
        }
        if !(self.factor.is_finite() && self.factor >= 1.0) {
            return Err(format!("backoff factor must be >= 1, got {}", self.factor));
        }
        if !(self.cap_ns.is_finite() && self.cap_ns >= 0.0) {
            return Err(format!("backoff cap_ns must be >= 0, got {}", self.cap_ns));
        }
        Ok(())
    }

    /// The delay charged before retry number `attempt` (0-based).
    pub fn delay_ns(&self, attempt: u32) -> f64 {
        let exp = self.factor.powi(attempt.min(1_000) as i32);
        (self.base_ns * exp).min(self.cap_ns)
    }

    /// Total simulated time a fully-exhausted retry sequence charges.
    pub fn worst_case_delay_ns(&self) -> f64 {
        (0..self.max_retries).map(|k| self.delay_ns(k)).sum()
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::default_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_then_cap() {
        let b = Backoff::default_policy();
        assert_eq!(b.delay_ns(0), 1_000.0);
        assert_eq!(b.delay_ns(1), 2_000.0);
        assert_eq!(b.delay_ns(5), 32_000.0);
        assert_eq!(b.delay_ns(6), 64_000.0);
        assert_eq!(b.delay_ns(100), 64_000.0, "cap holds for huge attempts");
    }

    #[test]
    fn worst_case_is_the_sum_of_capped_delays() {
        let b = Backoff {
            base_ns: 10.0,
            factor: 2.0,
            cap_ns: 40.0,
            max_retries: 4,
        };
        // 10 + 20 + 40 + 40
        assert_eq!(b.worst_case_delay_ns(), 110.0);
    }

    #[test]
    fn validation_rejects_shrinking_factor() {
        let mut b = Backoff::default_policy();
        b.factor = 0.5;
        assert!(b.validate().is_err());
        b.factor = 1.0;
        assert!(b.validate().is_ok());
    }
}
