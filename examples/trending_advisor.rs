//! End-to-end MnemoT deployment (the paper's Fig. 2c scenario):
//! consult, choose a row, let the Placement Engine populate a real
//! FastServer + SlowServer pair, and *verify* the SLO by running the
//! workload against the populated cluster.
//!
//! ```sh
//! cargo run --release --example trending_advisor [slo_percent]
//! ```

use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::placement::PlacementEngine;
use ycsb::WorkloadSpec;

fn main() {
    let slo: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .map(|pct: f64| pct / 100.0)
        .unwrap_or(0.10);
    let trace = WorkloadSpec::trending().scaled(2_000, 20_000).generate(7);

    // MnemoT: weight-based tiering (accesses / size) + estimate curve.
    let config = AdvisorConfig {
        ordering: OrderingKind::MnemoT,
        ..AdvisorConfig::default()
    };
    let advisor = Advisor::new(config);
    let consultation = advisor
        .consult(StoreKind::Redis, &trace)
        .expect("consultation");

    println!(
        "SLO: at most {:.0}% below FastMem-only throughput\n",
        slo * 100.0
    );
    for slo_try in [0.02, 0.05, slo, 0.25] {
        let rec = consultation.recommend(slo_try).expect("curve nonempty");
        println!(
            "  {:4.0}% slowdown budget -> {:5.1}% FastMem, cost {:.2}x",
            slo_try * 100.0,
            rec.fast_ratio * 100.0,
            rec.cost_reduction
        );
    }

    // Deploy: Placement Engine populates the two server instances.
    let rec = consultation.recommend(slo).expect("curve nonempty");
    let row = consultation.curve.rows[rec.prefix];
    let mut cluster =
        PlacementEngine::populate(StoreKind::Redis, &trace, &consultation.order, &row)
            .expect("cluster population");
    let (fast_keys, slow_keys) = cluster.key_split();
    println!("\ndeployed: FastServer holds {fast_keys} keys, SlowServer {slow_keys} keys");

    // Verify the recommendation against a real (simulated) run.
    let report = cluster.run(&trace);
    let fast_only = consultation.baselines.fast.throughput_ops_s();
    let achieved = report.throughput_ops_s();
    let slowdown = 1.0 - achieved / fast_only;
    println!(
        "measured: {:.0} ops/s = {:.1}% below FastMem-only (estimated {:.1}%)",
        achieved,
        slowdown * 100.0,
        rec.est_slowdown * 100.0
    );
    println!(
        "tail latency: p95 {:.0} us, p99 {:.0} us",
        report.latency_quantile(0.95) / 1e3,
        report.latency_quantile(0.99) / 1e3
    );
    assert!(
        slowdown <= slo + 0.02,
        "measured slowdown {:.3} blew the SLO {:.3}",
        slowdown,
        slo
    );
    println!(
        "\nSLO verified. Memory bill: {:.0}% of the all-DRAM configuration.",
        rec.cost_reduction * 100.0
    );
}
