//! Consolidated-fleet sizing: several key-value workloads share one
//! hybrid-memory box and one FastMem budget. Mnemo consults each tenant
//! individually, then the shared allocator splits the budget by benefit
//! density across all tenants' keys (extension; see `mnemo::multi`).
//!
//! ```sh
//! cargo run --release --example multi_tenant [budget_fraction]
//! ```

use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig};
use mnemo::multi::allocate_shared;
use ycsb::WorkloadSpec;

fn main() {
    let budget_fraction: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    assert!(
        (0.0..=1.0).contains(&budget_fraction),
        "budget fraction in [0,1]"
    );

    // Three tenants with very different needs on one box.
    let tenants: Vec<(&str, StoreKind, WorkloadSpec)> = vec![
        (
            "trending cache",
            StoreKind::Redis,
            WorkloadSpec::trending().scaled(1_000, 10_000),
        ),
        (
            "user documents",
            StoreKind::Dynamo,
            WorkloadSpec::timeline().scaled(1_000, 10_000),
        ),
        (
            "session store",
            StoreKind::Memcached,
            WorkloadSpec::facebook_etc().scaled(1_000, 10_000),
        ),
    ];

    println!("consulting {} tenants...", tenants.len());
    let consultations: Vec<_> = tenants
        .iter()
        .map(|(name, store, spec)| {
            let trace = spec.generate(11);
            let c = Advisor::new(AdvisorConfig::default())
                .consult(*store, &trace)
                .expect("consultation");
            println!(
                "  {:<16} ({:<9}) {:6.1} MB dataset, sensitivity {:+.1}%",
                name,
                store.name(),
                trace.dataset_bytes() as f64 / 1e6,
                c.baselines.sensitivity() * 100.0
            );
            c
        })
        .collect();

    let total: u64 = consultations.iter().map(|c| c.curve.total_bytes).sum();
    let budget = (total as f64 * budget_fraction) as u64;
    println!(
        "\nshared FastMem budget: {:.1} MB ({:.0}% of the {:.1} MB combined dataset)\n",
        budget as f64 / 1e6,
        budget_fraction * 100.0,
        total as f64 / 1e6
    );

    let alloc = allocate_shared(&consultations, budget);
    println!(
        "{:<16} {:>12} {:>12} {:>14}",
        "tenant", "granted MB", "share", "est slowdown"
    );
    for ((name, _, _), grant) in tenants.iter().zip(&alloc.tenants) {
        println!(
            "{:<16} {:>12.1} {:>11.1}% {:>13.1}%",
            name,
            grant.fast_bytes as f64 / 1e6,
            grant.fast_bytes as f64 / alloc.used_bytes.max(1) as f64 * 100.0,
            grant.est_slowdown * 100.0
        );
    }
    println!(
        "\nbudget used: {:.1} of {:.1} MB; worst tenant slowdown {:.1}%",
        alloc.used_bytes as f64 / 1e6,
        alloc.budget_bytes as f64 / 1e6,
        alloc.worst_slowdown() * 100.0
    );
    println!("\nThe density rule sends DRAM to whoever gains most per byte: the");
    println!("memory-sensitive DynamoDB tenant wins capacity, the insensitive");
    println!("Memcached session store is served almost entirely from NVM.");
}
