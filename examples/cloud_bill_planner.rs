//! From workload to cloud bill: consult Mnemo, then price the
//! recommended DRAM/NVM split as actual VM instances at each provider —
//! the paper's envisioned use ("what capacity sizings of VMs with DRAM
//! and VMs with NVM provide the best tradeoffs").
//!
//! ```sh
//! cargo run --release --example cloud_bill_planner [trace-file]
//! ```
//!
//! With a path argument, the workload is loaded from a mnemo-trace file
//! (see `ycsb::fileio`); otherwise the paper's Trending workload is
//! generated. The loaded/generated trace is also written to
//! `target/trending.trace` as a format demonstration.

use cloudcost::{Provider, ProviderKind};
use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig};
use ycsb::WorkloadSpec;

fn main() {
    // 1. Obtain the workload: from file, or generate + persist.
    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("cannot open trace file");
            ycsb::fileio::read_trace(std::io::BufReader::new(file)).expect("malformed trace file")
        }
        None => {
            let t = WorkloadSpec::trending().scaled(2_000, 20_000).generate(77);
            std::fs::create_dir_all("target").ok();
            let f = std::fs::File::create("target/trending.trace").expect("create trace file");
            ycsb::fileio::write_trace(&t, std::io::BufWriter::new(f)).expect("write trace");
            println!("(wrote the generated workload to target/trending.trace)");
            t
        }
    };
    println!(
        "workload '{}': {} keys, {} requests, {:.1} MB\n",
        trace.name,
        trace.keys(),
        trace.len(),
        trace.dataset_bytes() as f64 / 1e6
    );

    // 2. Consult Mnemo (MnemoT ordering, 10% SLO).
    let consultation = Advisor::new(AdvisorConfig::default())
        .consult(StoreKind::Redis, &trace)
        .expect("consultation");
    let rec = consultation.recommend(0.10).expect("curve nonempty");
    println!(
        "Mnemo @10% SLO: {:.1}% of bytes in DRAM -> memory cost {:.0}% of DRAM-only\n",
        rec.fast_ratio * 100.0,
        rec.cost_reduction * 100.0
    );

    // 3. Price it. The demo dataset is small, so scale the split up to a
    //    production-sized 256 GiB deployment with the same ratio.
    let deploy_total: u64 = 256 << 30;
    let fast = (deploy_total as f64 * rec.fast_ratio) as u64;
    let slow = deploy_total - fast;
    println!(
        "pricing a 256 GiB deployment at the recommended ratio ({:.0} GiB DRAM + {:.0} GiB NVM):",
        fast as f64 / (1u64 << 30) as f64,
        slow as f64 / (1u64 << 30) as f64
    );
    println!(
        "\n{:<24} {:<18} {:<18} {:>10} {:>10} {:>8}",
        "provider", "DRAM instance", "NVM carrier", "$/h hybrid", "$/h DRAM", "savings"
    );
    for kind in ProviderKind::ALL {
        let provider = Provider::new(kind);
        match cloudcost::planner::plan(&provider, fast, slow, 0.2) {
            Ok(plan) => println!(
                "{:<24} {:<18} {:<18} {:>10.3} {:>10.3} {:>7.1}%",
                kind.name(),
                plan.dram_instance,
                plan.nvm_instance.as_deref().unwrap_or("-"),
                plan.hourly_usd,
                plan.dram_only_hourly_usd,
                plan.savings() * 100.0
            ),
            Err(e) => println!("{:<24} cannot plan: {e}", kind.name()),
        }
    }
    println!("\n(NVM carrier memory is billed at 0.2x the fitted per-GB DRAM rate, the");
    println!("paper's price-factor assumption for Optane-class NVDIMMs.)");
}
