//! Capacity-sizing survey across the whole social-media workload suite
//! and all three stores — a miniature of the paper's Fig. 9, with a
//! configurable NVM price factor.
//!
//! ```sh
//! cargo run --release --example social_cache_sizing [price_factor]
//! # e.g. price_factor 0.3 models NVM at 30% of DRAM's per-byte price
//! ```

use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use ycsb::WorkloadSpec;

fn main() {
    let price_factor: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    assert!(
        price_factor > 0.0 && price_factor < 1.0,
        "price factor must be in (0,1)"
    );
    println!(
        "Sizing survey @10% slowdown SLO, SlowMem priced at {:.0}% of FastMem\n",
        price_factor * 100.0
    );

    let stores = [StoreKind::Redis, StoreKind::Dynamo, StoreKind::Memcached];
    println!(
        "{:<18} {:>22} {:>22} {:>22}",
        "workload", "Redis", "DynamoDB", "Memcached"
    );
    for spec in WorkloadSpec::table3() {
        let spec = spec.scaled(1_000, 10_000);
        let trace = spec.generate(3);
        let mut cells = Vec::new();
        for store in stores {
            let config = AdvisorConfig {
                price_factor,
                ordering: OrderingKind::MnemoT,
                ..AdvisorConfig::default()
            };
            let consultation = Advisor::new(config)
                .consult(store, &trace)
                .expect("consultation");
            let rec = consultation.recommend(0.10).expect("curve nonempty");
            cells.push(format!(
                "{:.2}x ({:>3.0}% fast)",
                rec.cost_reduction,
                rec.fast_ratio * 100.0
            ));
        }
        println!(
            "{:<18} {:>22} {:>22} {:>22}",
            spec.name, cells[0], cells[1], cells[2]
        );
    }
    println!("\nCells: memory cost vs DRAM-only, and the FastMem capacity share Mnemo chose.");
    println!("Floor is {price_factor:.2}x (everything on SlowMem).");
}
