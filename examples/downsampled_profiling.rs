//! Profiling from a downsampled trace (§V "Workload downsampling"):
//! when the full production workload is too big (or unavailable), Mnemo
//! profiles a 1/N random sample and the resulting sizing still holds on
//! the full workload.
//!
//! ```sh
//! cargo run --release --example downsampled_profiling [factor]
//! ```

use kvsim::{Placement, Server, StoreKind};
use mnemo::advisor::{Advisor, AdvisorConfig, OrderingKind};
use mnemo::placement::PlacementEngine;
use ycsb::sample::downsample;
use ycsb::WorkloadSpec;

fn main() {
    let factor: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let full = WorkloadSpec::timeline().scaled(2_000, 40_000).generate(13);
    let sampled = downsample(&full, factor, 1);
    println!(
        "full workload: {} requests; profiling on a 1/{} sample ({} requests)\n",
        full.len(),
        factor,
        sampled.len()
    );

    // Profile entirely on the sample. The cache-aware correction matters
    // here: the zipfian head is LLC-resident, so the plain model would
    // over-credit promoting it and recommend too little FastMem.
    let config = AdvisorConfig {
        ordering: OrderingKind::MnemoT,
        ..AdvisorConfig::default()
    }
    .cache_aware();
    let advisor = Advisor::new(config);
    let consultation = advisor
        .consult(StoreKind::Redis, &sampled)
        .expect("consultation");
    let rec = consultation.recommend(0.10).expect("curve nonempty");
    println!(
        "sample says: {:.1}% FastMem -> cost {:.2}x, est slowdown {:.1}%",
        rec.fast_ratio * 100.0,
        rec.cost_reduction,
        rec.est_slowdown * 100.0
    );

    // Apply that placement to the FULL workload and measure.
    let placement =
        PlacementEngine::placement_for(&consultation.order, &consultation.curve.rows[rec.prefix]);
    let run = |p: Placement| {
        Server::build(StoreKind::Redis, &full, p)
            .expect("server")
            .run(&full)
            .throughput_ops_s()
    };
    let fast_only = run(Placement::AllFast);
    let slow_only = run(Placement::AllSlow);
    let chosen = run(placement);
    let slowdown = 1.0 - chosen / fast_only;
    println!("\nfull-workload verification:");
    println!("  FastMem-only {fast_only:.0} ops/s, SlowMem-only {slow_only:.0} ops/s");
    println!(
        "  recommended split: {chosen:.0} ops/s ({:.1}% below FastMem-only)",
        slowdown * 100.0
    );
    assert!(
        slowdown < 0.10 + 0.03,
        "sampled-profile recommendation broke the SLO on the full workload"
    );
    println!("\nThe 1/{factor} sample's sizing holds on the full workload.");
}
