//! Quickstart: size a hybrid memory system for a trending-news cache.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full Mnemo pipeline on the paper's Trending workload:
//! measure the two baselines, build the estimate curve, and read off the
//! cheapest FastMem:SlowMem split within a 10% slowdown of the
//! all-FastMem configuration.

use kvsim::StoreKind;
use mnemo::advisor::{Advisor, AdvisorConfig};
use ycsb::WorkloadSpec;

fn main() {
    // 1. Describe the workload (Table III's Trending: 10k keys, 100k
    //    requests, hotspot distribution, ~100 KB thumbnails). Scaled down
    //    here so the example runs in a couple of seconds.
    let spec = WorkloadSpec::trending().scaled(2_000, 20_000);
    let trace = spec.generate(42);
    println!(
        "workload: {} — {} keys, {} requests, {:.1} MB dataset",
        spec.name,
        trace.keys(),
        trace.len(),
        trace.dataset_bytes() as f64 / 1e6
    );

    // 2. Consult Mnemo (runs the two baseline executions internally).
    let advisor = Advisor::new(AdvisorConfig::default());
    let consultation = advisor
        .consult(StoreKind::Redis, &trace)
        .expect("consultation failed");
    let b = &consultation.baselines;
    println!(
        "baselines: FastMem-only {:.0} ops/s, SlowMem-only {:.0} ops/s ({:+.1}% gap)",
        b.fast.throughput_ops_s(),
        b.slow.throughput_ops_s(),
        b.sensitivity() * 100.0
    );

    // 3. The estimate curve: cost factor vs estimated throughput.
    println!("\ncurve (10-point summary):");
    for row in consultation.curve.thin(10) {
        println!(
            "  {:5.1}% FastMem -> cost {:.2}x, est {:.0} ops/s",
            row.fast_bytes as f64 / consultation.curve.total_bytes as f64 * 100.0,
            row.cost_reduction,
            row.est_throughput_ops_s
        );
    }

    // 4. The recommendation: cheapest split inside a 10% slowdown SLO.
    let rec = consultation.recommend(0.10).expect("nonempty curve");
    println!(
        "\nrecommendation @10% SLO: keep {} of {} keys ({:.1}% of bytes) in FastMem",
        rec.prefix,
        trace.keys(),
        rec.fast_ratio * 100.0
    );
    println!(
        "  memory cost: {:.0}% of FastMem-only (floor is 20%)",
        rec.cost_reduction * 100.0
    );
    println!(
        "  estimated performance: {:.0} ops/s ({:.1}% below FastMem-only)",
        rec.est_throughput_ops_s,
        rec.est_slowdown * 100.0
    );

    // 5. Mnemo's CSV output (the paper's three-column format).
    let csv = consultation.curve.to_csv();
    let preview: Vec<&str> = csv.lines().take(4).collect();
    println!("\ncsv output (first rows):\n  {}", preview.join("\n  "));
}
